"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import RunOptions, analyze, run_source

#: Figure 5 — the TStack example, fully annotated.
TSTACK_SOURCE = """
class T<Owner o> { int x; }
class TStack<Owner stackOwner, Owner TOwner> {
    TNode<this, TOwner> head = null;
    int size = 0;
    void push(T<TOwner> value) {
        TNode<this, TOwner> newNode = new TNode<this, TOwner>;
        newNode.init(value, head);
        head = newNode;
        size = size + 1;
    }
    T<TOwner> pop() {
        if (head == null) { return null; }
        T<TOwner> value = head.value;
        head = head.next;
        size = size - 1;
        return value;
    }
}
class TNode<Owner nodeOwner, Owner TOwner> {
    T<TOwner> value;
    TNode<nodeOwner, TOwner> next;
    void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
        this.value = v;
        this.next = n;
    }
}
(RHandle<r1> h1) {
    (RHandle<r2> h2) {
        TStack<r2, r2> s1 = new TStack<r2, r2>;
        TStack<r2, r1> s2 = new TStack<r2, r1>;
        TStack<r1, immortal> s3 = new TStack<r1, immortal>;
        TStack<heap, immortal> s4 = new TStack<heap, immortal>;
        TStack<immortal, heap> s5 = new TStack<immortal, heap>;
        s1.push(new T<r2>);
        T<r2> t = s1.pop();
        print(t.x);
    }
}
"""

#: Figure 8 — producer/consumer with subregions and portal fields,
#: with a portal-polling handshake in place of the paper's elided
#: wait/notify synchronization.
PRODUCER_CONSUMER_SOURCE = """
regionKind BufferRegion extends SharedRegion {
    BufferSubRegion : LT(4096) NoRT b;
}
regionKind BufferSubRegion extends SharedRegion {
    Frame<this> f;
}
class Frame { int data; }
class Producer<BufferRegion r> {
    void run(RHandle<r> h, int frames) accesses r, heap {
        int i = 0;
        while (i < frames) {
            boolean placed = false;
            while (!placed) {
                (RHandle<BufferSubRegion r2> h2 = h.b) {
                    if (h2.f == null) {
                        Frame frame = new Frame;
                        frame.data = i * 10;
                        h2.f = frame;
                        placed = true;
                    }
                }
                yieldnow();
            }
            i = i + 1;
        }
    }
}
class Consumer<BufferRegion r> {
    void run(RHandle<r> h, int frames) accesses r, heap {
        int got = 0;
        while (got < frames) {
            (RHandle<BufferSubRegion r2> h2 = h.b) {
                Frame frame = h2.f;
                if (frame != null) {
                    h2.f = null;
                    print(frame.data);
                    got = got + 1;
                }
            }
            yieldnow();
        }
    }
}
(RHandle<BufferRegion r> h) {
    fork (new Producer<r>).run(h, 5);
    fork (new Consumer<r>).run(h, 5);
}
"""

#: A real-time pipeline using an RT LT subregion.
REALTIME_SOURCE = """
regionKind MissionRegion extends SharedRegion {
    WorkSubRegion : LT(8192) RT w;
}
regionKind WorkSubRegion extends SharedRegion { }
class Cell { int v; }
class RTTask<MissionRegion r> {
    void run(RHandle<r> h, int n) accesses r, RT {
        int i = 0;
        while (i < n) {
            (RHandle<WorkSubRegion r2> h2 = h.w) {
                Cell<r2> c = new Cell<r2>;
                c.v = i;
                print(c.v);
            }
            i = i + 1;
        }
    }
}
(RHandle<MissionRegion : LT(65536) r> h) {
    RT fork (new RTTask<r>).run(h, 3);
}
"""


def errors_of(source: str):
    """Typecheck and return the error list."""
    return analyze(source).errors


def rules_of(source: str):
    """Typecheck and return the violated judgment names."""
    return analyze(source).error_rules()


def assert_well_typed(source: str):
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    return analyzed


def assert_rejected(source: str, rule: str = None, fragment: str = None):
    analyzed = analyze(source)
    assert analyzed.errors, "expected a type error"
    if rule is not None:
        assert rule in analyzed.error_rules(), \
            f"expected rule {rule}, got {analyzed.error_rules()}"
    if fragment is not None:
        assert any(fragment in str(e) for e in analyzed.errors), \
            [str(e) for e in analyzed.errors]
    return analyzed.errors


def run_both_modes(source: str, **options):
    """Run with and without dynamic checks; asserts identical output and
    returns (dynamic_result, static_result)."""
    analyzed = assert_well_typed(source)
    dyn = run_source(analyzed, RunOptions(checks_enabled=True, **options))
    sta = run_source(analyzed, RunOptions(checks_enabled=False, **options))
    assert dyn.output == sta.output
    return dyn, sta


@pytest.fixture
def tstack_analyzed():
    return assert_well_typed(TSTACK_SOURCE)
