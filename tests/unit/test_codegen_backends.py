"""Unit tests for the codegen stack: shared lowering, the backend
selection ladder, the C source generator, and the structured
``CompileError`` diagnostics of the Python erasure backend."""

import pytest

from repro import RunOptions, analyze
from repro.interp import codegen_c
from repro.interp.codegen_base import (CodegenUnsupported, IdentityCache,
                                       SourceWriter, bake, cost_key,
                                       mangle)
from repro.interp.codegen_py import select_program
from repro.interp.compile_py import CompileError, compile_to_python
from repro.interp.lower import lower
from repro.interp.machine import Machine
from repro.rtsj.stats import CostModel

SIMPLE = """
class Cell<Owner o> {
    int v;
    int bump(int d) { v = v + d; return v; }
}
(RHandle<r> h) {
    Cell<r> c = new Cell<r>;
    c.v = 1;
    print(c.bump(41));
}
"""

FORKED = (
    "regionKind S extends SharedRegion { }\n"
    "class W<S r> { void go(RHandle<r> h) accesses r { } }\n"
    "(RHandle<S r> h) { fork (new W<r>).go(h); }")


def _machine(source, **kw):
    analyzed = analyze(source)
    assert not analyzed.errors
    return Machine(analyzed, RunOptions(
        checks_enabled=kw.pop("checks_enabled", False), validate=False,
        instrument=False, **kw))


# ---------------------------------------------------------------------------
# codegen_base primitives
# ---------------------------------------------------------------------------

class TestBase:
    def test_mangle_is_identifier_safe_and_injective_enough(self):
        assert mangle("Cell").isidentifier()
        assert mangle("bump") != mangle("bump2")
        assert mangle("a.b") != mangle("a_b") or True  # both identifiers
        assert mangle("a.b").isidentifier()

    def test_bake_round_trips_exact_values(self):
        for value in (0, -1, 2**62, 0.1, -0.0, True, None, "x'y"):
            assert eval(bake(value)) == value or (
                value == 0.0 and eval(bake(value)) == 0.0)
        assert eval(bake(0.1)) == 0.1  # hex float, not repr rounding

    def test_cost_key_tracks_cost_model_fields(self):
        base = CostModel()
        assert cost_key(base) == cost_key(CostModel())
        bumped = CostModel(op_basic=base.op_basic + 1)
        assert cost_key(bumped) != cost_key(base)

    def test_identity_cache_is_per_object(self):
        cache = IdentityCache()
        a1, a2 = analyze(SIMPLE), analyze(SIMPLE)
        cache.set(a1, "one")
        assert cache.get(a1) == "one"
        assert cache.get(a2) is None

    def test_source_writer_indents(self):
        w = SourceWriter()
        w.emit("def f():")
        w.indent()
        w.emit("return 1")
        w.dedent()
        assert w.source() == "def f():\n    return 1\n"


# ---------------------------------------------------------------------------
# shared lowering
# ---------------------------------------------------------------------------

class TestLower:
    def test_lower_simple_program(self):
        lowered = lower(analyze(SIMPLE))
        assert lowered.fused_ok
        assert not lowered.hazards
        assert any(unit.is_main for unit in lowered.units.values())
        assert ("Cell", "bump") in lowered.units
        assert ("Cell", "bump") in lowered.call_table

    def test_lower_is_cached_per_analysis(self):
        analyzed = analyze(SIMPLE)
        assert lower(analyzed) is lower(analyzed)

    def test_hazards_reported_for_threaded_program(self):
        lowered = lower(analyze(FORKED))
        assert not lowered.fused_ok
        assert any("fork" in h for h in lowered.hazards)

    def test_tainted_redeclare_is_not_a_hazard(self):
        # a declaration over a name whose block closed overwrites the
        # interpreter's flat frame slot unconditionally, so a fresh
        # lexical slot is exact — this shape (Barnes/game) fuses
        lowered = lower(analyze(
            "{\n"
            "  int a = 1;\n"
            "  if (a > 0) { int y = 7; print(y); }\n"
            "  int y = 2;\n"
            "  print(y);\n"
            "}"))
        assert lowered.fused_ok, sorted(lowered.hazards)

    def test_leaked_use_over_field_still_hazards(self):
        # the flat frame leaks the if-block's local x over the implicit
        # this-field in print(x); renaming cannot mirror that, so the
        # *use* keeps its hazard after the narrowing
        lowered = lower(analyze(
            "class C<Owner o> {\n"
            "  int x;\n"
            "  void m() {\n"
            "    x = 5;\n"
            "    if (x > 0) { int x = 1; }\n"
            "    print(x);\n"
            "  }\n"
            "}\n"
            "{ C<heap> c = new C<heap>; c.m(); }"))
        assert not lowered.fused_ok
        assert "use-of-leaked-local" in lowered.hazards


# ---------------------------------------------------------------------------
# the backend ladder
# ---------------------------------------------------------------------------

class TestLadder:
    def test_unknown_backend_rejected(self):
        with pytest.raises(CodegenUnsupported):
            select_program(_machine(SIMPLE), "jit")

    def test_forced_forms(self):
        assert select_program(_machine(SIMPLE),
                              "py-fused").backend == "py-fused"
        assert select_program(_machine(SIMPLE),
                              "py-faithful").backend == "py-faithful"

    def test_fused_declines_threaded_program(self):
        with pytest.raises(CodegenUnsupported):
            select_program(_machine(FORKED), "py-fused")

    def test_fallback_backends_form_a_chain(self):
        fused = select_program(_machine(SIMPLE), "py-fused")
        faithful = select_program(_machine(SIMPLE), "py-faithful")
        assert fused.fallback_backend == "py-faithful"
        assert faithful.fallback_backend == "interp"


# ---------------------------------------------------------------------------
# the C generator (pure text generation: no toolchain required)
# ---------------------------------------------------------------------------

class TestCSource:
    def test_source_shape(self):
        src = codegen_c.c_source(lower(analyze(SIMPLE)), CostModel())
        assert "int64_t repro_run(" in src
        assert "static Region g_heap" in src
        assert "alloc_in(" in src  # allocation charging present
        assert "setjmp" in src  # bail path present

    def test_cost_model_is_baked_in(self):
        lowered = lower(analyze(SIMPLE))
        a = codegen_c.c_source(lowered, CostModel())
        b = codegen_c.c_source(lowered, CostModel(op_basic=99))
        assert a != b

    def test_compile_c_declines_dynamic_checks(self):
        with pytest.raises(CodegenUnsupported, match="checks-erased"):
            codegen_c.compile_c(_machine(SIMPLE, checks_enabled=True))

    def test_compile_c_declines_instrumented_machines(self):
        analyzed = analyze(SIMPLE)
        machine = Machine(analyzed, RunOptions(
            checks_enabled=False, validate=False))  # instrument=True
        with pytest.raises(CodegenUnsupported):
            codegen_c.compile_c(machine)


# ---------------------------------------------------------------------------
# CompileError diagnostics (erasure backend)
# ---------------------------------------------------------------------------

class TestCompileErrorDiagnostics:
    def test_carries_span_and_renders_location(self):
        analyzed = analyze(FORKED).require_well_typed()
        with pytest.raises(CompileError) as exc:
            compile_to_python(analyzed)
        err = exc.value
        assert err.span is not None
        assert str(err).startswith(f"{err.span}: ")
        assert err.span.start.line == 3  # the fork statement

    def test_diagnostic_is_structured(self):
        analyzed = analyze(FORKED).require_well_typed()
        with pytest.raises(CompileError) as exc:
            compile_to_python(analyzed)
        diag = exc.value.diagnostic()
        assert diag["type"] == "CompileError"
        assert diag["line"] == 3
        assert diag["span"] and ":" in diag["span"]
        assert "fork" in diag["message"]

    def test_spanless_error_degrades_gracefully(self):
        err = CompileError("nope")
        assert err.span is None
        assert str(err) == "nope"
        diag = err.diagnostic()
        assert diag["span"] is None and diag["line"] is None
