"""Unit tests for the deterministic fault-injection plane
(:mod:`repro.rtsj.faults`)."""

from __future__ import annotations

import pytest

from repro.rtsj.faults import (FAULT_SITES, FaultInjector, FaultPlan,
                               FaultRecord, RecoveryPolicy,
                               ReplayInjector, fault_key, load_schedule,
                               save_schedule)


class TestFaultPlan:
    def test_unknown_site_in_rates_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(rates={"bogus_site": 0.5})

    def test_unknown_site_in_filter_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(sites=("lt_alloc", "nope"))

    def test_rate_for_respects_filter_and_overrides(self):
        plan = FaultPlan(rate=0.1, rates={"vt_chunk": 0.9},
                         sites=("lt_alloc", "vt_chunk"))
        assert plan.rate_for("lt_alloc") == 0.1
        assert plan.rate_for("vt_chunk") == 0.9
        # filtered out entirely
        assert plan.rate_for("gc_pause_spike") == 0.0

    def test_dict_roundtrip(self):
        plan = FaultPlan(seed=7, rate=0.25, rates={"lt_alloc": 1.0},
                         sites=("lt_alloc",), max_faults=3,
                         gc_spike_factor=16)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


def _drive(injector, consults=200):
    """Consult every site round-robin ``consults`` times; returns the
    schedule."""
    for i in range(consults):
        for site in FAULT_SITES:
            injector.fire(site, f"consult-{i}")
    return list(injector.injected)


class TestFaultInjector:
    def test_same_plan_same_schedule(self):
        plan = FaultPlan(seed=42, rate=0.1)
        first = _drive(FaultInjector(plan))
        second = _drive(FaultInjector(plan))
        assert fault_key(first) == fault_key(second)
        assert first  # a 10% rate over 1200 consults injects something

    def test_different_seed_different_schedule(self):
        a = _drive(FaultInjector(FaultPlan(seed=1, rate=0.1)))
        b = _drive(FaultInjector(FaultPlan(seed=2, rate=0.1)))
        assert fault_key(a) != fault_key(b)

    def test_zero_rate_never_fires_but_counts_consults(self):
        injector = FaultInjector(FaultPlan(seed=3, rate=0.0))
        assert not _drive(injector)
        assert injector.site_counts["lt_alloc"] == 200

    def test_disabled_site_does_not_perturb_enabled_ones(self):
        # the PRNG draws only at enabled sites, so enabling an extra
        # site must not reshuffle decisions taken at the others
        base = FaultPlan(seed=5, rate=0.2, sites=("lt_alloc",))
        wider = FaultPlan(seed=5, rate=0.2,
                          sites=("lt_alloc", "vt_chunk"))

        def lt_only(plan):
            injector = FaultInjector(plan)
            for i in range(100):
                injector.fire("lt_alloc", "")
            return fault_key(injector.injected)

        assert lt_only(base) == lt_only(wider)

    def test_max_faults_caps_schedule(self):
        injector = FaultInjector(FaultPlan(seed=0, rate=1.0,
                                           max_faults=4))
        _drive(injector, consults=10)
        assert len(injector.injected) == 4

    def test_records_carry_site_seq_and_detail(self):
        injector = FaultInjector(FaultPlan(seed=0, rate=1.0,
                                           sites=("vt_chunk",)))
        injector.fire("lt_alloc", "ignored")
        assert injector.fire("vt_chunk", "regionA")
        record = injector.injected[0]
        assert record.site == "vt_chunk"
        assert record.seq == 0
        assert record.detail == "regionA"
        assert record.index == 0


class TestReplayInjector:
    def test_refires_exactly_the_recorded_schedule(self):
        plan = FaultPlan(seed=11, rate=0.15)
        recorded = _drive(FaultInjector(plan))
        replay = ReplayInjector(recorded, plan)
        replayed = _drive(replay)
        assert fault_key(replayed) == fault_key(recorded)

    def test_no_randomness_involved(self):
        records = [FaultRecord(index=0, site="lt_alloc", seq=2)]
        replay = ReplayInjector(records)
        assert not replay.fire("lt_alloc")   # seq 0
        assert not replay.fire("lt_alloc")   # seq 1
        assert replay.fire("lt_alloc")       # seq 2: the recorded one
        assert not replay.fire("lt_alloc")   # seq 3


class TestRecoveryPolicy:
    def test_backoff_is_exponential(self):
        policy = RecoveryPolicy(backoff_base=64)
        assert [policy.backoff_cycles(i) for i in range(4)] == \
            [64, 128, 256, 512]

    def test_backoff_shift_is_clamped(self):
        policy = RecoveryPolicy(backoff_base=1)
        assert policy.backoff_cycles(100) == 1 << 16


class TestSchedulePersistence:
    def test_roundtrip(self, tmp_path):
        plan = FaultPlan(seed=9, rate=0.5, sites=("lt_alloc",))
        records = _drive(FaultInjector(plan), consults=20)
        path = str(tmp_path / "run.schedule.jsonl")
        save_schedule(path, plan, records,
                      meta={"program": "demo", "source": "x"})
        loaded_plan, loaded_records, meta = load_schedule(path)
        assert loaded_plan == plan
        assert loaded_records == records
        assert meta["program"] == "demo"
        assert meta["source"] == "x"

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 99, "plan": {}}\n')
        with pytest.raises(ValueError, match="unsupported schedule"):
            load_schedule(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty fault schedule"):
            load_schedule(str(path))
