"""Unit tests for the observability layer: tracer semantics, metric
instrument math, and exporter formats."""

import json

import pytest

from repro.obs import (BEGIN, END, INSTANT, MetricsRegistry,
                       ProfileCollector, Tracer, to_prometheus,
                       trace_lines)
from repro.obs.profile import build_report


class TestTracer:
    def test_emit_records_in_order(self):
        tracer = Tracer()
        tracer.emit("a", "x", cycle=1)
        tracer.emit("b", "y", cycle=5, thread="t1")
        assert [(e.cycle, e.kind, e.subject) for e in tracer.records] \
            == [(1, "a", "x"), (5, "b", "y")]
        assert tracer.records[1].thread == "t1"

    def test_detail_gated_by_flag(self):
        tracer = Tracer()
        tracer.emit_detail("alloc", "x", cycle=1)
        assert tracer.records == []
        tracer.detailed = True
        tracer.emit_detail("alloc", "x", cycle=1)
        assert len(tracer.records) == 1

    def test_close_abandoned_ends_open_spans(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "r1", cycle=1, thread="t1")
        tracer.begin("region-enter", "r1.sub", cycle=2, thread="t1")
        closed = tracer.close_abandoned("t1", cycle=9)
        assert closed == 2
        ends = [e for e in tracer.records if e.phase == "E"]
        assert [e.subject for e in ends] == ["r1.sub", "r1"]
        assert all(e.kind == "region-exit" for e in ends)
        assert all((e.attrs or {}).get("aborted") for e in ends)
        # idempotent: nothing left open
        assert tracer.close_abandoned("t1", cycle=9) == 0

    def test_max_records_drops_and_counts(self):
        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.emit("k", str(i), cycle=i)
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_spans_balanced(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "r", cycle=1)
        tracer.begin("region-enter", "r.b", cycle=2)
        tracer.end("region-exit", "r.b", cycle=3)
        tracer.end("region-exit", "r", cycle=4)
        assert tracer.spans_balanced()

    def test_spans_unbalanced_on_crossed_ends(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "a", cycle=1)
        tracer.begin("region-enter", "b", cycle=2)
        tracer.end("region-exit", "a", cycle=3)
        assert not tracer.spans_balanced()

    def test_spans_per_thread(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "a", cycle=1, thread="t1")
        tracer.begin("region-enter", "b", cycle=2, thread="t2")
        tracer.end("region-exit", "a", cycle=3, thread="t1")
        tracer.end("region-exit", "b", cycle=4, thread="t2")
        assert tracer.spans_balanced()

    def test_trace_lines_are_json(self):
        tracer = Tracer()
        tracer.emit("gc", "run", cycle=7, attrs={"pause": 2000})
        lines = list(trace_lines(tracer))
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {"cycle": 7, "kind": "gc", "ph": INSTANT,
                          "subject": "run", "thread": "main",
                          "attrs": {"pause": 2000}}

    def test_truncation_marker_line(self):
        tracer = Tracer(max_records=1)
        tracer.emit("a", "x")
        tracer.emit("b", "y")
        lines = [json.loads(l) for l in trace_lines(tracer)]
        assert lines[-1]["kind"] == "trace-truncated"
        assert lines[-1]["attrs"]["dropped"] == 1


class TestCountersAndGauges:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.labels(kind="a").inc(2)
        c.labels(kind="a").inc(1)
        assert c.labels(kind="a").value == 3
        assert c.value == 5  # default series unaffected

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c", "")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_watermark(self):
        g = MetricsRegistry().gauge("g", "")
        g.set(10)
        g.set_max(5)
        assert g.value == 10
        g.set_max(25)
        assert g.value == 25

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", "") is reg.counter("x", "")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", "")
        with pytest.raises(ValueError):
            reg.gauge("x", "")


class TestHistogram:
    def test_bucket_math(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "", buckets=(10, 20, 40))
        for v in (5, 10, 11, 39, 100):
            h.observe(v)
        child = h.labels()
        # non-cumulative: (<=10)=2, (<=20)=1, (<=40)=1, +Inf=1
        assert child.counts == [2, 1, 1, 1]
        assert child.cumulative() == [2, 3, 4, 5]
        assert child.sum == 165
        assert child.count == 5
        assert child.mean() == pytest.approx(33.0)

    def test_quantile_upper_bound(self):
        h = MetricsRegistry().histogram("h", "", buckets=(10, 20, 40))
        for v in (1, 2, 3, 15, 35):
            h.observe(v)
        assert h.labels().quantile(0.5) == 10.0
        assert h.labels().quantile(1.0) == 40.0
        assert h.labels().quantile(0.0) == 10.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", "", buckets=(5, 1))

    def test_labeled_series_independent(self):
        h = MetricsRegistry().histogram("h", "", buckets=(10,))
        h.labels(thread="a").observe(3)
        h.labels(thread="b").observe(30)
        assert h.labels(thread="a").count == 1
        assert h.labels(thread="a").counts == [1, 0]
        assert h.labels(thread="b").counts == [0, 1]


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_allocs_total", "allocations").inc(3)
        reg.gauge("repro_bytes", "bytes").labels(
            region="r.b", policy="LT").set(24)
        text = to_prometheus(reg)
        assert "# HELP repro_allocs_total allocations" in text
        assert "# TYPE repro_allocs_total counter" in text
        assert "repro_allocs_total 3" in text.splitlines()
        assert ('repro_bytes{policy="LT",region="r.b"} 24'
                in text.splitlines())

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_cost", "cost", buckets=(10, 20))
        for v in (5, 15, 99):
            h.observe(v)
        lines = to_prometheus(reg).splitlines()
        assert "# TYPE repro_cost histogram" in lines
        assert 'repro_cost_bucket{le="10"} 1' in lines
        assert 'repro_cost_bucket{le="20"} 2' in lines
        assert 'repro_cost_bucket{le="+Inf"} 3' in lines
        assert "repro_cost_sum 119" in lines
        assert "repro_cost_count 3" in lines

    def test_registered_but_unobserved_exports_zero_series(self):
        reg = MetricsRegistry()
        reg.histogram("repro_idle", "never touched", buckets=(1,))
        lines = to_prometheus(reg).splitlines()
        assert 'repro_idle_bucket{le="+Inf"} 0' in lines
        assert "repro_idle_count 0" in lines

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", "").labels(name='we"ird\\x').set(1)
        text = to_prometheus(reg)
        assert 'name="we\\"ird\\\\x"' in text

    def test_to_dict_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(2)
        reg.histogram("h", "", buckets=(10,)).observe(4)
        snapshot = json.loads(json.dumps(reg.to_dict()))
        assert snapshot["c"]["series"][0]["value"] == 2
        assert snapshot["h"]["series"][0]["buckets"]["10"] == 1
        assert snapshot["h"]["series"][0]["buckets"]["+Inf"] == 1


class TestProfileCollector:
    def test_alloc_and_check_accumulation(self):
        p = ProfileCollector()
        p.record_alloc(10, "r", 16)
        p.record_alloc(10, "r", 24)
        p.record_alloc(12, "heap", 16)
        p.record_check(11, "r", 32)
        p.record_check(11, "r", 36)
        assert p.alloc_sites[10] == [2, 40]
        assert p.alloc_sites[12] == [1, 16]
        assert p.region_alloc["r"] == [2, 40]
        assert p.check_sites[11] == [2, 68]
        assert p.region_check_cycles["r"] == 68

    def test_build_report_category_attribution(self):
        class FakeStats:
            cycles = 1000
            check_cycles = 100
            alloc_cycles = 200
            region_cycles = 150
            thread_cycles = 50
            gc_pause_cycles = 300
            io_cycles = 0
            cycles_by_thread = {"main": 1000}
            profile = ProfileCollector()

        report = build_report(FakeStats())
        assert report.total_cycles == 1000
        assert report.categories["compute"] == 200
        assert report.attributed_fraction == 1.0
        assert "compute" in report.format()


# ---------------------------------------------------------------------------
# Prometheus exposition round-trip (exporter fidelity)
# ---------------------------------------------------------------------------

def _parse_prometheus(text):
    """A minimal exposition-format parser: returns
    (help, types, samples) where samples maps
    (name, frozenset(labels.items())) -> float value."""
    import re
    help_text, types, samples = {}, {}, {}
    label_re = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            help_text[name] = (rest.replace("\\n", "\n")
                               .replace("\\\\", "\\"))
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unparsed comment: {line!r}"
        if "{" in line:
            name, _, rest = line.partition("{")
            body, _, value = rest.rpartition("} ")
            labels = {}
            for key, raw in label_re.findall(body):
                labels[key] = (raw.replace("\\\\", "\x00")
                               .replace('\\"', '"').replace("\\n", "\n")
                               .replace("\x00", "\\"))
        else:
            name, _, value = line.partition(" ")
            labels = {}
        samples[(name, frozenset(labels.items()))] = float(value)
    return help_text, types, samples


class TestPrometheusRoundTrip:
    HOSTILE = 'sp ace\\"quote\\back\nnew"line{brace}'

    def test_help_text_escaped_and_recovered(self):
        registry = MetricsRegistry()
        registry.counter("hostile_help",
                         'first\nsecond "quoted" back\\slash').inc()
        text = to_prometheus(registry)
        # the rendered exposition must stay line-oriented: the newline
        # in the help text may not produce an unparseable bare line
        for line in text.splitlines():
            assert line.startswith(("#", "hostile_help"))
        help_text, _, _ = _parse_prometheus(text)
        assert help_text["hostile_help"] \
            == 'first\nsecond "quoted" back\\slash'

    def test_hostile_label_values_roundtrip(self):
        registry = MetricsRegistry()
        registry.gauge("g", "h").labels(region=self.HOSTILE).set(7)
        text = to_prometheus(registry)
        _, _, samples = _parse_prometheus(text)
        key = ("g", frozenset({("region", self.HOSTILE)}))
        assert samples[key] == 7.0

    def test_counter_gauge_histogram_fidelity(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "count").labels(k="a").inc(3)
        registry.counter("c_total", "count").labels(k="b").inc(5)
        registry.gauge("g_bytes", "gauge").set(12.5)
        hist = registry.histogram("h_cycles", "hist", buckets=(1, 10, 100))
        for v in (0, 5, 5, 50, 500):
            hist.observe(v)
        help_text, types, samples = _parse_prometheus(
            to_prometheus(registry))
        assert types == {"c_total": "counter", "g_bytes": "gauge",
                         "h_cycles": "histogram"}
        assert help_text["h_cycles"] == "hist"
        assert samples[("c_total", frozenset({("k", "a")}))] == 3.0
        assert samples[("c_total", frozenset({("k", "b")}))] == 5.0
        assert samples[("g_bytes", frozenset())] == 12.5
        buckets = [samples[("h_cycles_bucket",
                            frozenset({("le", le)}))]
                   for le in ("1", "10", "100", "+Inf")]
        # cumulative buckets are monotone non-decreasing
        assert buckets == sorted(buckets)
        assert buckets == [1.0, 3.0, 4.0, 5.0]
        # +Inf bucket == _count; _sum matches the observations
        assert buckets[-1] == samples[("h_cycles_count", frozenset())]
        assert samples[("h_cycles_sum", frozenset())] == 560.0


class TestHistogramQuantiles:
    """p50/p95/p99 derived from buckets at export time (no collection
    cost beyond what the buckets already paid)."""

    def test_quantiles_dict_from_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_q", buckets=(10, 100, 1000))
        for v in [5] * 50 + [50] * 45 + [500] * 5:
            h.observe(v)
        q = h.quantiles()
        assert set(q) == {"p50", "p95", "p99"}
        assert q["p50"] == 10.0   # 50th obs lands in the <=10 bucket
        assert q["p95"] == 100.0
        assert q["p99"] == 1000.0

    def test_quantiles_merge_across_children(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_q", buckets=(10, 100))
        for _ in range(99):
            h.labels(region="a").observe(5)
        h.labels(region="b").observe(50)
        q = h.quantiles()
        assert q["p50"] == 10.0
        assert q["p99"] == 10.0

    def test_empty_histogram_has_no_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_q", buckets=(10,))
        assert h.quantiles() == {}

    def test_prometheus_export_emits_quantile_lines(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_q", "help", buckets=(10, 100))
        for v in (5, 5, 50):
            h.observe(v)
        text = to_prometheus(reg)
        assert 'repro_q{quantile="0.5"} 10.0' in text
        assert 'repro_q{quantile="0.99"} 100.0' in text
        # the summary-style lines sit between buckets and _sum/_count
        assert text.index("_bucket") < text.index('quantile="0.5"') \
            < text.index("repro_q_sum")

    def test_stats_summary_includes_quantiles(self):
        from repro.rtsj.stats import Stats
        stats = Stats()
        h = stats.metrics.histogram("repro_check_cycles",
                                    buckets=(10, 100))
        h.observe(5)
        summary = stats.summary()
        assert summary["quantiles"]["repro_check_cycles"]["p50"] == 10.0
        # deterministic: derived from simulated data only
        assert summary["quantiles"] == stats.quantile_summary()


class TestLabelCardinalityGuard:
    """The per-metric label-set cap: overflow folds into "<other>" and
    counts drops instead of growing without bound."""

    def test_overflow_folds_into_other(self):
        from repro.obs.metrics import (LABELS_DROPPED_METRIC,
                                       OVERFLOW_LABEL_VALUE)
        reg = MetricsRegistry(max_label_sets=4)
        counter = reg.counter("repro_sites")
        for i in range(10):
            counter.labels(site=f"s{i}").inc()
        keys = [dict(key) for key, _ in counter.children()]
        assert len(keys) == 5  # 4 real + 1 overflow
        assert {"site": OVERFLOW_LABEL_VALUE} in keys
        overflow = counter.labels(site=OVERFLOW_LABEL_VALUE)
        assert overflow.value == 6  # the 6 folded observations
        drops = reg.counter(LABELS_DROPPED_METRIC)
        assert drops.labels(metric="repro_sites").value == 6

    def test_existing_series_keep_updating_past_cap(self):
        reg = MetricsRegistry(max_label_sets=2)
        counter = reg.counter("repro_sites")
        counter.labels(site="a").inc()
        counter.labels(site="b").inc()
        counter.labels(site="c").inc()   # folded
        counter.labels(site="a").inc(5)  # existing: not folded
        assert counter.labels(site="a").value == 6

    def test_drop_counter_is_exempt_from_its_own_cap(self):
        from repro.obs.metrics import LABELS_DROPPED_METRIC
        reg = MetricsRegistry(max_label_sets=1)
        for i in range(5):
            reg.counter(f"repro_m{i}").labels(x="a").inc()
            reg.counter(f"repro_m{i}").labels(x="b").inc()  # folded
        drops = reg.counter(LABELS_DROPPED_METRIC)
        # one real child per overflowing metric, never folded itself
        assert len(list(drops.children())) == 5

    def test_unlabeled_series_never_fold(self):
        reg = MetricsRegistry(max_label_sets=1)
        gauge = reg.gauge("repro_g")
        gauge.labels(a="1").set(1)
        gauge.set(7)  # the unlabeled default child
        assert gauge.labels().value == 7


class TestTracerSampling:
    """The tracer's always-on tier: instant detail events thin 1-in-N,
    spans never sampled, overhead self-measured."""

    def test_instant_detail_events_sampled(self):
        tracer = Tracer(detailed=True, sample=4)
        for i in range(10):
            tracer.emit_detail("check", f"s{i}", cycle=i)
        stored = [e for e in tracer.records if e.kind == "check"]
        assert len(stored) == 3  # events 1, 5, 9
        assert tracer.sampled_out == 7

    def test_spans_never_sampled(self):
        tracer = Tracer(detailed=True, sample=100)
        for i in range(5):
            tracer.begin("region-enter", f"r{i}", cycle=i)
            tracer.end("region-enter", f"r{i}", cycle=i + 1)
        assert len(tracer.records) == 10
        assert tracer.spans_balanced()
        assert tracer.sampled_out == 0

    def test_lifecycle_emit_never_sampled(self):
        tracer = Tracer(detailed=True, sample=100)
        for i in range(5):
            tracer.emit("gc", f"run{i}", cycle=i)
        assert len(tracer.records) == 5

    def test_sample_stride_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample=0)

    def test_trace_lines_appends_sampled_marker(self):
        tracer = Tracer(detailed=True, sample=2)
        for i in range(4):
            tracer.emit_detail("check", f"s{i}", cycle=i)
        lines = [json.loads(line) for line in trace_lines(tracer)]
        marker = [l for l in lines if l["kind"] == "trace-sampled"]
        assert len(marker) == 1
        assert marker[0]["attrs"] == {"sampled_out": 2, "sample": 2}

    def test_overhead_accumulates(self):
        tracer = Tracer()
        for i in range(200):
            tracer.emit("a", f"x{i}", cycle=i)
        assert tracer.overhead_s > 0.0


class TestParsePrometheus:
    """The library parser: exact inverse of to_prometheus, used by the
    CI scrape-validation job."""

    def test_round_trip_samples(self):
        from repro.obs import parse_prometheus
        reg = MetricsRegistry()
        reg.counter("repro_c", "a counter").labels(kind="x").inc(3)
        reg.gauge("repro_g", "a gauge").set(2.5)
        h = reg.histogram("repro_h", "a hist", buckets=(10, 100))
        h.observe(5)
        help_text, types, samples = parse_prometheus(to_prometheus(reg))
        assert types == {"repro_c": "counter", "repro_g": "gauge",
                         "repro_h": "histogram"}
        assert samples[("repro_c", (("kind", "x"),))] == 3.0
        assert samples[("repro_g", ())] == 2.5
        assert samples[("repro_h_bucket", (("le", "10"),))] == 1.0
        assert samples[("repro_h_count", ())] == 1.0

    def test_hostile_label_values_round_trip(self):
        from repro.obs import parse_prometheus
        hostile = 'a"b\\c\nd'
        reg = MetricsRegistry()
        reg.counter("repro_c").labels(site=hostile).inc()
        _, _, samples = parse_prometheus(to_prometheus(reg))
        assert samples[("repro_c", (("site", hostile),))] == 1.0

    def test_malformed_lines_raise(self):
        from repro.obs import parse_prometheus
        with pytest.raises(ValueError):
            parse_prometheus("repro_c_no_value\n")
        with pytest.raises(ValueError):
            parse_prometheus("repro_c not-a-number\n")

    def test_snapshot_render_matches_live_render(self):
        from repro.obs import parse_prometheus, snapshot_to_prometheus
        reg = MetricsRegistry()
        reg.counter("repro_c", "c help").labels(kind="x").inc(3)
        h = reg.histogram("repro_h", "h help", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        snapshot = json.loads(json.dumps(reg.to_dict()))
        live = parse_prometheus(to_prometheus(reg))
        rendered = parse_prometheus(snapshot_to_prometheus(snapshot))
        # same samples modulo the live render's derived quantile lines
        live_samples = {k: v for k, v in live[2].items()
                        if not any(lk == "quantile"
                                   for lk, _ in k[1])}
        assert rendered[2] == live_samples
