"""Unit tests for the observability layer: tracer semantics, metric
instrument math, and exporter formats."""

import json

import pytest

from repro.obs import (BEGIN, END, INSTANT, MetricsRegistry,
                       ProfileCollector, Tracer, to_prometheus,
                       trace_lines)
from repro.obs.profile import build_report


class TestTracer:
    def test_emit_records_in_order(self):
        tracer = Tracer()
        tracer.emit("a", "x", cycle=1)
        tracer.emit("b", "y", cycle=5, thread="t1")
        assert [(e.cycle, e.kind, e.subject) for e in tracer.records] \
            == [(1, "a", "x"), (5, "b", "y")]
        assert tracer.records[1].thread == "t1"

    def test_detail_gated_by_flag(self):
        tracer = Tracer()
        tracer.emit_detail("alloc", "x", cycle=1)
        assert tracer.records == []
        tracer.detailed = True
        tracer.emit_detail("alloc", "x", cycle=1)
        assert len(tracer.records) == 1

    def test_close_abandoned_ends_open_spans(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "r1", cycle=1, thread="t1")
        tracer.begin("region-enter", "r1.sub", cycle=2, thread="t1")
        closed = tracer.close_abandoned("t1", cycle=9)
        assert closed == 2
        ends = [e for e in tracer.records if e.phase == "E"]
        assert [e.subject for e in ends] == ["r1.sub", "r1"]
        assert all(e.kind == "region-exit" for e in ends)
        assert all((e.attrs or {}).get("aborted") for e in ends)
        # idempotent: nothing left open
        assert tracer.close_abandoned("t1", cycle=9) == 0

    def test_max_records_drops_and_counts(self):
        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.emit("k", str(i), cycle=i)
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_spans_balanced(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "r", cycle=1)
        tracer.begin("region-enter", "r.b", cycle=2)
        tracer.end("region-exit", "r.b", cycle=3)
        tracer.end("region-exit", "r", cycle=4)
        assert tracer.spans_balanced()

    def test_spans_unbalanced_on_crossed_ends(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "a", cycle=1)
        tracer.begin("region-enter", "b", cycle=2)
        tracer.end("region-exit", "a", cycle=3)
        assert not tracer.spans_balanced()

    def test_spans_per_thread(self):
        tracer = Tracer(detailed=True)
        tracer.begin("region-enter", "a", cycle=1, thread="t1")
        tracer.begin("region-enter", "b", cycle=2, thread="t2")
        tracer.end("region-exit", "a", cycle=3, thread="t1")
        tracer.end("region-exit", "b", cycle=4, thread="t2")
        assert tracer.spans_balanced()

    def test_trace_lines_are_json(self):
        tracer = Tracer()
        tracer.emit("gc", "run", cycle=7, attrs={"pause": 2000})
        lines = list(trace_lines(tracer))
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {"cycle": 7, "kind": "gc", "ph": INSTANT,
                          "subject": "run", "thread": "main",
                          "attrs": {"pause": 2000}}

    def test_truncation_marker_line(self):
        tracer = Tracer(max_records=1)
        tracer.emit("a", "x")
        tracer.emit("b", "y")
        lines = [json.loads(l) for l in trace_lines(tracer)]
        assert lines[-1]["kind"] == "trace-truncated"
        assert lines[-1]["attrs"]["dropped"] == 1


class TestCountersAndGauges:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.labels(kind="a").inc(2)
        c.labels(kind="a").inc(1)
        assert c.labels(kind="a").value == 3
        assert c.value == 5  # default series unaffected

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c", "")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_watermark(self):
        g = MetricsRegistry().gauge("g", "")
        g.set(10)
        g.set_max(5)
        assert g.value == 10
        g.set_max(25)
        assert g.value == 25

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", "") is reg.counter("x", "")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", "")
        with pytest.raises(ValueError):
            reg.gauge("x", "")


class TestHistogram:
    def test_bucket_math(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "", buckets=(10, 20, 40))
        for v in (5, 10, 11, 39, 100):
            h.observe(v)
        child = h.labels()
        # non-cumulative: (<=10)=2, (<=20)=1, (<=40)=1, +Inf=1
        assert child.counts == [2, 1, 1, 1]
        assert child.cumulative() == [2, 3, 4, 5]
        assert child.sum == 165
        assert child.count == 5
        assert child.mean() == pytest.approx(33.0)

    def test_quantile_upper_bound(self):
        h = MetricsRegistry().histogram("h", "", buckets=(10, 20, 40))
        for v in (1, 2, 3, 15, 35):
            h.observe(v)
        assert h.labels().quantile(0.5) == 10.0
        assert h.labels().quantile(1.0) == 40.0
        assert h.labels().quantile(0.0) == 10.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", "", buckets=(5, 1))

    def test_labeled_series_independent(self):
        h = MetricsRegistry().histogram("h", "", buckets=(10,))
        h.labels(thread="a").observe(3)
        h.labels(thread="b").observe(30)
        assert h.labels(thread="a").count == 1
        assert h.labels(thread="a").counts == [1, 0]
        assert h.labels(thread="b").counts == [0, 1]


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_allocs_total", "allocations").inc(3)
        reg.gauge("repro_bytes", "bytes").labels(
            region="r.b", policy="LT").set(24)
        text = to_prometheus(reg)
        assert "# HELP repro_allocs_total allocations" in text
        assert "# TYPE repro_allocs_total counter" in text
        assert "repro_allocs_total 3" in text.splitlines()
        assert ('repro_bytes{policy="LT",region="r.b"} 24'
                in text.splitlines())

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_cost", "cost", buckets=(10, 20))
        for v in (5, 15, 99):
            h.observe(v)
        lines = to_prometheus(reg).splitlines()
        assert "# TYPE repro_cost histogram" in lines
        assert 'repro_cost_bucket{le="10"} 1' in lines
        assert 'repro_cost_bucket{le="20"} 2' in lines
        assert 'repro_cost_bucket{le="+Inf"} 3' in lines
        assert "repro_cost_sum 119" in lines
        assert "repro_cost_count 3" in lines

    def test_registered_but_unobserved_exports_zero_series(self):
        reg = MetricsRegistry()
        reg.histogram("repro_idle", "never touched", buckets=(1,))
        lines = to_prometheus(reg).splitlines()
        assert 'repro_idle_bucket{le="+Inf"} 0' in lines
        assert "repro_idle_count 0" in lines

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", "").labels(name='we"ird\\x').set(1)
        text = to_prometheus(reg)
        assert 'name="we\\"ird\\\\x"' in text

    def test_to_dict_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(2)
        reg.histogram("h", "", buckets=(10,)).observe(4)
        snapshot = json.loads(json.dumps(reg.to_dict()))
        assert snapshot["c"]["series"][0]["value"] == 2
        assert snapshot["h"]["series"][0]["buckets"]["10"] == 1
        assert snapshot["h"]["series"][0]["buckets"]["+Inf"] == 1


class TestProfileCollector:
    def test_alloc_and_check_accumulation(self):
        p = ProfileCollector()
        p.record_alloc(10, "r", 16)
        p.record_alloc(10, "r", 24)
        p.record_alloc(12, "heap", 16)
        p.record_check(11, "r", 32)
        p.record_check(11, "r", 36)
        assert p.alloc_sites[10] == [2, 40]
        assert p.alloc_sites[12] == [1, 16]
        assert p.region_alloc["r"] == [2, 40]
        assert p.check_sites[11] == [2, 68]
        assert p.region_check_cycles["r"] == 68

    def test_build_report_category_attribution(self):
        class FakeStats:
            cycles = 1000
            check_cycles = 100
            alloc_cycles = 200
            region_cycles = 150
            thread_cycles = 50
            gc_pause_cycles = 300
            io_cycles = 0
            cycles_by_thread = {"main": 1000}
            profile = ProfileCollector()

        report = build_report(FakeStats())
        assert report.total_cycles == 1000
        assert report.categories["compute"] == 200
        assert report.attributed_fraction == 1.0
        assert "compute" in report.format()


# ---------------------------------------------------------------------------
# Prometheus exposition round-trip (exporter fidelity)
# ---------------------------------------------------------------------------

def _parse_prometheus(text):
    """A minimal exposition-format parser: returns
    (help, types, samples) where samples maps
    (name, frozenset(labels.items())) -> float value."""
    import re
    help_text, types, samples = {}, {}, {}
    label_re = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            help_text[name] = (rest.replace("\\n", "\n")
                               .replace("\\\\", "\\"))
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unparsed comment: {line!r}"
        if "{" in line:
            name, _, rest = line.partition("{")
            body, _, value = rest.rpartition("} ")
            labels = {}
            for key, raw in label_re.findall(body):
                labels[key] = (raw.replace("\\\\", "\x00")
                               .replace('\\"', '"').replace("\\n", "\n")
                               .replace("\x00", "\\"))
        else:
            name, _, value = line.partition(" ")
            labels = {}
        samples[(name, frozenset(labels.items()))] = float(value)
    return help_text, types, samples


class TestPrometheusRoundTrip:
    HOSTILE = 'sp ace\\"quote\\back\nnew"line{brace}'

    def test_help_text_escaped_and_recovered(self):
        registry = MetricsRegistry()
        registry.counter("hostile_help",
                         'first\nsecond "quoted" back\\slash').inc()
        text = to_prometheus(registry)
        # the rendered exposition must stay line-oriented: the newline
        # in the help text may not produce an unparseable bare line
        for line in text.splitlines():
            assert line.startswith(("#", "hostile_help"))
        help_text, _, _ = _parse_prometheus(text)
        assert help_text["hostile_help"] \
            == 'first\nsecond "quoted" back\\slash'

    def test_hostile_label_values_roundtrip(self):
        registry = MetricsRegistry()
        registry.gauge("g", "h").labels(region=self.HOSTILE).set(7)
        text = to_prometheus(registry)
        _, _, samples = _parse_prometheus(text)
        key = ("g", frozenset({("region", self.HOSTILE)}))
        assert samples[key] == 7.0

    def test_counter_gauge_histogram_fidelity(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "count").labels(k="a").inc(3)
        registry.counter("c_total", "count").labels(k="b").inc(5)
        registry.gauge("g_bytes", "gauge").set(12.5)
        hist = registry.histogram("h_cycles", "hist", buckets=(1, 10, 100))
        for v in (0, 5, 5, 50, 500):
            hist.observe(v)
        help_text, types, samples = _parse_prometheus(
            to_prometheus(registry))
        assert types == {"c_total": "counter", "g_bytes": "gauge",
                         "h_cycles": "histogram"}
        assert help_text["h_cycles"] == "hist"
        assert samples[("c_total", frozenset({("k", "a")}))] == 3.0
        assert samples[("c_total", frozenset({("k", "b")}))] == 5.0
        assert samples[("g_bytes", frozenset())] == 12.5
        buckets = [samples[("h_cycles_bucket",
                            frozenset({("le", le)}))]
                   for le in ("1", "10", "100", "+Inf")]
        # cumulative buckets are monotone non-decreasing
        assert buckets == sorted(buckets)
        assert buckets == [1.0, 3.0, 4.0, 5.0]
        # +Inf bucket == _count; _sum matches the observations
        assert buckets[-1] == samples[("h_cycles_count", frozenset())]
        assert samples[("h_cycles_sum", frozenset())] == 560.0
