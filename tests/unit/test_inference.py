"""Tests for Section 2.5 — defaults and intra-procedural inference."""

import sys
from pathlib import Path

from repro.core import analyze
from repro.lang import parse_program, pretty_program

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402


def inferred_text(source: str) -> str:
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    return pretty_program(analyzed.program)


class TestDefaults:
    def test_unannotated_class_gets_owner_formal(self):
        text = inferred_text("class C { int x; }")
        assert "class C<Owner __owner>" in text

    def test_instance_field_defaults_to_owner_of_this(self):
        text = inferred_text(
            "class Cell<Owner o> { Cell peer; }")
        assert "Cell<o> peer;" in text

    def test_static_field_defaults_to_immortal(self):
        text = inferred_text(
            "class D<Owner o> { int x; }\n"
            "class C<Owner o> { static D shared; }")
        assert "static D<immortal> shared;" in text

    def test_method_signature_defaults_to_initial_region(self):
        text = inferred_text(
            "class D<Owner o> { int x; }\n"
            "class C<Owner o> { D make() { return null; } }")
        assert "D<initialRegion> make()" in text

    def test_default_effects_clause(self):
        text = inferred_text(
            "class C<Owner a, Owner b> {"
            "  void m<Owner p>() { }"
            "}")
        assert "accesses a, b, p, initialRegion" in text

    def test_explicit_effects_kept(self):
        text = inferred_text(
            "class C<Owner o> { void m() accesses heap { } }")
        assert "accesses heap" in text

    def test_unannotated_extends_instantiated_with_owner(self):
        text = inferred_text(
            "class A { int x; }\nclass B extends A { }")
        assert "class B<Owner __owner> extends A<__owner>" in text

    def test_portal_field_defaults_to_this(self):
        text = inferred_text(
            "regionKind K extends SharedRegion { Cell slot; }\n"
            "class Cell<Owner o> { int v; }")
        assert "Cell<this> slot;" in text


class TestUnification:
    def test_local_inferred_from_new(self):
        text = inferred_text(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r> h) {"
            "  Cell<r> anchor = new Cell<r>;"
            "  Cell other = new Cell;"
            "  other = anchor;"
            "}")
        assert "Cell<r> other = new Cell<r>;" in text

    def test_local_inferred_through_field(self):
        text = inferred_text(
            "class Cell<Owner o> { Cell<o> next; }\n"
            "(RHandle<r> h) {"
            "  Cell<r> head = new Cell<r>;"
            "  Cell second = new Cell;"
            "  second.next = head;"
            "}")
        assert "Cell<r> second = new Cell<r>;" in text

    def test_inference_through_method_args(self):
        text = inferred_text(
            "class Cell<Owner o> { int v; }\n"
            "class Sink<Owner o> { void take(Cell<o> c) { } }\n"
            "(RHandle<r> h) {"
            "  Sink<r> sink = new Sink<r>;"
            "  Cell fresh = new Cell;"
            "  sink.take(fresh);"
            "}")
        assert "Cell<r> fresh = new Cell<r>;" in text

    def test_inference_through_method_return(self):
        text = inferred_text(
            "class Cell<Owner o> { int v; }\n"
            "class Maker<Owner o> { Cell<o> make() { return null; } }\n"
            "(RHandle<r> h) {"
            "  Maker<r> maker = new Maker<r>;"
            "  Cell got = maker.make();"
            "}")
        assert "Cell<r> got" in text

    def test_unconstrained_defaults_to_initial_region(self):
        text = inferred_text(
            "class Cell<Owner o> { int v; }\n"
            "{ Cell loner = new Cell; }")
        assert "Cell<initialRegion> loner = new Cell<initialRegion>;" \
            in text

    def test_tstack_example_inference(self):
        # the paper's example with the push body unannotated
        text = inferred_text(
            "class T<Owner o> { int x; }\n"
            "class TStack<Owner stackOwner, Owner TOwner> {"
            "  TNode<this, TOwner> head = null;"
            "  void push(T<TOwner> value) {"
            "    TNode newNode = new TNode;"
            "    newNode.init(value, head);"
            "    head = newNode;"
            "  }"
            "}\n"
            "class TNode<Owner nodeOwner, Owner TOwner> {"
            "  T<TOwner> value;"
            "  TNode<nodeOwner, TOwner> next;"
            "  void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {"
            "    this.value = v;"
            "    this.next = n;"
            "  }"
            "}")
        assert "TNode<this, TOwner> newNode = new TNode<this, TOwner>;" \
            in text

    def test_method_owner_args_inferred(self):
        text = inferred_text(
            "class Cell<Owner o> { int v; }\n"
            "class Id<Owner o> {"
            "  Cell<p> pass<Owner p>(Cell<p> c) accesses p { return c; }"
            "}\n"
            "(RHandle<r> h) {"
            "  Id<r> id = new Id<r>;"
            "  Cell<r> c = new Cell<r>;"
            "  Cell back = id.pass(c);"
            "}")
        assert "id.pass<r>(c)" in text

    def test_conflicting_concrete_owners_rejected_by_checker(self):
        # inference leaves the clash; the checker reports it
        assert_rejected(
            "class Cell<Owner o> { Cell<o> next; }\n"
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Cell<r1> a = new Cell<r1>;"
            "  Cell<r2> b = new Cell<r2>;"
            "  a.next = b;"
            "} }",
            rule="SUBTYPE")

    def test_inference_inside_subregions(self):
        assert_well_typed(
            "regionKind Buf extends SharedRegion { Cell<this> slot; }\n"
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<Buf r> h) {"
            "  Cell fresh = new Cell;"
            "  h.slot = fresh;"
            "}")


class TestSeparateCompilation:
    def test_initial_region_default_renames_to_call_site_region(self):
        # an unannotated parameter defaults to Cell<initialRegion>, which
        # renames to the *caller's current region*; calling inside the
        # region block therefore works ...
        assert_well_typed(
            "class Cell<Owner o> { int v; }\n"
            "class Sink<Owner o> { void take(Cell c) { } }\n"
            "(RHandle<r> h) {"
            "  Sink<r> sink = new Sink<r>;"
            "  Cell<r> mine = new Cell<r>;"
            "  sink.take(mine);"
            "}")

    def test_inference_is_intra_procedural(self):
        # ... but a method body cannot influence another method's
        # signature (separate compilation): at main's top level the
        # current region is the heap, so an immortal argument is rejected
        assert_rejected(
            "class Cell<Owner o> { int v; }\n"
            "class Sink<Owner o> { void take(Cell c) { } }\n"
            "{"
            "  Sink<immortal> sink = new Sink<immortal>;"
            "  Cell<immortal> mine = new Cell<immortal>;"
            "  sink.take(mine);"
            "}",
            rule="SUBTYPE")
