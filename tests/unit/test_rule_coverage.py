"""Meta-tests: the rule-name audit trail stays intact.

Every judgment name the checker can emit must (a) be documented in
docs/RULES.md and (b) be referenced by at least one test, so a new rule
cannot land without a pinning test and documentation.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO / "src" / "repro" / "core" / "checker.py"
RULES_DOC = REPO / "docs" / "RULES.md"
TESTS_DIR = REPO / "tests"


def emitted_rules():
    text = CHECKER.read_text()
    return sorted(set(re.findall(r'rule="([^"]+)"', text)))


def test_checker_emits_rules():
    rules = emitted_rules()
    assert len(rules) >= 12
    assert "EXPR NEW" in rules
    assert "TYPE C" in rules


def test_every_rule_documented():
    doc = RULES_DOC.read_text()
    missing = [rule for rule in emitted_rules()
               if rule not in doc and rule != "OWNER"]
    assert not missing, f"rules missing from docs/RULES.md: {missing}"


def test_every_rule_referenced_by_a_test():
    corpus = "\n".join(p.read_text() for p in TESTS_DIR.rglob("test_*.py")
                       if p.name != "test_rule_coverage.py")
    missing = [rule for rule in emitted_rules() if rule not in corpus]
    # OWNER is a span-carrying wrapper around env lookups; SUBTYPE and
    # the rest must all be pinned
    allowed_unpinned = {"OWNER"}
    missing = [rule for rule in missing if rule not in allowed_unpinned]
    assert not missing, f"rules with no pinning test: {missing}"


def test_documented_deviations_section_exists():
    doc = RULES_DOC.read_text()
    assert "Documented deviations" in doc
    assert "heap-only-by-heap" in doc
