"""Unit tests for the trace analysis engine over synthetic flight
records: region reconstruction, leak flagging, portal/thread stats,
the check-elimination ledger, and the chaos fault join."""

from repro.obs.analyze import (InspectReport, build_ledger,
                               build_portal_stats, build_region_lives,
                               build_report, build_thread_stats,
                               combine_ledgers, flag_leak_suspects,
                               join_faults, ledger_mismatches)
from repro.obs.flightrec import FLIGHT_SCHEMA, FlightRecord


def _rec(eid, cycle, kind, subject, thread="main", attrs=None,
         parent=0):
    return FlightRecord(eid, parent, cycle, thread, kind, subject,
                        attrs)


def _header(check_totals=None, meta=None):
    return {"schema": FLIGHT_SCHEMA, "capacity": 64, "total": 0,
            "stored": 0, "dropped": 0, "kind_counts": {},
            "check_totals": check_totals or {}, "meta": meta or {}}


class TestRegionLives:
    def test_watermark_curve_tracks_alloc_and_flush(self):
        records = [
            _rec(1, 0, "region-created", "r",
                 attrs={"policy": "LT", "kind": "Buf"}),
            _rec(2, 10, "alloc", "Obj -> r",
                 attrs={"region": "r", "bytes": 100}),
            _rec(3, 20, "alloc", "Obj -> r",
                 attrs={"region": "r", "bytes": 50}),
            _rec(4, 30, "region-flushed", "r",
                 attrs={"bytes": 150, "objects": 2}),
            _rec(5, 40, "alloc", "Obj -> r",
                 attrs={"region": "r", "bytes": 25}),
            _rec(6, 50, "region-destroyed", "r",
                 attrs={"bytes": 25, "objects": 1}),
        ]
        life = build_region_lives(records)["r"]
        assert life.policy == "LT"
        assert life.allocations == 3
        assert life.alloc_bytes == 175
        assert life.peak_bytes == 150
        assert life.live_bytes == 0
        assert life.flushes == 1
        assert life.destroyed_cycle == 50
        assert life.monotone is False
        assert life.curve == [(0, 0), (10, 100), (20, 150), (30, 0),
                              (40, 25), (50, 0)]

    def test_gc_events_drive_the_heap_curve(self):
        records = [
            _rec(1, 5, "alloc", "Obj -> heap",
                 attrs={"region": "heap", "bytes": 64}),
            _rec(2, 10, "gc", "collected 1",
                 attrs={"heap_bytes": 16, "pause": 100}),
        ]
        heap = build_region_lives(records)["heap"]
        assert heap.live_bytes == 16
        assert heap.monotone is False


class TestLeakSuspects:
    def _growing(self, name, n=4, destroyed=False):
        records = [_rec(1, 0, "region-created", name,
                        attrs={"policy": "VT", "kind": "Leaky"})]
        for i in range(n):
            records.append(
                _rec(2 + i, 100 * (i + 1), "alloc", f"Obj -> {name}",
                     attrs={"region": name, "bytes": 32}))
        if destroyed:
            records.append(_rec(2 + n, 100 * (n + 1),
                                "region-destroyed", name, attrs={}))
        return records

    def test_monotone_longlived_region_is_flagged(self):
        lives = build_region_lives(self._growing("leaky"))
        suspects = flag_leak_suspects(lives, horizon=500)
        assert [s.name for s in suspects] == ["leaky"]
        assert lives["leaky"].leak_suspect
        assert lives["leaky"].leak_reasons

    def test_destroyed_region_is_not_flagged(self):
        lives = build_region_lives(self._growing("ok", destroyed=True))
        assert flag_leak_suspects(lives, horizon=500) == []

    def test_short_lived_region_is_not_flagged(self):
        lives = build_region_lives(self._growing("brief"))
        # lifetime 400 of a 10_000-cycle run: under the 25% bar
        assert flag_leak_suspects(lives, horizon=10_000) == []

    def test_heap_is_never_flagged(self):
        lives = build_region_lives(self._growing("heap"))
        assert flag_leak_suspects(lives, horizon=500) == []


class TestPortalsAndThreads:
    def test_portal_contention_needs_two_threads(self):
        records = [
            _rec(1, 1, "portal-write", "r.box", thread="t1"),
            _rec(2, 2, "portal-read", "r.box", thread="t2"),
            _rec(3, 3, "portal-read", "r.solo", thread="t1"),
        ]
        portals = build_portal_stats(records)
        assert portals["r.box"].contended
        assert portals["r.box"].reads == 1
        assert portals["r.box"].writes == 1
        assert not portals["r.solo"].contended

    def test_thread_stats_attribute_stalls(self):
        records = [
            _rec(1, 0, "thread-spawned", "w", thread="main",
                 attrs={"realtime": True}),
            _rec(2, 10, "recovery", "retry 0", thread="w",
                 attrs={"backoff": 64, "attempt": 0}),
            _rec(3, 20, "gc", "collected 2", thread="<gc>",
                 attrs={"pause": 500}),
            _rec(4, 30, "thread-aborted", "w", thread="w",
                 attrs={"error": "OutOfRegionMemoryError"}),
        ]
        threads = build_thread_stats(records, horizon=100)
        w = threads["w"]
        assert w.status == "aborted"
        assert w.realtime is True
        assert w.error == "OutOfRegionMemoryError"
        assert w.backoff_cycles == 64
        assert w.gc_stall_cycles == 500
        # internal "<gc>" pseudo-thread gets no ThreadStat
        assert "<gc>" not in threads


class TestLedger:
    def test_ledger_from_check_totals(self):
        header = _header(
            check_totals={"check-assign": [10, 320],
                          "check-read": [4, 32],
                          "check-elide-assign": [2, 56]},
            meta={"mode": "dynamic", "summary": {"cycles": 999}})
        ledger = build_ledger(header)
        assert ledger["performed"] == {"assign": 10, "read": 4,
                                       "total": 14}
        assert ledger["check_cycles"]["total"] == 352
        assert ledger["elided"]["total"] == 2
        assert ledger["cycles_saved"]["total"] == 56
        assert ledger["run_cycles"] == 999

    def test_mismatch_against_embedded_summary(self):
        header = _header(
            check_totals={"check-assign": [10, 320]},
            meta={"summary": {"cycles": 1, "assignment_checks": 11,
                              "read_checks": 0, "check_cycles": 320}})
        problems = ledger_mismatches(header)
        assert len(problems) == 1
        assert "assignment_checks" in problems[0]

    def test_combine_infers_modes_and_overhead(self):
        dyn = build_ledger(_header(
            check_totals={"check-assign": [8, 224]},
            meta={"mode": "dynamic", "summary": {"cycles": 2000}}))
        sta = build_ledger(_header(
            check_totals={"check-elide-assign": [8, 224]},
            meta={"mode": "static", "summary": {"cycles": 1000}}))
        # order must not matter
        for fig in (combine_ledgers(dyn, sta), combine_ledgers(sta, dyn)):
            assert fig["checks_performed"] == 8
            assert fig["checks_elided"] == 8
            assert fig["cycles_saved"] == 224
            assert fig["overhead_ratio"] == 2.0


class TestFaultJoin:
    def test_faults_map_to_recovery_and_crash(self):
        records = [
            _rec(1, 10, "fault-injected", "lt_alloc", thread="<fault>",
                 attrs={"site": "lt_alloc", "seq": 0}),
            _rec(2, 20, "recovery", "retry 0", thread="main",
                 attrs={"backoff": 64}),
            _rec(3, 30, "fault-injected", "thread_spawn",
                 thread="<fault>",
                 attrs={"site": "thread_spawn", "seq": 2}),
            _rec(4, 40, "thread-aborted", "w", thread="w",
                 attrs={"error": "ThreadSpawnError"}),
        ]
        schedule = [{"site": "lt_alloc", "seq": 0, "detail": "r"},
                    {"site": "thread_spawn", "seq": 2, "detail": "w"},
                    {"site": "vt_chunk", "seq": 9, "detail": "gone"}]
        joins = join_faults(records, schedule)
        assert joins[0]["outcome"] == "recovered:recovery"
        assert joins[0]["outcome_event_id"] == 2
        assert joins[1]["outcome"] == "crashed:w"
        # a fault evicted from the ring window is reported, not lost
        assert joins[2]["matched"] is False
        assert joins[2]["outcome"] == "not-in-window"


class TestReport:
    def _report(self):
        records = [
            _rec(1, 0, "region-created", "r",
                 attrs={"policy": "VT", "kind": "Buf"}),
            _rec(2, 100, "alloc", "Obj -> r",
                 attrs={"region": "r", "bytes": 40}),
            _rec(3, 200, "alloc", "Obj -> r",
                 attrs={"region": "r", "bytes": 40}),
            _rec(4, 300, "alloc", "Obj -> r",
                 attrs={"region": "r", "bytes": 40}),
            _rec(5, 400, "portal-write", "r.box", thread="main"),
        ]
        header = _header(
            check_totals={"check-assign": [3, 84]},
            meta={"mode": "dynamic", "program": "synthetic",
                  "summary": {"cycles": 400, "assignment_checks": 3,
                              "read_checks": 0, "check_cycles": 84}})
        return build_report(header, records)

    def test_text_json_html_render(self):
        report = self._report()
        assert isinstance(report, InspectReport)
        text = report.format()
        assert "check-elimination ledger" in text
        assert "LEAK SUSPECT" in text  # r grows monotonically
        data = report.to_dict()
        assert data["leak_suspects"] == ["r"]
        assert data["ledger_mismatches"] == []
        html = report.to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "leak" in html and "svg" in html
