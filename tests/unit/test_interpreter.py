"""Unit tests for the interpreter: semantics of the core language on the
simulated platform."""

import sys
from pathlib import Path

import pytest

from repro import RunOptions, analyze, run_source
from repro.errors import (InterpreterError, OutOfRegionMemoryError,
                          SimulatedNullPointerError)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_well_typed, run_both_modes  # noqa: E402


def run(source: str, **options):
    return run_source(assert_well_typed(source), RunOptions(**options))


def output_of(source: str, **options):
    return run(source, **options).output


class TestScalars:
    def test_integer_arithmetic(self):
        assert output_of("{ print(7 + 3 * 2 - 1); }") == ["12"]

    def test_java_division_truncates_toward_zero(self):
        assert output_of("{ print(-7 / 2); print(7 / 2); }") == ["-3", "3"]

    def test_java_modulo_sign(self):
        assert output_of("{ print(-7 % 3); print(7 % -3); }") == ["-1", "1"]

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            run("{ int z = 0; print(1 / z); }")

    def test_float_math(self):
        assert output_of("{ print(1.5 * 2.0); }") == ["3"]
        assert output_of("{ print(sqrt(9.0)); }") == ["3"]

    def test_conversions(self):
        assert output_of("{ print(ftoi(3.9)); print(itof(2)); }") \
            == ["3", "2"]

    def test_booleans_and_short_circuit(self):
        # `1/z` on the right of && must not evaluate when left is false
        assert output_of(
            "{ int z = 0; boolean ok = false && 1 / z == 1;"
            "  print(ok); }") == ["false"]
        assert output_of(
            "{ int z = 0; boolean ok = true || 1 / z == 1;"
            "  print(ok); }") == ["true"]

    def test_comparisons(self):
        assert output_of("{ print(3 < 4); print(4 <= 3);"
                         "  print(3 == 3); print(3 != 3); }") \
            == ["true", "false", "true", "false"]

    def test_unary(self):
        assert output_of("{ print(-(3)); print(!true); }") \
            == ["-3", "false"]

    def test_check_builtin(self):
        with pytest.raises(InterpreterError):
            run("{ check(1 == 2); }")


class TestControlFlow:
    def test_if_else(self):
        assert output_of(
            "{ int x = 3;"
            "  if (x > 2) { print(1); } else { print(2); } }") == ["1"]

    def test_while_loop(self):
        assert output_of(
            "{ int i = 0; int acc = 0;"
            "  while (i < 5) { acc = acc + i; i = i + 1; }"
            "  print(acc); }") == ["10"]

    def test_early_return(self):
        assert output_of(
            "class C<Owner o> {"
            "  int f(int x) { if (x > 0) { return 1; } return 2; }"
            "}\n"
            "{ C<heap> c = new C<heap>; print(c.f(5)); print(c.f(-5)); }"
        ) == ["1", "2"]

    def test_return_unwinds_region(self):
        # returning from inside a region block must still delete it
        result = run(
            "class C<Owner o> {"
            "  int f() accesses heap {"
            "    (RHandle<r> h) { return 7; }"
            "    return 0;"
            "  }"
            "}\n"
            "{ C<heap> c = new C<heap>; print(c.f()); }")
        assert result.output == ["7"]
        assert result.stats.regions_created == 1

    def test_missing_return_yields_default(self):
        assert output_of(
            "class C<Owner o> { int f() { } }\n"
            "{ C<heap> c = new C<heap>; print(c.f()); }") == ["0"]


class TestObjects:
    def test_fields_zero_initialized(self):
        assert output_of(
            "class C<Owner o> { int i; float f; boolean b; C<o> r; }\n"
            "{ C<heap> c = new C<heap>;"
            "  print(c.i); print(c.f); print(c.b); print(c.r == null); }"
        ) == ["0", "0", "false", "true"]

    def test_literal_field_initializers(self):
        assert output_of(
            "class C<Owner o> { int x = 42; boolean b = true; }\n"
            "{ C<heap> c = new C<heap>; print(c.x); print(c.b); }") \
            == ["42", "true"]

    def test_null_dereference(self):
        with pytest.raises(SimulatedNullPointerError):
            run("class C<Owner o> { int x; }\n"
                "{ C<heap> c = null; print(c.x); }")

    def test_dynamic_dispatch(self):
        assert output_of(
            "class A<Owner o> { int tag() { return 1; } }\n"
            "class B<Owner o> extends A<o> { int tag() { return 2; } }\n"
            "{ A<heap> x = new B<heap>; print(x.tag()); }") == ["2"]

    def test_inherited_method_runs_with_translated_owners(self):
        assert output_of(
            "class Cell<Owner o> { int v; }\n"
            "class Base<Owner a> {"
            "  Cell<a> make() { return new Cell<a>; }"
            "}\n"
            "class Derived<Owner b> extends Base<b> { }\n"
            "(RHandle<r> h) {"
            "  Derived<r> d = new Derived<r>;"
            "  Cell<r> c = d.make();"
            "  print(c != null);"
            "}") == ["true"]

    def test_statics(self):
        assert output_of(
            "class C<Owner o> {"
            "  static int count;"
            "  void bump() accesses o { C.count = C.count + 1; }"
            "}\n"
            "{ C<heap> a = new C<heap>;"
            "  a.bump(); a.bump(); print(C.count); }") == ["2"]

    def test_reference_identity(self):
        assert output_of(
            "class C<Owner o> { int x; }\n"
            "{ C<heap> a = new C<heap>; C<heap> b = new C<heap>;"
            "  C<heap> c = a;"
            "  print(a == b); print(a == c); }") == ["false", "true"]


class TestArrays:
    def test_int_array(self):
        assert output_of(
            "{ IntArray<heap> a = new IntArray<heap>(3);"
            "  a.set(0, 7); a.set(2, 9);"
            "  print(a.get(0) + a.get(1) + a.get(2));"
            "  print(a.length()); }") == ["16", "3"]

    def test_float_array(self):
        assert output_of(
            "{ FloatArray<heap> a = new FloatArray<heap>(2);"
            "  a.set(0, 1.5); print(a.get(0) * 2.0); }") == ["3"]

    def test_bounds_checked(self):
        with pytest.raises(InterpreterError):
            run("{ IntArray<heap> a = new IntArray<heap>(2);"
                "  a.set(5, 1); }")
        with pytest.raises(InterpreterError):
            run("{ IntArray<heap> a = new IntArray<heap>(2);"
                "  print(a.get(-1)); }")

    def test_negative_length(self):
        with pytest.raises(InterpreterError):
            run("{ IntArray<heap> a = new IntArray<heap>(0 - 1); }")


class TestRegionsAtRuntime:
    def test_region_deleted_on_exit(self):
        result = run(
            "class C<Owner o> { int x; }\n"
            "{ (RHandle<r> h) { C<r> c = new C<r>; } print(0); }")
        assert result.stats.regions_created == 1
        assert result.stats.objects_freed == 1

    def test_lt_region_overflow(self):
        with pytest.raises(OutOfRegionMemoryError):
            run("class C<Owner o> { int a; int b; int c; int d; }\n"
                "{ (RHandle<LocalRegion : LT(48) r> h) {"
                "    C<r> one = new C<r>;"
                "    C<r> two = new C<r>;"
                "} }")

    def test_allocation_follows_owner_chain(self):
        # an object owned by another object lands in its owner's region
        result = run(
            "class Inner<Owner o> { int v; }\n"
            "class Outer<Owner o> {"
            "  Inner<this> guts;"
            "  void fill() { guts = new Inner<this>; }"
            "}\n"
            "(RHandle<r> h) {"
            "  Outer<r> out = new Outer<r>;"
            "  out.fill();"
            "  print(1);"
            "}")
        assert result.output == ["1"]
        # both objects died with the region
        assert result.stats.objects_freed == 2

    def test_cycles_count_moves_with_checks(self):
        dyn, sta = run_both_modes(
            "class C<Owner o> { C<o> f; }\n"
            "(RHandle<r> h) {"
            "  C<r> a = new C<r>; C<r> b = new C<r>;"
            "  int i = 0;"
            "  while (i < 10) { a.f = b; i = i + 1; }"
            "}")
        assert dyn.cycles > sta.cycles
        assert dyn.stats.assignment_checks == 10
        assert sta.stats.assignment_checks == 0

    def test_io_builtin_charges_cost(self):
        cheap = run("{ io(10); }")
        pricey = run("{ io(10000); }")
        assert pricey.cycles - cheap.cycles >= 9000


class TestCallStack:
    RECURSIVE = """
class Rec<Owner o> {
    int down(int n) {
        if (n == 0) { return 0; }
        return 1 + this.down(n - 1);
    }
}
{ Rec<heap> r = new Rec<heap>; print(r.down(%d)); }
"""

    def test_moderate_recursion_works(self):
        assert output_of(self.RECURSIVE % 60) == ["60"]

    def test_stack_overflow_is_a_simulated_error(self):
        # deep recursion must surface as the platform's stack-overflow
        # error, never as a host RecursionError
        with pytest.raises(InterpreterError) as exc:
            run(self.RECURSIVE % 5000)
        assert "stack overflow" in str(exc.value)
