"""Unit tests for the RTSJ dynamic checks (CheckEngine) and the
garbage collector."""

import pytest

from repro.errors import IllegalAssignmentError, MemoryAccessError
from repro.rtsj.checks import CheckEngine
from repro.rtsj.gc import GarbageCollector
from repro.rtsj.objects import ObjRef
from repro.rtsj.regions import LT, VT, RegionManager
from repro.rtsj.stats import CostModel, Stats


def obj_in(area, name="C"):
    o = ObjRef(name, (area,), ("f",), area)
    area.allocate(o)
    return o


@pytest.fixture
def mgr():
    return RegionManager()


def engine(enabled=True, validate=True):
    return CheckEngine(CostModel(), Stats(), enabled, validate)


class TestAssignmentChecks:
    def test_legal_assignment_charges_cycles(self, mgr):
        outer = mgr.create("outer", "K", VT, 0, set())
        inner = mgr.create("inner", "K", VT, 0,
                           outer.ancestor_ids | {outer.area_id})
        eng = engine()
        value = obj_in(outer)
        cost = eng.assignment_cost(inner, value)
        assert cost > 0
        assert eng.stats.assignment_checks == 1

    def test_illegal_assignment_raises(self, mgr):
        outer = mgr.create("outer", "K", VT, 0, set())
        inner = mgr.create("inner", "K", VT, 0,
                           outer.ancestor_ids | {outer.area_id})
        eng = engine()
        value = obj_in(inner)
        with pytest.raises(IllegalAssignmentError):
            eng.assignment_cost(outer, value)

    def test_heap_target_rejects_scoped_value(self, mgr):
        scoped = mgr.create("r", "K", VT, 0, set())
        eng = engine()
        with pytest.raises(IllegalAssignmentError):
            eng.assignment_cost(mgr.heap, obj_in(scoped))

    def test_immortal_value_allowed_everywhere(self, mgr):
        scoped = mgr.create("r", "K", VT, 0, set())
        eng = engine()
        eng.assignment_cost(scoped, obj_in(mgr.immortal))
        eng.assignment_cost(mgr.heap, obj_in(mgr.immortal))

    def test_disabled_engine_skips_everything(self, mgr):
        outer = mgr.create("outer", "K", VT, 0, set())
        inner = mgr.create("inner", "K", VT, 0,
                           outer.ancestor_ids | {outer.area_id})
        eng = engine(enabled=False, validate=False)
        value = obj_in(inner)
        # no cost, no check, no raise — exactly what the type system makes
        # safe to do
        assert eng.assignment_cost(outer, value) == 0
        assert eng.stats.assignment_checks == 0

    def test_validate_only_checks_without_charging(self, mgr):
        outer = mgr.create("outer", "K", VT, 0, set())
        inner = mgr.create("inner", "K", VT, 0,
                           outer.ancestor_ids | {outer.area_id})
        eng = engine(enabled=False, validate=True)
        assert eng.assignment_cost(inner, obj_in(outer)) == 0
        with pytest.raises(IllegalAssignmentError):
            eng.assignment_cost(outer, obj_in(inner))

    def test_deeper_values_cost_more(self, mgr):
        top = mgr.create("a", "K", VT, 0, set())
        mid = mgr.create("b", "K", VT, 0,
                         top.ancestor_ids | {top.area_id})
        bot = mgr.create("c", "K", VT, 0,
                         mid.ancestor_ids | {mid.area_id})
        eng = engine()
        near = eng.assignment_cost(bot, obj_in(mid))
        far = eng.assignment_cost(bot, obj_in(top))
        assert far >= near


class TestHeapAccessChecks:
    def test_rt_thread_cannot_read_heap_ref(self, mgr):
        eng = engine()
        with pytest.raises(MemoryAccessError):
            eng.read_cost(True, obj_in(mgr.heap))

    def test_rt_thread_cannot_overwrite_heap_ref(self, mgr):
        scoped = mgr.create("r", "K", VT, 0, set())
        eng = engine()
        with pytest.raises(MemoryAccessError):
            eng.read_cost(True, obj_in(scoped), old_value=obj_in(mgr.heap))

    def test_rt_thread_scoped_refs_fine(self, mgr):
        scoped = mgr.create("r", "K", VT, 0, set())
        eng = engine()
        cost = eng.read_cost(True, obj_in(scoped))
        assert cost > 0
        assert eng.stats.read_checks == 1

    def test_regular_thread_unchecked(self, mgr):
        eng = engine()
        assert eng.read_cost(False, obj_in(mgr.heap)) == 0
        assert eng.stats.read_checks == 0


class TestGarbageCollector:
    def make_gc(self, mgr, trigger=1):
        return GarbageCollector(mgr, CostModel(), Stats(), trigger)

    def test_unreachable_heap_objects_collected(self, mgr):
        gc = self.make_gc(mgr)
        garbage = obj_in(mgr.heap)
        keep = obj_in(mgr.heap)
        pause = gc.collect(roots=[keep])
        assert pause > 0
        assert keep.alive
        assert not garbage.alive
        assert gc.stats.objects_freed == 1

    def test_transitively_reachable_kept(self, mgr):
        gc = self.make_gc(mgr)
        a = obj_in(mgr.heap)
        b = obj_in(mgr.heap)
        c = obj_in(mgr.heap)
        a.fields["f"] = b
        b.fields["f"] = c
        gc.collect(roots=[a])
        assert a.alive and b.alive and c.alive

    def test_region_references_are_roots(self, mgr):
        # a heap object referenced from a region must survive
        gc = self.make_gc(mgr)
        scoped = mgr.create("r", "K", VT, 0, set())
        holder = obj_in(scoped)
        target = obj_in(mgr.heap)
        holder.fields["f"] = target
        gc.collect(roots=[])
        assert target.alive

    def test_portal_references_are_roots(self, mgr):
        gc = self.make_gc(mgr)
        scoped = mgr.create("r", "K", VT, 0, set())
        target = obj_in(mgr.heap)
        scoped.portals = {"p": target}
        gc.collect(roots=[])
        assert target.alive

    def test_heap_bytes_returned(self, mgr):
        gc = self.make_gc(mgr)
        obj_in(mgr.heap)
        before = mgr.heap.bytes_used
        gc.collect(roots=[])
        assert mgr.heap.bytes_used < before

    def test_should_collect_threshold(self, mgr):
        gc = self.make_gc(mgr, trigger=10_000)
        assert not gc.should_collect()
        for _ in range(500):
            obj_in(mgr.heap)
        assert gc.should_collect()

    def test_marks_cleared_between_runs(self, mgr):
        gc = self.make_gc(mgr)
        keep = obj_in(mgr.heap)
        gc.collect(roots=[keep])
        gc.collect(roots=[])   # must not survive on a stale mark
        assert not keep.alive
