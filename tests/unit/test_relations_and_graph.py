"""Unit tests for the Figure 6 relation graph structure."""

from repro.core.relations import RelationGraph, to_networkx


def sample_graph() -> RelationGraph:
    g = RelationGraph()
    g.add_node("r1", "r1", "region")
    g.add_node("r2", "r2", "region")
    g.add_node("s", "s (TStack)", "object")
    g.add_node("n1", "n1 (TNode)", "object")
    g.add_node("n2", "n2 (TNode)", "object")
    g.add_owns("r2", "s")
    g.add_owns("s", "n1")
    g.add_owns("s", "n2")
    g.add_outlives("r1", "r2")
    return g


class TestStructure:
    def test_owner_of(self):
        g = sample_graph()
        assert g.owner_of("n1") == "s"
        assert g.owner_of("s") == "r2"

    def test_owned_by(self):
        g = sample_graph()
        assert sorted(g.owned_by("s")) == ["n1", "n2"]
        assert g.owned_by("n1") == []

    def test_region_of_walks_to_the_root(self):
        g = sample_graph()
        assert g.region_of("n1") == "r2"
        assert g.region_of("s") == "r2"
        assert g.region_of("r1") == "r1"

    def test_is_forest_true(self):
        assert sample_graph().is_forest()

    def test_two_owners_break_the_forest(self):
        g = sample_graph()
        g.add_owns("r1", "n1")  # n1 now has two owners
        assert not g.is_forest()

    def test_ownership_cycle_breaks_the_forest(self):
        g = RelationGraph()
        g.add_node("a", "a", "object")
        g.add_node("b", "b", "object")
        g.add_owns("a", "b")
        g.add_owns("b", "a")
        assert not g.is_forest()

    def test_outlives_closure_is_transitive(self):
        g = sample_graph()
        g.add_node("r3", "r3", "region")
        g.add_outlives("r2", "r3")
        closure = g.outlives_closure()
        assert ("r1", "r3") in closure
        assert ("r1", "r2") in closure
        assert ("r3", "r1") not in closure


class TestRendering:
    def test_dot_output(self):
        dot = sample_graph().to_dot()
        assert dot.startswith("digraph")
        assert '"r2" -> "s";' in dot
        assert "[style=dashed]" in dot
        assert "shape=box" in dot and "shape=ellipse" in dot

    def test_networkx_export(self):
        g = to_networkx(sample_graph())
        assert g.number_of_nodes() == 5
        relations = {data["relation"]
                     for _u, _v, data in g.edges(data=True)}
        assert relations == {"owns", "outlives"}
