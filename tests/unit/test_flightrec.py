"""Unit tests for the flight recorder: ring semantics, causal context,
aggregate counters, and the JSONL dump format."""

import io

import pytest

from repro.obs import (FLIGHT_SCHEMA, FlightRecord, FlightRecorder,
                       NullFlightRecorder, dump_flight, load_flight,
                       validate_flight)


class TestRing:
    def test_records_are_chronological_with_increasing_ids(self):
        rec = FlightRecorder(capacity=16)
        for i in range(5):
            rec.record("alloc", f"o{i}", cycle=i * 10)
        records = rec.records()
        assert [r.id for r in records] == [1, 2, 3, 4, 5]
        assert [r.cycle for r in records] == [0, 10, 20, 30, 40]
        assert rec.total == 5 and rec.stored == 5 and rec.dropped == 0

    def test_ring_evicts_oldest_first(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("alloc", f"o{i}", cycle=i)
        assert rec.total == 10
        assert rec.stored == 4
        assert rec.dropped == 6
        window = rec.records()
        assert [r.id for r in window] == [7, 8, 9, 10]
        assert [r.subject for r in window] == ["o6", "o7", "o8", "o9"]

    def test_kind_counts_survive_eviction(self):
        rec = FlightRecorder(capacity=2)
        for i in range(7):
            rec.record("alloc", "x", cycle=i)
        rec.record("gc", "y", cycle=99)
        assert rec.kind_counts == {"alloc": 7, "gc": 1}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestCausalContext:
    def test_parent_defaults_to_innermost_open_context(self):
        rec = FlightRecorder()
        root = rec.record("region-created", "r")
        enter = rec.push("region-enter", "r", thread="main")
        child = rec.record("alloc", "Obj -> r", thread="main")
        exit_id = rec.pop("region-exit", "r", thread="main")
        after = rec.record("gc", "z", thread="main")
        records = {r.id: r for r in rec.records()}
        assert records[root].parent == 0
        assert records[enter].parent == 0
        assert records[child].parent == enter
        assert records[exit_id].parent == enter
        assert records[after].parent == 0

    def test_nested_regions_nest_parents(self):
        rec = FlightRecorder()
        outer = rec.push("region-enter", "outer")
        inner = rec.push("region-enter", "inner")
        leaf = rec.record("alloc", "x")
        records = {r.id: r for r in rec.records()}
        assert records[inner].parent == outer
        assert records[leaf].parent == inner
        rec.pop("region-exit", "inner")
        sibling = rec.record("alloc", "y")
        assert {r.id: r for r in rec.records()}[sibling].parent == outer

    def test_seed_roots_a_thread_at_its_spawn_event(self):
        rec = FlightRecorder()
        spawn = rec.record("thread-spawned", "worker", thread="main")
        rec.seed("worker", spawn)
        first = rec.record("alloc", "x", thread="worker")
        assert {r.id: r for r in rec.records()}[first].parent == spawn

    def test_contexts_are_per_thread(self):
        rec = FlightRecorder()
        a = rec.push("region-enter", "ra", thread="a")
        b = rec.record("alloc", "x", thread="b")
        records = {r.id: r for r in rec.records()}
        assert records[b].parent == 0
        assert records[a].parent == 0


class TestAggregates:
    def test_check_totals_use_cycles_or_cycles_saved(self):
        rec = FlightRecorder(capacity=2)  # forces eviction
        for _ in range(5):
            rec.record("check-assign", "r", attrs={"cycles": 32})
        for _ in range(3):
            rec.record("check-elide-read", "r",
                       attrs={"cycles_saved": 8})
        assert rec.check_totals == {"check-assign": [5, 160],
                                    "check-elide-read": [3, 24]}

    def test_bind_clock_stamps_cycles(self):
        class FakeStats:
            cycles = 1234
        rec = FlightRecorder()
        rec.bind_clock(FakeStats())
        rec.record("region-flushed", "r")
        assert rec.records()[0].cycle == 1234
        rec.record("region-flushed", "r", cycle=9)  # explicit wins
        assert rec.records()[1].cycle == 9


class TestNullRecorder:
    def test_null_recorder_records_nothing(self):
        rec = NullFlightRecorder()
        assert rec.enabled is False
        assert rec.record("alloc", "x") == 0
        assert rec.push("region-enter", "r") == 0
        assert rec.pop("region-exit", "r") == 0
        rec.seed("t", 1)
        assert rec.total == 0
        assert rec.records() == []


class TestDumpFormat:
    def _recorder(self):
        rec = FlightRecorder(capacity=8)
        rec.record("region-created", "r", cycle=1)
        eid = rec.push("region-enter", "r", cycle=2)
        rec.record("check-assign", "r", cycle=3, attrs={"cycles": 28})
        rec.pop("region-exit", "r", cycle=4)
        return rec, eid

    def test_dump_load_roundtrip(self):
        rec, _ = self._recorder()
        buf = io.StringIO()
        lines = dump_flight(rec, buf, meta={"mode": "dynamic"})
        assert lines == 1 + rec.stored
        buf.seek(0)
        header, records = load_flight(buf)
        assert header["schema"] == FLIGHT_SCHEMA
        assert header["total"] == rec.total
        assert header["kind_counts"] == rec.kind_counts
        assert header["check_totals"] == {"check-assign": [1, 28]}
        assert header["meta"] == {"mode": "dynamic"}
        assert [r.to_dict() for r in records] \
            == [r.to_dict() for r in rec.records()]

    def test_validate_accepts_real_dump(self):
        rec, _ = self._recorder()
        buf = io.StringIO()
        dump_flight(rec, buf)
        buf.seek(0)
        header, records = load_flight(buf)
        assert validate_flight(header, records) == []

    def test_load_rejects_wrong_schema(self):
        buf = io.StringIO('{"schema": "something-else/9"}\n')
        with pytest.raises(ValueError):
            load_flight(buf)

    def test_validate_flags_broken_invariants(self):
        header = {"schema": FLIGHT_SCHEMA, "stored": 2}
        good = FlightRecord(1, 0, 5, "main", "alloc", "x", None)
        assert validate_flight(header, [good])  # stored mismatch
        backwards = [good,
                     FlightRecord(2, 0, 3, "main", "alloc", "y", None)]
        assert any("back in time" in p
                   for p in validate_flight(header, backwards))
        acausal = [good,
                   FlightRecord(2, 2, 6, "main", "alloc", "y", None)]
        assert any("non-causal" in p
                   for p in validate_flight(header, acausal))


class TestSampling:
    """The 1-in-N always-on tier: thinned ring, exact aggregates."""

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=8, sample=0)

    def test_aggregates_exact_while_ring_thins(self):
        rec = FlightRecorder(capacity=256, sample=4)
        for i in range(20):
            rec.record("check-assign", f"s{i}", cycle=i,
                       attrs={"cycles": 28})
        for i in range(13):
            rec.record("alloc", f"o{i}", cycle=100 + i)
        # aggregates count every event, sampled out or not
        assert rec.kind_counts == {"check-assign": 20, "alloc": 13}
        assert rec.check_totals == {"check-assign": [20, 20 * 28]}
        assert rec.events_seen == 33
        # ring stores 1-in-4 per kind: ceil(20/4) + ceil(13/4)
        assert rec.total == 5 + 4
        assert rec.sampled_out == 33 - 9

    def test_low_volume_kinds_never_sampled(self):
        rec = FlightRecorder(capacity=64, sample=100)
        for i in range(10):
            rec.record("region-created", f"r{i}", cycle=i)
            rec.record("gc", f"run{i}", cycle=i)
        assert rec.total == 20
        assert rec.sampled_out == 0

    def test_sampled_out_records_return_id_zero(self):
        rec = FlightRecorder(capacity=64, sample=2)
        ids = [rec.record("alloc", f"o{i}", cycle=i) for i in range(4)]
        assert ids[0] > 0 and ids[2] > 0
        assert ids[1] == 0 and ids[3] == 0

    def test_header_carries_sampling_fields(self):
        rec = FlightRecorder(capacity=64, sample=3)
        for i in range(7):
            rec.record("alloc", f"o{i}", cycle=i)
        header = rec.header()
        assert header["sample"] == 3
        assert header["events_seen"] == 7
        assert header["sampled_out"] == 4
        assert header["overhead_s"] >= 0.0

    def test_sampled_dump_passes_validate(self):
        rec = FlightRecorder(capacity=64, sample=5)
        rec.push("region-enter", "r", cycle=0)
        for i in range(40):
            rec.record("check-assign", f"s{i}", cycle=i + 1,
                       attrs={"cycles": 28})
        rec.pop("region-exit", "r", cycle=50)
        buf = io.StringIO()
        dump_flight(rec, buf)
        buf.seek(0)
        header, records = load_flight(buf)
        assert validate_flight(header, records) == []
        # the exact ledger survives sampling in the header
        assert header["check_totals"] == {"check-assign": [40, 40 * 28]}

    def test_overhead_self_measured(self):
        rec = FlightRecorder(capacity=64)
        for i in range(100):
            rec.record("alloc", f"o{i}", cycle=i)
        assert rec.overhead_s > 0.0


class TestWraparound:
    """Ring-eviction coverage: exact aggregates and valid dumps no
    matter how many times the window wraps."""

    def _mixed_burst(self, rec, n):
        for i in range(n):
            rec.record("check-assign", f"a{i}", cycle=2 * i,
                       attrs={"cycles": 28})
            rec.record("alloc", f"o{i}", cycle=2 * i + 1,
                       attrs={"bytes": 16})

    def test_exact_aggregates_across_many_wraps(self):
        small = FlightRecorder(capacity=8)
        large = FlightRecorder(capacity=10_000)
        self._mixed_burst(small, 500)
        self._mixed_burst(large, 500)
        assert small.kind_counts == large.kind_counts
        assert small.check_totals == large.check_totals
        assert small.stored == 8
        assert small.dropped == 2 * 500 - 8

    def test_wrapped_dump_passes_validate(self):
        rec = FlightRecorder(capacity=16)
        self._mixed_burst(rec, 100)
        buf = io.StringIO()
        dump_flight(rec, buf)
        buf.seek(0)
        header, records = load_flight(buf)
        assert validate_flight(header, records) == []
        assert header["stored"] == 16 and header["dropped"] == 184
        ids = [r.id for r in records]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)

    def test_wrap_with_thread_abort_keeps_causality(self):
        rec = FlightRecorder(capacity=8)
        spawn = rec.record("thread-spawned", "t1", cycle=0)
        rec.seed("t1", spawn)
        rec.push("region-enter", "r", cycle=1, thread="t1")
        for i in range(50):
            rec.record("alloc", f"o{i}", cycle=2 + i, thread="t1")
        rec.record("thread-aborted", "t1", cycle=100, thread="t1",
                   attrs={"error": "ThreadCrashError"})
        buf = io.StringIO()
        dump_flight(rec, buf)
        buf.seek(0)
        header, records = load_flight(buf)
        assert validate_flight(header, records) == []
        # the abort survives in the window and is parented inside the
        # region context opened before the wrap
        aborted = [r for r in records if r.kind == "thread-aborted"]
        assert len(aborted) == 1
        assert aborted[0].parent > 0

    def test_wrap_and_sampling_compose(self):
        rec = FlightRecorder(capacity=8, sample=3)
        self._mixed_burst(rec, 300)
        # aggregates still exact
        assert rec.kind_counts == {"check-assign": 300, "alloc": 300}
        assert rec.check_totals == {"check-assign": [300, 300 * 28]}
        assert rec.events_seen == 600
        buf = io.StringIO()
        dump_flight(rec, buf)
        buf.seek(0)
        header, records = load_flight(buf)
        assert validate_flight(header, records) == []
        assert header["sampled_out"] == rec.sampled_out > 0
