"""Unit coverage for the resilient serve client.

A scripted in-memory transport drives the whole policy surface with no
socket: retry classification, exponential backoff with deterministic
jitter, Retry-After floors, deadline budgets, the circuit breaker's
trip/half-open/close arc, and hedging's first-answer-wins race.
"""

from __future__ import annotations

import json
import threading

from repro.serve.client import (RETRY_STATUSES,
                                STATUS_TRANSPORT_ERROR, ClientPolicy,
                                ClientResult, ResilientClient,
                                ServeClientError)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class ScriptedTransport:
    """Replays a list of (status, headers, body) replies in order;
    a reply of ``"error"`` raises a transport failure instead."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.requests = []

    def __call__(self, method, path, body, headers):
        self.requests.append((method, path, body))
        if not self.replies:
            raise AssertionError("transport exhausted")
        reply = self.replies.pop(0)
        if reply == "error":
            raise ServeClientError("connection reset")
        status, headers_out, payload = reply
        return status, dict(headers_out), json.dumps(payload).encode()


def _client(replies, policy=None, clock=None):
    clock = clock or FakeClock()
    transport = ScriptedTransport(replies)
    client = ResilientClient(policy=policy or ClientPolicy(),
                             transport=transport,
                             sleep=clock.sleep, clock=clock)
    return client, transport, clock


class TestRetryDiscipline:

    def test_success_first_try(self):
        client, transport, _ = _client([(200, {}, {"ok": True})])
        result = client.post("analyze", {"program": "x"})
        assert result.ok and result.attempts == 1 and not result.retried
        assert transport.requests[0][1] == "/v1/analyze"

    def test_retries_5xx_until_success(self):
        client, _, clock = _client([
            (503, {}, {"ok": False}),
            (500, {}, {"ok": False}),
            (200, {}, {"ok": True}),
        ])
        result = client.post("run", {"program": "x"})
        assert result.ok and result.attempts == 3 and result.retried
        assert clock.now > 0  # it actually backed off
        assert client.stats["retries"] == 2

    def test_client_errors_never_retry(self):
        client, transport, _ = _client([(422, {}, {"ok": False})])
        result = client.post("run", {"program": "x"})
        assert result.status == 422 and result.attempts == 1
        assert len(transport.requests) == 1

    def test_transport_errors_are_retriable(self):
        client, _, _ = _client(["error", (200, {}, {"ok": True})])
        result = client.post("run", {"program": "x"})
        assert result.ok and result.attempts == 2
        assert client.stats["transport_errors"] == 1

    def test_retries_are_bounded(self):
        policy = ClientPolicy(max_retries=2)
        client, transport, _ = _client(
            [(503, {}, {"ok": False})] * 3, policy)
        result = client.post("run", {"program": "x"})
        assert result.status == 503 and result.attempts == 3
        assert len(transport.requests) == 3

    def test_backoff_is_exponential_and_deterministic(self):
        def run():
            clock = FakeClock()
            client, _, _ = _client(
                [(503, {}, {"ok": False})] * 3
                + [(200, {}, {"ok": True})],
                ClientPolicy(max_retries=5, backoff_base_s=0.1,
                             jitter_seed=42),
                clock)
            sleeps = []
            real_sleep = clock.sleep
            client._sleep = lambda s: (sleeps.append(s), real_sleep(s))
            client.post("run", {"program": "x"})
            return sleeps

        first, second = run(), run()
        assert first == second  # same seed, same jitter
        # each backoff's deterministic part doubles; jitter < base
        assert first[1] > first[0] and first[2] > first[1]

    def test_retry_after_is_a_floor_on_the_wait(self):
        clock = FakeClock()
        client, _, _ = _client(
            [(429, {"Retry-After": "3"}, {"ok": False}),
             (200, {}, {"ok": True})],
            ClientPolicy(backoff_base_s=0.01), clock)
        result = client.post("run", {"program": "x"})
        assert result.ok
        assert clock.now >= 3.0  # never earlier than the server asked


class TestDeadlineBudget:

    def test_budget_propagates_to_the_wire(self):
        client, transport, _ = _client([(200, {}, {"ok": True})])
        client.post("run", {"program": "x"}, deadline_ms=5000)
        wire = json.loads(transport.requests[0][2])
        assert 0 < wire["deadline_ms"] <= 5000

    def test_budget_stops_retries_early(self):
        clock = FakeClock()
        client, transport, _ = _client(
            [(503, {"Retry-After": "10"}, {"ok": False})] * 5,
            ClientPolicy(max_retries=5), clock)
        result = client.post("run", {"program": "x"}, deadline_ms=1000)
        # waiting 10s would blow the 1s budget: return the last reply
        assert result.status == 503
        assert len(transport.requests) == 1

    def test_exhausted_budget_is_a_synthetic_504(self):
        clock = FakeClock()
        clockwise = ClientPolicy(max_retries=5)
        client, _, _ = _client([(503, {}, {"ok": False})] * 6,
                               clockwise, clock)
        clock.now = 100.0
        start = clock.now

        # burn the budget before the first attempt
        result = client.post("run", {"program": "x"}, deadline_ms=0)
        assert result.status == 504
        assert "deadline" in result.body["error"]
        assert clock.now == start  # no attempt, no sleep


class TestCircuitBreaker:

    def test_consecutive_5xx_trips_then_half_opens(self):
        clock = FakeClock()
        policy = ClientPolicy(max_retries=0, breaker_threshold=2,
                              breaker_reset_s=5.0)
        client, transport, _ = _client(
            [(500, {}, {"ok": False}), (500, {}, {"ok": False}),
             (200, {}, {"ok": True})],
            policy, clock)
        assert client.post("run", {"program": "x"}).status == 500
        assert client.post("run", {"program": "x"}).status == 500
        assert client.breaker_open
        # while open: fail fast, no transport call
        fast = client.post("run", {"program": "x"})
        assert fast.status == 503 and fast.breaker_open
        assert len(transport.requests) == 2
        assert client.stats["breaker_fastfail"] == 1
        # after the reset window one probe goes through and closes it
        clock.now += 5.0
        probe = client.post("run", {"program": "x"})
        assert probe.ok
        assert not client.breaker_open

    def test_threshold_zero_disables_the_breaker(self):
        client, transport, _ = _client(
            [(500, {}, {"ok": False})] * 3,
            ClientPolicy(max_retries=2, breaker_threshold=0))
        client.post("run", {"program": "x"})
        assert not client.breaker_open
        assert len(transport.requests) == 3


class TestHedging:

    def test_hedging_disarmed_below_min_samples(self):
        client, _, _ = _client(
            [(200, {}, {"ok": True})],
            ClientPolicy(hedge=True, hedge_min_samples=20))
        assert client._hedge_delay() is None

    def test_hedge_delay_is_the_observed_p99(self):
        client, _, _ = _client(
            [], ClientPolicy(hedge=True, hedge_min_samples=5))
        for i in range(100):  # 1ms..100ms, p99 rank lands on 99ms
            client._note_latency((i + 1) / 1000.0)
        assert client._hedge_delay() == 0.099

    def test_slow_primary_spawns_a_winning_hedge(self):
        # the primary blocks until released; the hedge answers first
        release = threading.Event()

        def primary_transport(method, path, body, headers):
            release.wait(5.0)
            return 200, {}, json.dumps({"who": "primary"}).encode()

        client = ResilientClient(
            policy=ClientPolicy(hedge=True, hedge_min_samples=2),
            transport=primary_transport)
        for _ in range(3):
            client._note_latency(0.01)

        def fake_hedge_transport(host, port, timeout):
            def transport(method, path, body, headers):
                return 200, {}, json.dumps({"who": "hedge"}).encode()
            transport.close = lambda: None
            return transport

        import repro.serve.client as client_mod
        original = client_mod._default_transport
        client_mod._default_transport = fake_hedge_transport
        try:
            result = client.post("run", {"program": "x"})
        finally:
            client_mod._default_transport = original
            release.set()
        assert result.ok and result.hedged
        assert result.body == {"who": "hedge"}
        assert client.stats["hedges"] == 1


class TestMisc:

    def test_retry_statuses_cover_shed_and_server_failure(self):
        assert {429, 500, 502, 503, 504} == set(RETRY_STATUSES)
        assert STATUS_TRANSPORT_ERROR not in RETRY_STATUSES

    def test_result_ok_window(self):
        assert ClientResult(200, {}).ok
        assert ClientResult(204, {}).ok
        assert not ClientResult(503, {}).ok

    def test_get_is_raw_and_unretried(self):
        client, transport, _ = _client([(503, {}, {"x": 1})])
        status, raw = client.get("/healthz")
        assert status == 503 and json.loads(raw) == {"x": 1}
        assert len(transport.requests) == 1
