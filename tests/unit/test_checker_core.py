"""Typechecker tests: single-threaded rules (Section 2.1 / Appendix B)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402

CELL = "class Cell<Owner o> { int v; Cell<o> next; }\n"
PAIR = ("class Pair<Owner o, Owner p> { Cell<p> item; }\n")


class TestTypeWellformedness:
    def test_owners_must_outlive_first(self):
        # Figure 5's illegal s6
        assert_rejected(
            CELL + PAIR +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Pair<r1, r2> p = null;"
            "} }",
            rule="TYPE C", fragment="does not outlive")

    def test_heap_first_owner_needs_immortal_or_heap_args(self):
        # Figure 5's illegal s7
        assert_rejected(
            CELL + PAIR +
            "(RHandle<r1> h1) { Pair<heap, r1> p = null; }",
            rule="TYPE C")

    def test_legal_combinations(self):
        assert_well_typed(
            CELL + PAIR +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Pair<r2, r1> a = null;"
            "  Pair<r2, r2> b = null;"
            "  Pair<r1, immortal> c = null;"
            "  Pair<heap, immortal> d = null;"
            "  Pair<immortal, heap> e = null;"
            "} }")

    def test_wrong_owner_arity(self):
        assert_rejected(CELL + "{ Cell<heap, heap> c = null; }",
                        rule="TYPE C", fragment="expects 1 owners")

    def test_unknown_class(self):
        assert_rejected("{ Nope<heap> x = null; }", fragment="Nope")

    def test_unknown_owner(self):
        assert_rejected(CELL + "{ Cell<zap> x = null; }",
                        fragment="'zap'")

    def test_class_where_clause_must_hold_at_use(self):
        src = (CELL +
               "class Demand<Owner a, Owner b> where b owns a { }\n"
               "(RHandle<r1> h1) {"
               "  Demand<r1, heap> d = null;"
               "}")
        assert_rejected(src, rule="TYPE C", fragment="not satisfied")

    def test_object_base_type(self):
        assert_well_typed("{ Object<heap> o = null; }")


class TestNew:
    def test_new_requires_effect_coverage(self):
        src = (CELL +
               "class M<Owner o> {"
               "  void make() accesses o { Cell<heap> c = new Cell<heap>; }"
               "}")
        assert_rejected(src, rule="EXPR NEW", fragment="heap")

    def test_new_in_own_owner_allowed(self):
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  Cell<o> make() { return new Cell<o>; }"
            "}")

    def test_new_requires_handle_availability(self):
        # a region formal without a handle argument cannot be allocated in
        src = (CELL +
               "class M<Owner o> {"
               "  void make<Region r>() accesses r {"
               "    Cell<r> c = new Cell<r>;"
               "  }"
               "}")
        assert_rejected(src, rule="AV RH")

    def test_new_with_handle_argument_ok(self):
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  void make<Region r>(RHandle<r> h) accesses r {"
            "    Cell<r> c = new Cell<r>;"
            "  }"
            "}")

    def test_new_via_this_owned_needs_no_handle(self):
        # the paper: "if a method allocates only objects (transitively)
        # owned by this, it does not need an explicit region handle"
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  Cell<this> guts;"
            "  void make() { guts = new Cell<this>; }"
            "}")

    def test_user_class_constructor_args_rejected(self):
        assert_rejected(CELL + "{ Cell<heap> c = new Cell<heap>(3); }",
                        rule="EXPR NEW")

    def test_array_constructor_needs_length(self):
        assert_rejected("{ IntArray<heap> a = new IntArray<heap>; }",
                        rule="EXPR NEW")
        assert_well_typed("{ IntArray<heap> a = new IntArray<heap>(4); }")


class TestFieldAccess:
    def test_field_read_and_write(self):
        assert_well_typed(
            CELL +
            "(RHandle<r> h) {"
            "  Cell<r> a = new Cell<r>;"
            "  Cell<r> b = new Cell<r>;"
            "  a.next = b;"
            "  Cell<r> c = a.next;"
            "  a.v = 3;"
            "  int x = a.v;"
            "}")

    def test_field_write_wrong_owner_rejected(self):
        assert_rejected(
            CELL +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Cell<r1> outer = new Cell<r1>;"
            "  Cell<r2> inner = new Cell<r2>;"
            "  outer.next = inner;"    # would dangle when r2 dies
            "} }",
            rule="SUBTYPE")

    def test_reverse_direction_is_fine(self):
        assert_well_typed(
            CELL + PAIR +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Pair<r2, r1> p = new Pair<r2, r1>;"
            "  Cell<r1> longlived = new Cell<r1>;"
            "  p.item = longlived;"    # inner region points outward: safe
            "} }")

    def test_unknown_field(self):
        assert_rejected(CELL + "(RHandle<r> h) {"
                        " Cell<r> c = new Cell<r>; c.nope = 3; }",
                        fragment="nope")

    def test_field_on_scalar_rejected(self):
        assert_rejected("{ int x = 3; int y = x.v; }",
                        fragment="non-object")

    def test_encapsulation_this_owned_field(self):
        # property O3: a this-owned field is inaccessible from outside
        assert_rejected(
            "class Inner<Owner o> { int x; }\n"
            "class Outer<Owner o> { Inner<this> guts = null; }\n"
            "(RHandle<r> h) {"
            "  Outer<r> a = new Outer<r>;"
            "  Inner<r> stolen = a.guts;"
            "}",
            rule="EXPR REF READ", fragment="encapsulated")

    def test_this_owned_field_usable_internally(self):
        assert_well_typed(
            "class Inner<Owner o> { int x; }\n"
            "class Outer<Owner o> {"
            "  Inner<this> guts = null;"
            "  void setup() { guts = new Inner<this>; }"
            "  int peek() { if (guts == null) { return 0; }"
            "               return guts.x; }"
            "}")

    def test_unqualified_field_access_resolves_to_this(self):
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  int counter;"
            "  void bump() { counter = counter + 1; }"
            "}")


class TestStatics:
    def test_static_scalar(self):
        assert_well_typed(
            "class C<Owner o> { static int n; }\n"
            "{ C.n = 3; print(C.n); }")

    def test_static_reference_must_be_immortal_or_heap(self):
        assert_rejected(
            "class D<Owner o> { int x; }\n"
            "class C<Owner o> { static D<o> bad; }",
            rule="STATIC FIELD")

    def test_static_immortal_reference(self):
        assert_well_typed(
            "class D<Owner o> { int x; }\n"
            "class C<Owner o> { static D<immortal> shared; }\n"
            "{ C.shared = new D<immortal>; }")

    def test_static_access_requires_effect(self):
        assert_rejected(
            "class D<Owner o> { int x; }\n"
            "class C<Owner o> {"
            "  static D<immortal> shared;"
            "  void touch() accesses o { D<immortal> d = C.shared; }"
            "}",
            rule="EXPR REF READ")

    def test_unknown_static(self):
        assert_rejected(
            "class C<Owner o> { int x; }\n{ int y = C.nope; }",
            fragment="nope")


class TestInvocation:
    BASE = (CELL +
            "class Util<Owner o> {"
            "  Cell<o> mk() { return new Cell<o>; }"
            "  int take(Cell<o> c) { return c.v; }"
            "  Cell<p> relay<Owner p>(Cell<p> c) { return c; }"
            "}\n")

    def test_simple_call(self):
        assert_well_typed(
            self.BASE +
            "(RHandle<r> h) {"
            "  Util<r> u = new Util<r>;"
            "  Cell<r> c = u.mk();"
            "  int x = u.take(c);"
            "}")

    def test_wrong_argument_owner(self):
        assert_rejected(
            self.BASE +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Util<r1> u = new Util<r1>;"
            "  Cell<r2> c = new Cell<r2>;"
            "  int x = u.take(c);"
            "} }",
            rule="SUBTYPE")

    def test_method_owner_arguments(self):
        assert_well_typed(
            self.BASE +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Util<r2> u = new Util<r2>;"
            "  Cell<r1> c = new Cell<r1>;"
            "  Cell<r1> back = u.relay<r1>(c);"
            "} }")

    def test_missing_owner_arguments_inferred(self):
        # inference supplies <r1>
        assert_well_typed(
            self.BASE +
            "(RHandle<r1> h1) {"
            "  Util<r1> u = new Util<r1>;"
            "  Cell<r1> c = new Cell<r1>;"
            "  Cell<r1> back = u.relay(c);"
            "}")

    def test_unknown_method(self):
        assert_rejected(self.BASE +
                        "(RHandle<r> h) {"
                        " Util<r> u = new Util<r>; u.nope(); }",
                        rule="EXPR INVOKE")

    def test_wrong_arity(self):
        assert_rejected(self.BASE +
                        "(RHandle<r> h) {"
                        " Util<r> u = new Util<r>; u.mk(1); }",
                        rule="EXPR INVOKE")

    def test_method_where_clause_enforced(self):
        src = (CELL +
               "class W<Owner o> {"
               "  void need<Owner p>() where p owns o { }"
               "}\n"
               "(RHandle<r1> h1) {"
               "  W<r1> w = new W<r1>;"
               "  w.need<heap>();"
               "}")
        assert_rejected(src, rule="EXPR INVOKE", fragment="not satisfied")

    def test_effects_propagate_to_callers(self):
        # callee accesses heap; caller's effects must cover it
        src = (CELL +
               "class A<Owner o> {"
               "  void deep() accesses heap {"
               "    Cell<heap> c = new Cell<heap>;"
               "  }"
               "}\n"
               "class B<Owner o> {"
               "  void shallow(A<o> a) accesses o { a.deep(); }"
               "}")
        assert_rejected(src, rule="EXPR INVOKE")

    def test_effects_propagate_ok_when_declared(self):
        assert_well_typed(
            CELL +
            "class A<Owner o> {"
            "  void deep() accesses heap {"
            "    Cell<heap> c = new Cell<heap>;"
            "  }"
            "}\n"
            "class B<Owner o> {"
            "  void shallow(A<o> a) accesses o, heap { a.deep(); }"
            "}")


class TestSubtypingAndInheritance:
    HIERARCHY = (
        "class Animal<Owner o> { int legs; }\n"
        "class Dog<Owner o> extends Animal<o> { int tail; }\n")

    def test_subclass_assignable(self):
        assert_well_typed(
            self.HIERARCHY +
            "(RHandle<r> h) { Animal<r> a = new Dog<r>; }")

    def test_superclass_not_assignable_to_subclass(self):
        assert_rejected(
            self.HIERARCHY +
            "(RHandle<r> h) { Dog<r> d = new Animal<r>; }",
            rule="SUBTYPE")

    def test_owner_args_invariant(self):
        assert_rejected(
            self.HIERARCHY +
            "(RHandle<r> h) { Animal<heap> a = new Dog<r>; }",
            rule="SUBTYPE")

    def test_inherited_field_access(self):
        assert_well_typed(
            self.HIERARCHY +
            "(RHandle<r> h) { Dog<r> d = new Dog<r>; d.legs = 4; }")

    def test_inherited_field_owner_substitution(self):
        src = ("class Holder<Owner o, Owner p> { Cell<p> held; }\n"
               + CELL +
               "class Sub<Owner q> extends Holder<q, heap> { }\n"
               "(RHandle<r> h) {"
               "  Sub<r> s = new Sub<r>;"
               "  Cell<heap> c = s.held;"
               "}")
        assert_well_typed(src)

    def test_null_assignable_everywhere(self):
        assert_well_typed(
            self.HIERARCHY +
            "(RHandle<r> h) { Dog<r> d = null; Animal<r> a = null; }")


class TestStatementsAndScalars:
    def test_condition_must_be_boolean(self):
        assert_rejected("{ if (3) { } }", fragment="condition")
        assert_rejected("{ while (1.5) { } }", fragment="condition")

    def test_arithmetic_typing(self):
        assert_well_typed(
            "{ int a = 1 + 2 * 3 % 4 - 5 / 2;"
            "  float f = 1.5 * 2.0 - 0.5 / 2.0;"
            "  boolean b = a < 3 && !(f >= 2.0) || a == 1; }")

    def test_no_implicit_int_float_mixing(self):
        assert_rejected("{ float f = 1 + 2.0; }")
        assert_rejected("{ int x = 3 * 1.5; }")

    def test_float_modulo_rejected(self):
        assert_rejected("{ float f = 3.0 % 2.0; }")

    def test_explicit_conversions(self):
        assert_well_typed("{ float f = itof(3); int i = ftoi(2.5); }")

    def test_return_type_checked(self):
        assert_rejected(
            "class C<Owner o> { int m() { return true; } }",
            rule="SUBTYPE")
        assert_rejected(
            "class C<Owner o> { void m() { return 3; } }")
        assert_rejected(
            "class C<Owner o> { int m() { return; } }")

    def test_duplicate_local_rejected(self):
        assert_rejected("{ int x = 1; int x = 2; }",
                        fragment="already defined")

    def test_unknown_variable(self):
        assert_rejected("{ int x = y; }", fragment="unknown variable")

    def test_void_variable_rejected(self):
        assert_rejected("{ void v = null; }")

    def test_reference_equality(self):
        assert_well_typed(
            CELL +
            "(RHandle<r> h) {"
            "  Cell<r> a = new Cell<r>;"
            "  boolean same = a == a;"
            "  boolean n = a != null;"
            "}")

    def test_builtin_arg_types(self):
        assert_rejected("{ sqrt(3); }")          # int, wants float
        assert_rejected("{ io(1.5); }")          # float, wants int
        assert_rejected("{ check(1); }")         # int, wants boolean
        assert_rejected(CELL + "(RHandle<r> h) {"
                        " Cell<r> c = new Cell<r>; print(c); }")


class TestRulePinning:
    """Direct pins for judgment names not hit elsewhere by name."""

    def test_expr_let_requires_owners_without_inference(self):
        from repro import analyze
        analyzed = analyze(
            CELL + "(RHandle<r> h) { Cell c = null; }", infer=False)
        assert "EXPR LET" in analyzed.error_rules()

    def test_expr_ref_write_effect_violation(self):
        assert_rejected(
            CELL +
            "class M<Owner o> {"
            "  void scribble(Cell<heap> c, Cell<heap> d)"
            "      accesses o {"
            "    c.next = d;"
            "  }"
            "}",
            rule="EXPR REF WRITE")
