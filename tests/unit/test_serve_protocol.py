"""Unit coverage for the serve wire shapes and quota admission.

The job fingerprint is the correctness keystone of the whole serving
stack: coalescing and memoization are only *exact* because every knob
that can change an observable result is part of the key.  These tests
pin that contract, the request validator's complaints, and the
token-bucket arithmetic (including the ``Retry-After`` value and the
bounded tenant table's overflow bucket).
"""

from __future__ import annotations

import pytest

from repro.serve.protocol import (ENDPOINTS, MODES, Job, JobOutcome,
                                  error_body, job_fingerprint,
                                  program_sha, validate_request)
from repro.serve.quota import QuotaTable, TokenBucket

SOURCE = "class C<Owner o> { int x; }\n{ print(1); }\n"


class TestContentAddresses:

    def test_program_sha_is_a_stable_content_address(self):
        assert program_sha(SOURCE) == program_sha(SOURCE)
        assert program_sha(SOURCE) != program_sha(SOURCE + " ")
        assert len(program_sha(SOURCE)) == 64

    def test_fingerprint_covers_every_result_knob(self):
        sha = program_sha(SOURCE)
        base = job_fingerprint("run", sha, "static", "py")
        assert base == job_fingerprint("run", sha, "static", "py")
        # each knob that can alter the observable result changes the key
        assert base != job_fingerprint("analyze", sha, "static", "py")
        assert base != job_fingerprint("run", program_sha("x" + SOURCE),
                                       "static", "py")
        assert base != job_fingerprint("run", sha, "dynamic", "py")
        assert base != job_fingerprint("run", sha, "static", "interp")

    def test_job_round_trips_over_the_wire(self):
        sha = program_sha(SOURCE)
        job = Job(endpoint="run", source=SOURCE, source_sha=sha,
                  fingerprint=job_fingerprint("run", sha, "static",
                                              "py"),
                  deadline=12.5)
        wire = job.to_wire()
        assert wire["endpoint"] in ENDPOINTS
        assert wire["source"] == SOURCE
        assert wire["deadline"] == 12.5
        assert Job(**wire) == job


class TestValidateRequest:

    def test_well_formed_request_passes(self):
        assert validate_request({"program": SOURCE}) is None
        assert validate_request({"program": SOURCE, "mode": "dynamic",
                                 "backend": "interp",
                                 "deadline_ms": 250,
                                 "tenant": "alice"}) is None

    @pytest.mark.parametrize("payload, fragment", [
        ([SOURCE], "JSON object"),
        ({}, "missing 'program'"),
        ({"program": "   "}, "missing 'program'"),
        ({"program": 7}, "missing 'program'"),
        ({"program": SOURCE, "mode": "fast"}, "mode must be"),
        ({"program": SOURCE, "backend": "jvm"}, "backend must be"),
        ({"program": SOURCE, "deadline_ms": 0}, "deadline_ms"),
        ({"program": SOURCE, "deadline_ms": -5}, "deadline_ms"),
        ({"program": SOURCE, "deadline_ms": "soon"}, "deadline_ms"),
        ({"program": SOURCE, "tenant": ""}, "tenant"),
    ])
    def test_malformed_requests_are_named(self, payload, fragment):
        complaint = validate_request(payload)
        assert complaint is not None and fragment in complaint

    def test_modes_are_the_machine_modes(self):
        assert MODES == ("static", "dynamic")


class TestOutcome:

    def test_ok_tracks_the_2xx_range(self):
        assert JobOutcome(200).ok
        assert JobOutcome(204).ok
        assert not JobOutcome(422).ok
        assert not JobOutcome(500).ok

    def test_error_body_shape(self):
        body = error_body("nope", retry_after_s=2.0)
        assert body == {"ok": False, "error": "nope",
                        "retry_after_s": 2.0}


class TestTokenBucket:

    def test_burst_admits_then_denies(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.allow(now=0.0) == (True, 0.0)
        assert bucket.allow(now=0.0) == (True, 0.0)
        ok, wait = bucket.allow(now=0.0)
        assert not ok
        # the wait is exactly the next token's arrival
        assert wait == pytest.approx(1.0)

    def test_refill_is_metered_by_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.allow(now=0.0)[0]
        assert not bucket.allow(now=0.1)[0]   # only 0.2 tokens back
        assert bucket.allow(now=0.5)[0]       # a full token refilled
        # refill never exceeds the burst capacity
        bucket2 = TokenBucket(rate=10.0, burst=1.0, now=0.0)
        assert bucket2.allow(now=100.0)[0]
        assert not bucket2.allow(now=100.0)[0]

    def test_zero_rate_means_wait_forever(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, now=0.0)
        assert bucket.allow(now=0.0)[0]
        ok, wait = bucket.allow(now=1e9)
        assert not ok and wait == float("inf")


class TestQuotaTable:

    def test_disabled_table_admits_everything(self):
        table = QuotaTable(rate=0.0)
        assert not table.enabled
        for _ in range(100):
            assert table.allow("anyone") == (True, 0.0)
        assert table.tenants() == 0  # no buckets materialized

    def test_tenants_are_metered_independently(self):
        table = QuotaTable(rate=0.001, burst=1.0)
        assert table.allow("alice")[0]
        ok, wait = table.allow("alice")
        assert not ok and wait > 0
        # bob's bucket is untouched by alice's exhaustion
        assert table.allow("bob")[0]
        assert table.tenants() == 2

    def test_overflow_bucket_bounds_the_table(self):
        table = QuotaTable(rate=0.001, burst=1.0, max_tenants=2)
        assert table.allow("a")[0]
        assert table.allow("b")[0]
        # past the cap, unknown tenants share one overflow bucket:
        # "c" takes its only token, so "d" is denied without ever
        # getting a bucket of its own
        assert table.allow("c")[0]
        assert not table.allow("d")[0]
        assert table.tenants() == 3  # a, b, <other>
