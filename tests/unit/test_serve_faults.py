"""Unit coverage for the service-level fault plane.

The whole chaos story rests on two properties pinned here: a seeded
injector's fire sequence is a pure function of (plan, consult order),
and a replay injector re-fires a recorded schedule at exactly the same
(site, seq) points.  Schedule persistence must round-trip and the
``target`` header must route ``repro chaos --replay`` to the right
engine.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.faults import (SERVICE_FAULT_SITES, FaultRecord,
                                ReplayServiceInjector,
                                ServiceFaultInjector, ServiceFaultPlan,
                                fault_key, load_schedule,
                                peek_schedule_target, save_schedule)


def _drive(injector, consults=200):
    """A fixed consult pattern: every site once per round."""
    fired = []
    for i in range(consults):
        for site in SERVICE_FAULT_SITES:
            if injector.fire(site, detail=f"round {i}"):
                fired.append(site)
    return fired


class TestPlan:

    def test_unknown_sites_rejected(self):
        with pytest.raises(ValueError, match="unknown service fault"):
            ServiceFaultPlan(rates={"gc_pause_spike": 0.5})
        with pytest.raises(ValueError, match="unknown service fault"):
            ServiceFaultPlan(sites=("worker_crash", "nope"))

    def test_rate_for_honors_site_filter_and_overrides(self):
        plan = ServiceFaultPlan(rate=0.5,
                                rates={"worker_stall": 0.1},
                                sites=("worker_crash", "worker_stall"))
        assert plan.rate_for("worker_crash") == 0.5
        assert plan.rate_for("worker_stall") == 0.1
        assert plan.rate_for("cache_corrupt") == 0.0

    def test_plan_round_trips_through_dict(self):
        plan = ServiceFaultPlan(seed=7, rate=0.2,
                                rates={"pipe_write": 0.9},
                                sites=("pipe_write",), max_faults=3,
                                stall_ms=1234.0, spike_ms=5.0)
        assert ServiceFaultPlan.from_dict(plan.to_dict()) == plan


class TestSeededInjector:

    def test_same_seed_same_schedule(self):
        plan = ServiceFaultPlan(seed=11, rate=0.15)
        a = ServiceFaultInjector(plan)
        b = ServiceFaultInjector(plan)
        assert _drive(a) == _drive(b)
        assert fault_key(a.injected) == fault_key(b.injected)
        assert a.injected  # the rate is high enough to fire

    def test_different_seeds_diverge(self):
        a = ServiceFaultInjector(ServiceFaultPlan(seed=1, rate=0.15))
        b = ServiceFaultInjector(ServiceFaultPlan(seed=2, rate=0.15))
        _drive(a), _drive(b)
        assert fault_key(a.injected) != fault_key(b.injected)

    def test_zero_rate_still_advances_consult_counters(self):
        # sites with rate 0 must keep counting consults, or replay
        # alignment breaks the moment a plan disables one site
        injector = ServiceFaultInjector(ServiceFaultPlan(rate=0.0))
        _drive(injector, consults=3)
        assert injector.injected == []
        assert all(injector.site_counts[s] == 3
                   for s in SERVICE_FAULT_SITES)

    def test_max_faults_caps_the_schedule(self):
        injector = ServiceFaultInjector(
            ServiceFaultPlan(seed=3, rate=0.9, max_faults=4))
        _drive(injector)
        assert len(injector.injected) == 4

    def test_counts_groups_by_site(self):
        injector = ServiceFaultInjector(
            ServiceFaultPlan(seed=5, rate=0.2))
        _drive(injector)
        counts = injector.counts()
        assert sum(counts.values()) == len(injector.injected)
        assert set(counts) == set(SERVICE_FAULT_SITES)


class TestReplayInjector:

    def test_replay_refires_exactly(self):
        plan = ServiceFaultPlan(seed=23, rate=0.12)
        recorded = ServiceFaultInjector(plan)
        _drive(recorded)
        replay = ReplayServiceInjector(recorded.injected, plan)
        _drive(replay)
        assert fault_key(replay.injected) == fault_key(recorded.injected)
        assert replay.counts() == recorded.counts()

    def test_replay_ignores_extra_consults(self):
        plan = ServiceFaultPlan(seed=23, rate=0.12)
        recorded = ServiceFaultInjector(plan)
        _drive(recorded)
        replay = ReplayServiceInjector(recorded.injected, plan)
        _drive(replay, consults=400)  # twice the recorded traffic
        assert fault_key(replay.injected) == fault_key(recorded.injected)

    def test_replay_exposes_plan_magnitudes(self):
        plan = ServiceFaultPlan(stall_ms=999.0, spike_ms=7.0)
        replay = ReplayServiceInjector([], plan)
        assert replay.stall_ms == 999.0
        assert replay.spike_ms == 7.0


class TestSchedulePersistence:

    def test_round_trip(self, tmp_path):
        plan = ServiceFaultPlan(seed=4, rate=0.3,
                                rates={"worker_crash": 0.5})
        injector = ServiceFaultInjector(plan)
        _drive(injector, consults=50)
        path = str(tmp_path / "serve.schedule.jsonl")
        save_schedule(path, plan, injector.injected,
                      meta={"requests": 50})
        loaded_plan, records, meta = load_schedule(path)
        assert loaded_plan == plan
        assert fault_key(records) == fault_key(injector.injected)
        assert meta == {"requests": 50}

    def test_peek_target_routes_serve_schedules(self, tmp_path):
        path = str(tmp_path / "serve.schedule.jsonl")
        save_schedule(path, ServiceFaultPlan(), [])
        assert peek_schedule_target(path) == "serve"

    def test_peek_target_defaults_runtime_for_legacy_headers(
            self, tmp_path):
        # rtsj schedules predate the target field; they must keep
        # routing to the runtime replay engine
        path = tmp_path / "runtime.schedule.jsonl"
        path.write_text(json.dumps({"version": 1, "plan": {}}) + "\n")
        assert peek_schedule_target(str(path)) == "runtime"

    def test_load_rejects_runtime_schedules(self, tmp_path):
        path = tmp_path / "runtime.schedule.jsonl"
        path.write_text(json.dumps({"version": 1, "plan": {}}) + "\n")
        with pytest.raises(ValueError, match="not a serve schedule"):
            load_schedule(str(path))

    def test_load_rejects_future_versions(self, tmp_path):
        path = tmp_path / "future.schedule.jsonl"
        path.write_text(json.dumps({"version": 2, "target": "serve",
                                    "plan": {}}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_schedule(str(path))

    def test_records_round_trip_through_dicts(self):
        record = FaultRecord(index=0, site="worker_crash", seq=3,
                             detail="dispatch 7")
        assert FaultRecord.from_dict(record.to_dict()) == record
