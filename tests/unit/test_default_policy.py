"""Tests for user-defined defaults (Section 2.5: "Our system also
supports user-defined defaults to cover specific patterns")."""

from repro import analyze, parse_program, pretty_program
from repro.core.inference import (DefaultPolicy, PAPER_DEFAULTS,
                                  apply_defaults_and_infer)

CELL = "class Cell<Owner o> { int v; }\n"


def inferred(source: str, policy: DefaultPolicy) -> str:
    analyzed = analyze(source, defaults=policy)
    return pretty_program(analyzed.program), analyzed


class TestCustomDefaults:
    def test_signature_owner_override(self):
        text, analyzed = inferred(
            CELL + "class M<Owner o> { Cell id(Cell c) { return c; } }",
            DefaultPolicy(signature_owner="heap"))
        assert "Cell<heap> id(Cell<heap> c)" in text
        assert analyzed.well_typed

    def test_unconstrained_local_override(self):
        text, analyzed = inferred(
            CELL + "{ Cell loner = new Cell; print(loner != null); }",
            DefaultPolicy(unconstrained_local="immortal"))
        assert "Cell<immortal> loner = new Cell<immortal>;" in text
        assert analyzed.well_typed

    def test_instance_field_owner_override(self):
        text, analyzed = inferred(
            CELL + "class Holder<Owner o> { Cell kept; }",
            DefaultPolicy(instance_field_owner="immortal"))
        assert "Cell<immortal> kept;" in text
        assert analyzed.well_typed

    def test_static_field_owner_override(self):
        text, analyzed = inferred(
            CELL + "class Registry<Owner o> { static Cell root; }",
            DefaultPolicy(static_field_owner="heap"))
        assert "static Cell<heap> root;" in text
        assert analyzed.well_typed

    def test_effects_without_initial_region(self):
        text, _analyzed = inferred(
            CELL + "class M<Owner o> { void nop() { } }",
            DefaultPolicy(effects_include_initial_region=False))
        assert "accesses o\n" in text or "accesses o " in text
        assert "initialRegion" not in text.split("accesses", 1)[1] \
            .split("\n", 1)[0]

    def test_paper_defaults_are_the_default(self):
        baseline = analyze(CELL + "class M<Owner o> { Cell mk() "
                           "{ return null; } }")
        explicit = analyze(CELL + "class M<Owner o> { Cell mk() "
                           "{ return null; } }",
                           defaults=PAPER_DEFAULTS)
        assert pretty_program(baseline.program) \
            == pretty_program(explicit.program)

    def test_policy_is_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_DEFAULTS.signature_owner = "heap"


class TestInferenceIdempotence:
    def test_running_inference_twice_is_stable(self):
        source = (CELL +
                  "class M<Owner o> {"
                  "  Cell held;"
                  "  void go() { Cell c = new Cell; held = c; }"
                  "}\n"
                  "(RHandle<r> h) { M<r> m = new M<r>; m.go(); }")
        once = apply_defaults_and_infer(parse_program(source))
        text_once = pretty_program(once)
        twice = apply_defaults_and_infer(parse_program(text_once))
        assert pretty_program(twice) == text_once
