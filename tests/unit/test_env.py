"""Unit tests for the typing environment: the ≽/≽o closure, handle
availability ([AV ...]), region-kind inference ([RKIND ...]), and effects
subsumption."""

import pytest

from repro.core.env import Env
from repro.core.kinds import (K_GC_REGION, K_IMMORTAL, K_LOCAL_REGION,
                              K_OBJ_OWNER, K_OWNER, K_REGION,
                              K_SHARED_REGION, Kind)
from repro.core.owners import (HEAP, IMMORTAL, INITIAL_REGION, Owner,
                               RT_EFFECT, THIS)
from repro.core.program import Constraint, build_program_info
from repro.core.types import ClassType
from repro.errors import OwnershipTypeError
from repro.lang import parse_program


@pytest.fixture
def info():
    return build_program_info(parse_program("class C<Owner a, Owner b> { }"))


@pytest.fixture
def env(info):
    return Env.initial(info)


A, B, R1, R2 = Owner("a"), Owner("b"), Owner("r1"), Owner("r2")


class TestKinds:
    def test_special_owner_kinds(self, env):
        assert env.kind_of(HEAP) == K_GC_REGION
        assert env.kind_of(IMMORTAL) == K_IMMORTAL
        assert env.kind_of(INITIAL_REGION) == K_REGION

    def test_unknown_owner_raises(self, env):
        with pytest.raises(OwnershipTypeError):
            env.kind_of(Owner("nope"))

    def test_this_outside_class_raises(self, env):
        with pytest.raises(OwnershipTypeError):
            env.kind_of(THIS)

    def test_this_inside_class_is_object(self, env):
        bound = env.with_owner("a", K_OWNER).with_owner("b", K_OWNER)
        bound = bound.with_this(ClassType("C", (A, B)))
        assert bound.kind_of(THIS) == K_OBJ_OWNER

    def test_rt_is_not_an_owner(self, env):
        with pytest.raises(OwnershipTypeError):
            env.kind_of(RT_EFFECT)

    def test_owner_shadowing_rejected(self, env):
        bound = env.with_owner("a", K_OWNER)
        with pytest.raises(OwnershipTypeError):
            bound.with_owner("a", K_REGION)
        with pytest.raises(OwnershipTypeError):
            env.with_owner("heap", K_REGION)

    def test_regions_in_scope(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION)
        bound = bound.with_owner("a", K_OWNER)
        names = {o.name for o in bound.regions_in_scope()}
        assert names == {"heap", "immortal", "initialRegion", "r1"}


class TestOutlives:
    def test_reflexive(self, env):
        bound = env.with_owner("a", K_OWNER)
        assert bound.outlives(A, A)

    def test_heap_and_immortal_outlive_everything(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION)
        assert bound.outlives(HEAP, R1)
        assert bound.outlives(IMMORTAL, R1)
        assert not bound.outlives(R1, HEAP)

    def test_declared_edge(self, env):
        bound = (env.with_owner("r1", K_LOCAL_REGION)
                 .with_owner("r2", K_LOCAL_REGION)
                 .with_outlives(R1, R2))
        assert bound.outlives(R1, R2)
        assert not bound.outlives(R2, R1)

    def test_transitive(self, env):
        r3 = Owner("r3")
        bound = (env.with_owner("r1", K_LOCAL_REGION)
                 .with_owner("r2", K_LOCAL_REGION)
                 .with_owner("r3", K_LOCAL_REGION)
                 .with_outlives(R1, R2).with_outlives(R2, r3))
        assert bound.outlives(R1, r3)

    def test_owns_implies_outlives(self, env):
        bound = (env.with_owner("a", K_OWNER).with_owner("b", K_OWNER)
                 .with_owns(A, B))
        assert bound.outlives(A, B)

    def test_this_type_gives_first_owner_edges(self, env):
        bound = env.with_owner("a", K_OWNER).with_owner("b", K_OWNER)
        bound = bound.with_this(ClassType("C", (A, B)))
        # a owns this  =>  a outlives this; b ≽ a  =>  b ≽ this
        assert bound.owns(A, THIS)
        assert bound.outlives(A, THIS)
        assert bound.outlives(B, THIS)


class TestOwns:
    def test_reflexive(self, env):
        assert env.owns(A, A)

    def test_transitive_chain(self, env):
        c = Owner("c")
        bound = (env.with_owns(A, B).with_owns(B, c))
        assert bound.owns(A, c)
        assert not bound.owns(c, A)

    def test_constraint_entailment(self, env):
        bound = env.with_constraint(Constraint("owns", A, B))
        assert bound.entails(Constraint("owns", A, B))
        assert bound.entails(Constraint("outlives", A, B))
        assert not bound.entails(Constraint("owns", B, A))


class TestHandleAvailability:
    def test_heap_immortal_always_available(self, env):
        assert env.av_rh(HEAP)
        assert env.av_rh(IMMORTAL)

    def test_this_available_inside_class(self, env):
        bound = env.with_owner("a", K_OWNER)
        bound = bound.with_this(ClassType("C", (A, A)))
        assert bound.av_rh(THIS)

    def test_explicit_handle(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION).with_handle(R1)
        assert bound.av_rh(R1)

    def test_unavailable_without_handle(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION)
        assert not bound.av_rh(R1)

    def test_propagates_down_ownership(self, env):
        # [AV TRANS2]: this's handle reaches objects this owns
        bound = env.with_owner("a", K_OWNER).with_owner("b", K_OWNER)
        bound = bound.with_this(ClassType("C", (A, A)))
        bound = bound.with_owns(THIS, B)
        assert bound.av_rh(B)

    def test_propagates_up_ownership(self, env):
        # [AV TRANS1]: an owner lives in the same region as what it owns
        bound = (env.with_owner("r1", K_LOCAL_REGION)
                 .with_owner("a", K_OWNER)
                 .with_handle(R1).with_owns(R1, A))
        assert bound.av_rh(A)

    def test_initial_region_handle_via_with_handle(self, env):
        bound = env.with_handle(INITIAL_REGION)
        assert bound.av_rh(INITIAL_REGION)
        assert not env.av_rh(INITIAL_REGION)


class TestRKind:
    def test_region_owner_is_its_own_kind(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION)
        assert bound.rkind_of(R1) == K_LOCAL_REGION

    def test_specials(self, env):
        assert env.rkind_of(HEAP) == K_GC_REGION
        assert env.rkind_of(IMMORTAL) == K_IMMORTAL

    def test_object_owner_follows_ownership_upward(self, env):
        bound = (env.with_owner("r1", K_SHARED_REGION)
                 .with_owner("a", K_OWNER).with_owns(R1, A))
        assert bound.rkind_of(A) == K_SHARED_REGION

    def test_this_region_comes_from_first_owner(self, env):
        bound = env.with_owner("r1", K_SHARED_REGION)
        bound = bound.with_this(ClassType("C", (R1, R1)))
        assert bound.rkind_of(THIS) == K_SHARED_REGION

    def test_unknown_returns_none(self, env):
        bound = env.with_owner("a", K_OWNER)
        assert bound.rkind_of(A) is None


class TestEffects:
    def test_world_covers_everything(self, env):
        # the initial expression is typed with `world` effects; the
        # regular-thread/RT separation is enforced by the checker's RT
        # membership rules, not by coverage
        bound = env.with_owner("r1", K_LOCAL_REGION)
        assert bound.effect_covers(None, R1)
        assert bound.effect_covers(None, HEAP)
        assert bound.effect_covers(None, RT_EFFECT)

    def test_direct_membership(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION)
        assert bound.effect_covers(frozenset({R1}), R1)
        assert not bound.effect_covers(frozenset(), R1)

    def test_coverage_via_outlives(self, env):
        bound = (env.with_owner("r1", K_LOCAL_REGION)
                 .with_owner("r2", K_LOCAL_REGION)
                 .with_outlives(R1, R2))
        assert bound.effect_covers(frozenset({R1}), R2)
        assert not bound.effect_covers(frozenset({R2}), R1)

    def test_rt_only_covered_by_rt(self, env):
        assert env.effect_covers(frozenset({RT_EFFECT}), RT_EFFECT)
        assert not env.effect_covers(frozenset({HEAP, IMMORTAL}),
                                     RT_EFFECT)

    def test_rt_does_not_cover_owners(self, env):
        bound = env.with_owner("r1", K_LOCAL_REGION)
        assert not bound.effect_covers(frozenset({RT_EFFECT}), R1)

    def test_subsume_set(self, env):
        bound = (env.with_owner("r1", K_LOCAL_REGION)
                 .with_owner("r2", K_LOCAL_REGION)
                 .with_outlives(R1, R2))
        assert bound.effects_subsume(frozenset({R1, RT_EFFECT}),
                                     [R2, RT_EFFECT])
        assert not bound.effects_subsume(frozenset({R2}), [R1, R2])
