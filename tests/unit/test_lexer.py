"""Unit tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("_foo9 bar_2") == ["_foo9", "bar_2"]

    def test_int_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT_LIT
        assert toks[0].text == "42"

    def test_float_literal(self):
        assert kinds("3.25") == [TokenKind.FLOAT_LIT]

    def test_float_with_exponent(self):
        assert kinds("1.5e3 2e10 7.0E-2") == [TokenKind.FLOAT_LIT] * 3

    def test_int_then_dot_is_not_float_without_digit(self):
        # `x.fd` style: 3.foo lexes as INT DOT IDENT
        assert kinds("3.foo") == [TokenKind.INT_LIT, TokenKind.DOT,
                                  TokenKind.IDENT]

    def test_keywords(self):
        assert kinds("class extends where owns outlives") == [
            TokenKind.CLASS, TokenKind.EXTENDS, TokenKind.WHERE,
            TokenKind.OWNS, TokenKind.OUTLIVES]

    def test_region_keywords(self):
        assert kinds("regionKind RHandle heap immortal initialRegion") == [
            TokenKind.REGION_KIND, TokenKind.RHANDLE, TokenKind.HEAP,
            TokenKind.IMMORTAL, TokenKind.INITIAL_REGION]

    def test_rt_and_fork(self):
        assert kinds("RT fork LT VT NoRT") == [
            TokenKind.RT, TokenKind.FORK, TokenKind.LT, TokenKind.VT,
            TokenKind.NORT]

    def test_builtin_kind_names_are_identifiers(self):
        # Owner/Region/... are resolved contextually, not reserved
        assert kinds("Owner Region LocalRegion SharedRegion") == [
            TokenKind.IDENT] * 4


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("== != <= >= && ||") == [
            TokenKind.EQ, TokenKind.NE, TokenKind.LE, TokenKind.GE,
            TokenKind.AND_AND, TokenKind.OR_OR]

    def test_single_char_operators(self):
        assert kinds("+ - * / % ! = < >") == [
            TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR,
            TokenKind.SLASH, TokenKind.PERCENT, TokenKind.BANG,
            TokenKind.ASSIGN, TokenKind.LANGLE, TokenKind.RANGLE]

    def test_punctuation(self):
        assert kinds("( ) { } , ; . :") == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACE,
            TokenKind.RBRACE, TokenKind.COMMA, TokenKind.SEMI,
            TokenKind.DOT, TokenKind.COLON]

    def test_adjacent_angle_brackets(self):
        assert kinds("a<b<c") == [TokenKind.IDENT, TokenKind.LANGLE,
                                  TokenKind.IDENT, TokenKind.LANGLE,
                                  TokenKind.IDENT]


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment here\n b") == [TokenKind.IDENT,
                                                  TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT,
                                           TokenKind.IDENT]

    def test_nested_like_block_comment_terminates_at_first_close(self):
        assert texts("a /* /* */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert kinds("a\tb\r\nc") == [TokenKind.IDENT] * 3


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert toks[0].span.start.line == 1
        assert toks[0].span.start.column == 1
        assert toks[1].span.start.line == 2
        assert toks[1].span.start.column == 3

    def test_filename_in_span(self):
        toks = tokenize("x", filename="prog.rtj")
        assert toks[0].span.filename == "prog.rtj"


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a $ b")
        assert "$" in str(exc.value)

    def test_lone_ampersand(self):
        with pytest.raises(LexError):
            tokenize("a & b")

    def test_lone_pipe(self):
        with pytest.raises(LexError):
            tokenize("a | b")


class TestFuzzRegressions:
    """Bugs found by the property fuzzer, pinned."""

    def test_unicode_superscript_digit_is_not_a_number(self):
        # '¹'.isdigit() is True but int('¹') raises; it must lex as part
        # of a word, never as an INT_LIT
        toks = tokenize("x¹")
        assert toks[0].kind is TokenKind.IDENT

    def test_lone_unicode_digit_raises_lex_error(self):
        with pytest.raises(LexError):
            tokenize("٠")  # ARABIC-INDIC DIGIT ZERO, not alnum-start

    def test_number_at_end_of_input(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT_LIT
        toks = tokenize("1.5")
        assert toks[0].kind is TokenKind.FLOAT_LIT
        toks = tokenize("1e")  # not an exponent: INT then IDENT
        assert [t.kind for t in toks[:-1]] == [TokenKind.INT_LIT,
                                               TokenKind.IDENT]
