"""Typechecker tests: regions, subregions, portals, policies
(Sections 2.2 / 2.3)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402

KINDS = """
regionKind Buf extends SharedRegion {
    Frame<this> f;
    Sub : LT(512) NoRT work;
    Sub : VT NoRT scratch;
    Sub : LT(256) RT rtwork;
}
regionKind Sub extends SharedRegion { }
class Frame<Owner o> { int data; }
"""


class TestRegionCreation:
    def test_plain_local_region(self):
        assert_well_typed("{ (RHandle<r> h) { int x = 1; } }")

    def test_nested_regions_outlives(self):
        assert_well_typed(
            "class Cell<Owner o> { Cell<o> next; }\n"
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Cell<r1> outer = new Cell<r1>;"
            "} }")

    def test_region_creation_needs_heap_effect(self):
        assert_rejected(
            "class M<Owner o> {"
            "  void go() accesses o { (RHandle<r> h) { int x = 1; } }"
            "}",
            rule="EXPR REGION")

    def test_region_creation_with_heap_effect(self):
        assert_well_typed(
            "class M<Owner o> {"
            "  void go() accesses heap { (RHandle<r> h) { int x = 1; } }"
            "}")

    def test_shared_region_with_kind(self):
        assert_well_typed(KINDS + "(RHandle<Buf r> h) { int x = 1; }")

    def test_lt_policy_on_creation(self):
        assert_well_typed(KINDS +
                          "(RHandle<Buf : LT(4096) r> h) { int x = 1; }")

    def test_unknown_kind(self):
        assert_rejected("(RHandle<Nope r> h) { }", rule="OKIND")

    def test_cannot_create_non_creatable_kind(self):
        assert_rejected("(RHandle<GCRegion r> h) { }",
                        rule="EXPR REGION")

    def test_region_name_shadowing_rejected(self):
        assert_rejected(
            "{ (RHandle<r> h1) { (RHandle<r> h2) { } } }",
            fragment="shadows")

    def test_handle_has_handle_type(self):
        # the handle can be passed where an RHandle is expected
        assert_well_typed(
            "class M<Owner o> {"
            "  void use<Region r>(RHandle<r> h) accesses r { }"
            "}\n"
            "(RHandle<r1> h1) {"
            "  M<r1> m = new M<r1>;"
            "  m.use<r1>(h1);"
            "}")


class TestPortals:
    def test_portal_read_write(self):
        assert_well_typed(KINDS +
                          "(RHandle<Buf r> h) {"
                          "  Frame<r> fr = new Frame<r>;"
                          "  h.f = fr;"
                          "  Frame<r> back = h.f;"
                          "  h.f = null;"
                          "}")

    def test_portal_type_substitutes_this_with_region(self):
        # the portal declared Frame<this> becomes Frame<r>
        assert_rejected(
            KINDS +
            "(RHandle<Buf r> h) { (RHandle<Buf r2> h2) {"
            "  Frame<r2> fr = new Frame<r2>;"
            "  h.f = fr;"   # Frame<r2> is not Frame<r>
            "} }",
            rule="SUBTYPE")

    def test_unknown_portal(self):
        assert_rejected(KINDS + "(RHandle<Buf r> h) { h.nope = null; }",
                        rule="EXPR GET REGION FIELD")

    def test_local_region_has_no_portals(self):
        assert_rejected("(RHandle<r> h) { h.f = null; }",
                        rule="EXPR GET REGION FIELD")

    def test_inherited_portals(self):
        src = """
regionKind Base<Owner o> extends SharedRegion { Frame<o> slot; }
regionKind Derived<Owner o> extends Base<o> { }
class Frame<Owner o> { int data; }
(RHandle<Derived<heap> r> h) {
    Frame<heap> fr = new Frame<heap>;
    h.slot = fr;
}
"""
        assert_well_typed(src)


class TestSubregions:
    def test_subregion_entry(self):
        assert_well_typed(KINDS +
                          "(RHandle<Buf r> h) {"
                          "  (RHandle<Sub r2> h2 = h.work) { int x = 1; }"
                          "}")

    def test_fresh_subregion_entry(self):
        assert_well_typed(KINDS +
                          "(RHandle<Buf r> h) {"
                          "  (RHandle<Sub r2> h2 = new h.work) {"
                          "    int x = 1;"
                          "  }"
                          "}")

    def test_unknown_subregion(self):
        assert_rejected(KINDS +
                        "(RHandle<Buf r> h) {"
                        "  (RHandle<Sub r2> h2 = h.nope) { }"
                        "}",
                        rule="EXPR SUBREGION")

    def test_wrong_kind_annotation(self):
        assert_rejected(KINDS +
                        "(RHandle<Buf r> h) {"
                        "  (RHandle<Buf r2> h2 = h.work) { }"
                        "}",
                        rule="EXPR SUBREGION")

    def test_parent_outlives_subregion(self):
        # a subregion object may point at a parent-region object...
        assert_well_typed(
            KINDS +
            "class Link<Owner a, Owner b> { Frame<b> to; }\n"
            "(RHandle<Buf r> h) {"
            "  Frame<r> parentObj = new Frame<r>;"
            "  (RHandle<Sub r2> h2 = h.work) {"
            "    Link<r2, r> link = new Link<r2, r>;"
            "    link.to = parentObj;"
            "  }"
            "}")

    def test_subregion_does_not_outlive_parent(self):
        # ...but not the reverse
        assert_rejected(
            KINDS +
            "class Link<Owner a, Owner b> { Frame<b> to; }\n"
            "(RHandle<Buf r> h) {"
            "  (RHandle<Sub r2> h2 = h.work) {"
            "    Link<r, r2> bad = null;"
            "  }"
            "}",
            rule="TYPE C")

    def test_entering_subregion_of_plain_handle_rejected(self):
        assert_rejected(
            "(RHandle<r> h) { (RHandle<Sub r2> h2 = h.work) { } }")


class TestRealtimeRules:
    def test_rt_subregion_needs_rt_effect(self):
        assert_rejected(
            KINDS +
            "class M<Buf r> {"
            "  void go(RHandle<r> h) accesses r {"
            "    (RHandle<Sub r2> h2 = h.rtwork) { }"
            "  }"
            "}",
            rule="EXPR SUBREGION", fragment="RT effect")

    def test_rt_subregion_with_rt_effect(self):
        assert_well_typed(
            KINDS +
            "class M<Buf r> {"
            "  void go(RHandle<r> h) accesses r, RT {"
            "    (RHandle<Sub r2> h2 = h.rtwork) { int x = 1; }"
            "  }"
            "}")

    def test_main_cannot_enter_rt_subregion(self):
        # the initial expression runs on a regular thread
        assert_rejected(
            KINDS +
            "(RHandle<Buf r> h) {"
            "  (RHandle<Sub r2> h2 = h.rtwork) { }"
            "}",
            rule="EXPR SUBREGION")

    def test_nort_subregion_needs_heap_effect(self):
        assert_rejected(
            KINDS +
            "class M<Buf r> {"
            "  void go(RHandle<r> h) accesses r {"
            "    (RHandle<Sub r2> h2 = h.work) { }"
            "  }"
            "}",
            rule="EXPR SUBREGION")

    def test_rt_entry_of_existing_lt_needs_no_heap(self):
        # "a method that does not contain the heap region in its effects
        # clause can still enter an existing LT subregion"
        assert_well_typed(
            KINDS +
            "class M<Buf r> {"
            "  void go(RHandle<r> h) accesses r, RT {"
            "    (RHandle<Sub r2> h2 = h.rtwork) { int x = 1; }"
            "  }"
            "}")

    def test_fresh_rt_subregion_needs_heap(self):
        # `new` re-creates the subregion: allocation
        assert_rejected(
            KINDS +
            "class M<Buf r> {"
            "  void go(RHandle<r> h) accesses r, RT {"
            "    (RHandle<Sub r2> h2 = new h.rtwork) { }"
            "  }"
            "}",
            rule="EXPR SUBREGION")


class TestRegionKindDeclarations:
    def test_subregion_kind_must_be_shared(self):
        assert_rejected(
            "regionKind K extends SharedRegion { LocalRegion : VT NoRT s; }",
            rule="REGION KIND DEF")

    def test_portal_type_checked(self):
        assert_rejected(
            "regionKind K extends SharedRegion { Nope<this> f; }",
            rule="TYPE C")

    def test_parameterized_kind_args_checked(self):
        assert_rejected(
            "regionKind K<Region r> extends SharedRegion { }\n"
            "class C<Owner o> { }\n"
            "class M<Owner o> {"
            "  void go<K<o> r2>() { }"   # o is not a region
            "}",
            rule="USER DECLARED SHARED REGION")
