"""Unit tests for the Python erasure backend."""

import pytest

from repro import RunOptions, analyze, run_source
from repro.interp.compile_py import (CompileError, _Compiler,
                                     compile_to_python)
from repro.interp.translate import AllocStrategy, translate


def compiled_outputs(source: str, **kwargs):
    analyzed = analyze(source).require_well_typed()
    compiled = compile_to_python(analyzed, **kwargs)
    return compiled, compiled.run()


class TestEmission:
    def test_out_of_order_inheritance(self):
        # B extends A but appears first in the source
        compiled, out = compiled_outputs(
            "class B<Owner o> extends A<o> { int tag() { return 2; } }\n"
            "class A<Owner o> { int tag() { return 1; } }\n"
            "{ A<heap> x = new B<heap>; print(x.tag()); }")
        assert out == ["2"]
        assert compiled.source.index("class A") \
            < compiled.source.index("class B")

    def test_python_keyword_field_names_mangled(self):
        compiled, out = compiled_outputs(
            "class C<Owner o> { int pass; int lambda; }\n"
            "{ C<heap> c = new C<heap>;"
            "  c.pass = 3; c.lambda = 4;"
            "  print(c.pass + c.lambda); }")
        assert out == ["7"]
        assert "self.pass_" in compiled.source

    def test_statics_compile_to_class_attributes(self):
        compiled, out = compiled_outputs(
            "class C<Owner o> { static int n = 5; }\n"
            "{ C.n = C.n + 1; print(C.n); }")
        assert out == ["6"]
        assert "n = 5" in compiled.source

    def test_this_owned_allocation_via_area_attribute(self):
        compiled, out = compiled_outputs(
            "class Inner<Owner o> { int v; }\n"
            "class Outer<Owner o> {"
            "  Inner<this> guts;"
            "  void fill() { guts = new Inner<this>; }"
            "  int probe() { if (guts == null) { return 0; }"
            "                return 1; }"
            "}\n"
            "(RHandle<r> h) {"
            "  Outer<r> o = new Outer<r>;"
            "  o.fill();"
            "  print(o.probe());"
            "}")
        assert out == ["1"]
        assert "self._area.alloc" in compiled.source

    def test_initial_region_allocation_uses_method_entry_area(self):
        compiled, out = compiled_outputs(
            "class Cell<Owner o> { int v; }\n"
            "class Maker<Owner o> {"
            "  Cell<initialRegion> make() accesses heap, initialRegion {"
            "    (RHandle<scratch> hs) {"
            "      Cell<initialRegion> c = new Cell<initialRegion>;"
            "      return c;"
            "    }"
            "    return null;"
            "  }"
            "}\n"
            "(RHandle<r> h) {"
            "  Maker<r> m = new Maker<r>;"
            "  Cell<r> got = m.make();"
            "  print(got != null);"
            "}")
        assert out == ["true"]
        # the allocation targets _cur (the method's entry area), not the
        # scratch region created inside
        assert "_cur.alloc(Cell()" in compiled.source

    def test_owner_chain_strategy(self):
        # p is owned by region r whose handle is a parameter: the
        # translator must find the handle through [AV TRANS1/2]
        source = (
            "class Cell<Owner o> { int v; }\n"
            "class M<Owner o> {"
            "  Cell<p> make<Region r, Owner p>(RHandle<r> h)"
            "      accesses r, p where r owns p {"
            "    return new Cell<p>;"
            "  }"
            "}\n"
            "(RHandle<r1> h1) {"
            "  M<r1> m = new M<r1>;"
            "  Cell<r1> c = m.make<r1, r1>(h1);"
            "  print(c != null);"
            "}")
        analyzed = analyze(source).require_well_typed()
        translation = translate(analyzed)
        strategies = {s.strategy for s in translation.sites}
        assert AllocStrategy.VIA_OWNER_CHAIN in strategies
        assert compile_to_python(analyzed).run() == ["true"]


class TestRuntimeParityCorners:
    def test_float_formatting_matches(self):
        source = "{ print(1.0 / 3.0); print(sqrt(2.0)); print(0.1 + 0.2); }"
        analyzed = analyze(source).require_well_typed()
        assert compile_to_python(analyzed).run() \
            == run_source(analyzed, RunOptions()).output

    def test_division_semantics_match(self):
        source = ("{ print(-9 / 4); print(-9 % 4); print(9 / -4);"
                  "  print(ftoi(3.99)); }")
        analyzed = analyze(source).require_well_typed()
        assert compile_to_python(analyzed).run() \
            == run_source(analyzed, RunOptions()).output

    def test_short_circuit_matches(self):
        source = ("class C<Owner o> {"
                  "  static int calls;"
                  "  boolean bump() accesses immortal {"
                  "    C.calls = C.calls + 1;"
                  "    return true;"
                  "  }"
                  "}\n"
                  "{ C<heap> c = new C<heap>;"
                  "  boolean x = false && c.bump();"
                  "  boolean y = true || c.bump();"
                  "  print(C.calls); }")
        analyzed = analyze(source).require_well_typed()
        assert compile_to_python(analyzed).run() \
            == run_source(analyzed, RunOptions()).output == ["0"]

    def test_default_returns_match(self):
        source = ("class C<Owner o> {"
                  "  int i() { }"
                  "  float f() { }"
                  "  boolean b() { }"
                  "}\n"
                  "{ C<heap> c = new C<heap>;"
                  "  print(c.i()); print(c.f()); print(c.b()); }")
        analyzed = analyze(source).require_well_typed()
        assert compile_to_python(analyzed).run() \
            == run_source(analyzed, RunOptions()).output


class TestErrors:
    def test_fork_not_supported(self):
        source = ("regionKind S extends SharedRegion { }\n"
                  "class W<S r> { void go(RHandle<r> h) accesses r { } }\n"
                  "(RHandle<S r> h) { fork (new W<r>).go(h); }")
        with pytest.raises(CompileError):
            compile_to_python(analyze(source).require_well_typed())

    def test_ill_typed_rejected_by_default(self):
        from repro.errors import OwnershipTypeError
        analyzed = analyze("class C<Owner o> { }\n{ C<zap> c = null; }")
        with pytest.raises(OwnershipTypeError):
            compile_to_python(analyzed)
