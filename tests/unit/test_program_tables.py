"""Unit tests for the semantic program tables: member lookup with
inheritance substitution ([DECLARED/INHERITED CLASS MEMBER], region
members), builtins, and subtyping plumbing."""

from repro.core.kinds import Kind
from repro.core.owners import Owner
from repro.core.program import build_program_info
from repro.core.types import ClassType, INT
from repro.lang import parse_program


def info_of(source: str):
    return build_program_info(parse_program(source))


class TestClassMemberLookup:
    SOURCE = """
class Cell<Owner o> { int v; }
class Base<Owner a, Owner b> {
    Cell<b> held;
    Cell<b> get() { return held; }
    int id(int x) { return x; }
}
class Mid<Owner p> extends Base<p, heap> { int extra; }
class Leaf<Owner q> extends Mid<q> { }
"""

    def test_declared_field(self):
        info = info_of(self.SOURCE)
        fi = info.lookup_field("Base", "held")
        assert fi.type == ClassType("Cell", (Owner("b"),))

    def test_inherited_field_single_hop(self):
        info = info_of(self.SOURCE)
        fi = info.lookup_field("Mid", "held")
        # b was instantiated with heap
        assert fi.type == ClassType("Cell", (Owner("heap"),))

    def test_inherited_field_two_hops(self):
        info = info_of(self.SOURCE)
        fi = info.lookup_field("Leaf", "held")
        assert fi.type == ClassType("Cell", (Owner("heap"),))

    def test_own_field_not_substituted(self):
        info = info_of(self.SOURCE)
        fi = info.lookup_field("Mid", "extra")
        assert fi.type == INT

    def test_missing_field(self):
        info = info_of(self.SOURCE)
        assert info.lookup_field("Leaf", "nope") is None

    def test_inherited_method_return_substituted(self):
        info = info_of(self.SOURCE)
        mi = info.lookup_method("Leaf", "get")
        assert mi.return_type == ClassType("Cell", (Owner("heap"),))

    def test_scalar_method_unchanged(self):
        info = info_of(self.SOURCE)
        mi = info.lookup_method("Leaf", "id")
        assert mi.return_type == INT
        assert mi.params[0][0] == INT

    def test_superclass_of_chain(self):
        info = info_of(self.SOURCE)
        leaf = ClassType("Leaf", (Owner("r"),))
        mid = info.superclass_of(leaf)
        assert mid == ClassType("Mid", (Owner("r"),))
        base = info.superclass_of(mid)
        assert base == ClassType("Base", (Owner("r"), Owner("heap")))

    def test_everything_roots_at_object(self):
        info = info_of(self.SOURCE)
        cell = ClassType("Cell", (Owner("x"),))
        assert info.superclass_of(cell) is None or \
            info.superclass_of(cell).name == "Object"


class TestBuiltins:
    def test_builtin_classes_present(self):
        info = info_of("class C<Owner o> { }")
        for name in ("Object", "IntArray", "FloatArray"):
            assert name in info.classes
            assert info.classes[name].builtin

    def test_array_methods(self):
        info = info_of("class C<Owner o> { }")
        get = info.lookup_method("IntArray", "get")
        assert get.native == "IntArray.get"
        assert get.return_type == INT
        assert info.lookup_method("FloatArray", "length") is not None

    def test_array_ctor_params(self):
        info = info_of("class C<Owner o> { }")
        assert info.classes["IntArray"].ctor_params == (INT,)


class TestRegionKindMembers:
    SOURCE = """
regionKind Base<Owner o> extends SharedRegion {
    Cell<o> slot;
    Sub : LT(128) RT work;
}
regionKind Derived<Owner p> extends Base<p> {
    Cell<this> local;
}
regionKind Sub extends SharedRegion { }
class Cell<Owner o> { int v; }
"""

    def test_declared_portal(self):
        info = info_of(self.SOURCE)
        portal = info.lookup_portal(Kind("Base", (Owner("heap"),)),
                                    "slot")
        assert portal.type == ClassType("Cell", (Owner("heap"),))

    def test_inherited_portal_substituted(self):
        info = info_of(self.SOURCE)
        portal = info.lookup_portal(Kind("Derived", (Owner("r"),)),
                                    "slot")
        assert portal.type == ClassType("Cell", (Owner("r"),))

    def test_this_typed_portal(self):
        info = info_of(self.SOURCE)
        portal = info.lookup_portal(Kind("Derived", (Owner("r"),)),
                                    "local")
        assert portal.type == ClassType("Cell", (Owner("this"),))

    def test_inherited_subregion(self):
        info = info_of(self.SOURCE)
        sub = info.lookup_subregion(Kind("Derived", (Owner("r"),)),
                                    "work")
        assert sub is not None
        assert sub.policy.kind == "LT"
        assert sub.policy.size == 128
        assert sub.realtime

    def test_all_members_aggregation(self):
        info = info_of(self.SOURCE)
        derived = Kind("Derived", (Owner("r"),))
        assert set(info.all_portals(derived)) == {"slot", "local"}
        assert set(info.all_subregions(derived)) == {"work"}

    def test_kind_table_wired(self):
        info = info_of(self.SOURCE)
        assert info.kind_table.is_subkind(
            Kind("Derived", (Owner("x"),)), Kind("SharedRegion"))
