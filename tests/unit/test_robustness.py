"""Robustness regression tests: manager-scoped area ids, structured
handling of crashing threads, graceful degradation, and the error paths
of the simulated runtime (budget exhaustion, illegal stores, portal
flush conditions, metrics export after a failed run)."""

import sys
from pathlib import Path

import pytest

from repro import RunOptions, analyze, run_source
from repro.errors import (IllegalAssignmentError, OutOfMemoryError,
                          OutOfRegionMemoryError, SanitizerViolation,
                          ThreadCrashError)
from repro.interp.machine import Machine
from repro.rtsj.faults import FaultPlan, RecoveryPolicy
from repro.rtsj.regions import LT, MemoryArea, RegionManager
from repro.rtsj.stats import Stats
from repro.rtsj.threads import Scheduler, SimThread

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import TSTACK_SOURCE, assert_well_typed  # noqa: E402


class TestAreaIdScoping:
    """Area ids come from the owning RegionManager, not a process-global
    counter — two runs of the same program must produce identical ids
    (replayable fault schedules key on deterministic state)."""

    def test_fresh_managers_hand_out_identical_ids(self):
        def id_sequence():
            manager = RegionManager()
            created = [manager.create(f"r{i}", "K", LT, 1024, set())
                       for i in range(5)]
            return ([manager.heap.area_id, manager.immortal.area_id]
                    + [area.area_id for area in created])

        assert id_sequence() == id_sequence()

    def test_two_runs_of_one_program_use_identical_ids(self):
        analyzed = assert_well_typed(TSTACK_SOURCE)

        def area_ids():
            machine = Machine(analyzed, RunOptions())
            machine.run()
            return sorted(a.area_id for a in machine.regions.areas)

        assert area_ids() == area_ids()

    def test_adhoc_areas_cannot_collide_with_manager_ids(self):
        # areas built without a manager draw from a distant fallback
        # range, so mixing ad-hoc areas into a managed run cannot alias
        adhoc = MemoryArea("loose", "K", LT, 64)
        assert adhoc.area_id >= 1 << 20


def _costs_then(effect, *costs):
    """A coroutine that charges ``costs`` then runs ``effect``."""
    def gen():
        for cost in costs:
            yield cost
        effect()
    return gen()


def _noop():
    pass


class TestCrashingThreads:
    """A host-level exception inside one simulated thread must surface
    as a structured ThreadCrashError, never abandon the run queue, and
    always bring thread/region state back down."""

    def _boom(self):
        raise ValueError("boom")

    def test_fail_stop_wraps_crash_in_diagnostic(self):
        scheduler = Scheduler(Stats())
        scheduler.spawn(SimThread("bad",
                                  _costs_then(self._boom, 10)))
        with pytest.raises(ThreadCrashError) as exc:
            scheduler.run()
        err = exc.value
        assert err.thread == "bad"
        assert err.cycle is not None
        assert "ValueError" in str(err)
        assert err.diagnostic()["cause"] == "ValueError"

    def test_fail_stop_still_finishes_every_thread(self):
        scheduler = Scheduler(Stats(), quantum=50)
        scheduler.spawn(SimThread("bad",
                                  _costs_then(self._boom, 10)))
        scheduler.spawn(SimThread("slow",
                                  _costs_then(_noop, *[40] * 20)))
        with pytest.raises(ThreadCrashError):
            scheduler.run()
        assert all(t.done for t in scheduler.threads)

    def test_crash_releases_shared_regions(self):
        scheduler = Scheduler(Stats())
        shared = MemoryArea("shared", "K", LT, 1024)
        shared.thread_count = 1
        thread = SimThread("bad", _costs_then(self._boom, 5))
        thread.shared_stack.append(shared)
        scheduler.spawn(thread)
        with pytest.raises(ThreadCrashError):
            scheduler.run()
        assert shared.thread_count == 0

    def test_degrade_mode_keeps_draining_the_queue(self):
        done = []
        scheduler = Scheduler(Stats(), quantum=50, degrade=True)
        scheduler.spawn(SimThread("bad",
                                  _costs_then(self._boom, 10)))
        scheduler.spawn(SimThread("worker",
                                  _costs_then(lambda: done.append(1),
                                              *[40] * 10)))
        scheduler.run()  # must not raise
        assert done == [1]
        diags = scheduler.diagnostics
        assert len(diags) == 1
        assert isinstance(diags[0], ThreadCrashError)
        assert diags[0].thread == "bad"
        assert scheduler.stats.threads_aborted == 1

    def test_degrade_mode_collects_simulated_failures_too(self):
        def overflow():
            raise OutOfRegionMemoryError("LT budget exhausted")

        scheduler = Scheduler(Stats(), degrade=True)
        scheduler.spawn(SimThread("rt", _costs_then(overflow, 5)))
        scheduler.run()
        assert len(scheduler.diagnostics) == 1
        assert isinstance(scheduler.diagnostics[0],
                          OutOfRegionMemoryError)

    def test_sanitizer_violations_stay_fatal_in_degrade_mode(self):
        def corrupt():
            raise SanitizerViolation("O1-forest", "r", "cycle detected")

        scheduler = Scheduler(Stats(), degrade=True)
        scheduler.spawn(SimThread("bad", _costs_then(corrupt, 5)))
        with pytest.raises(SanitizerViolation):
            scheduler.run()
        assert scheduler.diagnostics == []


LT_OVERFLOW = """
class C<Owner o> { int a; int b; int c; int d; }
{ (RHandle<LocalRegion : LT(48) r> h) {
    C<r> one = new C<r>;
    C<r> two = new C<r>;
} }
"""

DANGLING_STORE = """
class Cell<Owner o> { int v; Cell<o> next; }
(RHandle<r1> h1) {
    Cell<r1> outer = new Cell<r1>;
    (RHandle<r2> h2) {
        Cell<r2> inner = new Cell<r2>;
        outer.next = inner;
    }
}
"""

PORTAL_FLUSH = """
regionKind Buf extends SharedRegion {
    Sub : LT(4096) NoRT b;
}
regionKind Sub extends SharedRegion {
    Frame<this> f;
}
class Frame { int data; }
(RHandle<Buf r> h) {
    (RHandle<Sub r2> h2 = h.b) {
        Frame frame = new Frame;
        frame.data = 7;
        h2.f = frame;
    }
    (RHandle<Sub r2> h2 = h.b) {
        Frame back = h2.f;
        if (back != null) { print(back.data); }
        h2.f = null;
    }
    (RHandle<Sub r2> h2 = h.b) {
        if (h2.f == null) { print(0); }
    }
}
"""


class TestErrorPaths:
    def test_lt_exhaustion_names_its_site(self):
        analyzed = assert_well_typed(LT_OVERFLOW)
        with pytest.raises(OutOfRegionMemoryError) as exc:
            run_source(analyzed, RunOptions())
        err = exc.value
        assert err.site == "lt_alloc"
        assert not err.injected
        assert "48" in str(err)
        diag = err.diagnostic()
        assert diag["type"] == "OutOfRegionMemoryError"
        assert diag["thread"] == "main"
        assert diag["cycle"] is not None

    def test_vt_chunk_denial_is_out_of_memory(self):
        # organic VT allocation is unbounded; denial comes from the
        # fault plane, and with spilling disabled it must surface as a
        # structured OutOfMemoryError naming the site
        plan = FaultPlan(seed=0, rate=1.0, sites=("vt_chunk",))
        options = RunOptions(
            fault_plan=plan,
            recovery=RecoveryPolicy(max_retries=0, vt_spill=False))
        with pytest.raises(OutOfMemoryError) as exc:
            run_source(assert_well_typed(TSTACK_SOURCE), options)
        assert exc.value.site == "vt_chunk"
        assert exc.value.injected

    def test_illegal_assignment_message_names_regions(self):
        analyzed = analyze(DANGLING_STORE)
        assert analyzed.errors  # statically rejected, as expected
        with pytest.raises(IllegalAssignmentError) as exc:
            run_source(analyzed, RunOptions(checks_enabled=True),
                       require_well_typed=False)
        message = str(exc.value)
        assert "r1" in message and "r2" in message

    def test_portal_null_is_a_flush_condition(self):
        # a non-null portal pins the subregion across re-entries;
        # nulling it lets the exit flush the region (Section 2.2)
        result = run_source(assert_well_typed(PORTAL_FLUSH),
                            RunOptions())
        assert result.output == ["7", "0"]
        assert result.stats.region_flushes >= 1

    def test_metrics_still_export_after_failed_run(self):
        machine = Machine(assert_well_typed(LT_OVERFLOW), RunOptions())
        with pytest.raises(OutOfRegionMemoryError):
            machine.run()
        registry = machine.stats.metrics
        cycles = registry.get("repro_run_cycles")
        assert cycles is not None
        assert cycles.value == machine.stats.cycles > 0
        assert registry.get("repro_region_peak_bytes") is not None
