"""The interpreter/runtime fast paths added by the performance work.

Covers the pieces the equivalence suite cannot see directly: the
``(class, method)`` call-entry inline cache, the checked/unchecked
access-path binding, the dead-region pruning in ``RegionManager``, and
the once-only ``Stats.events`` deprecation shim.
"""

from __future__ import annotations

import pytest

from repro import RunOptions, analyze, run_source
from repro.interp.machine import Machine
from repro.obs import MetricsRegistry, Tracer
from repro.rtsj.regions import LT, VT, RegionManager
from repro.rtsj.stats import Stats

DISPATCH_SOURCE = """
class Animal<Owner o> {
    int sound() { return 1; }
    int speak() { return this.sound(); }
}
class Dog<Owner o> extends Animal<o> {
    int sound() { return 2; }
}
Animal<heap> a = new Animal<heap>;
Dog<heap> d = new Dog<heap>;
print(a.speak());
print(d.speak());
print(a.speak());
"""


# ---------------------------------------------------------------------------
# call-entry inline cache
# ---------------------------------------------------------------------------

def test_call_entry_cache_keeps_dynamic_dispatch_correct():
    analyzed = analyze(DISPATCH_SOURCE)
    assert not analyzed.errors
    result = run_source(analyzed, RunOptions())
    # overridden method resolves per receiver class even though the
    # (class, method) entry is looked up through the cache every call
    assert result.output == ["1", "2", "1"]


def test_call_entry_cache_is_populated_once_per_key():
    analyzed = analyze(DISPATCH_SOURCE)
    machine = Machine(analyzed, RunOptions())
    machine.run()
    cache = machine.interpreter._call_cache
    assert ("Animal", "speak") in cache
    assert ("Dog", "speak") in cache  # inherited entry, own key
    assert ("Dog", "sound") in cache
    # entries are concrete tuples, not None placeholders
    assert all(entry is not None for entry in cache.values())


def test_missing_method_error_unchanged_by_cache():
    source = """
    class A<Owner o> { int x; }
    A<heap> a = new A<heap>;
    a.nope();
    """
    analyzed = analyze(source)
    # the checker rejects the call statically; run unchecked to reach
    # the interpreter's own (cached) lookup error path
    with pytest.raises(Exception, match="no method 'nope'"):
        run_source(analyzed, RunOptions(), require_well_typed=False)


# ---------------------------------------------------------------------------
# checks compiled out at the Python level
# ---------------------------------------------------------------------------

def test_access_paths_bind_to_mode():
    analyzed = analyze(DISPATCH_SOURCE)
    checked = Machine(analyzed, RunOptions(checks_enabled=True,
                                           validate=False)).interpreter
    unchecked = Machine(analyzed, RunOptions(checks_enabled=False,
                                             validate=False)).interpreter
    assert checked._field_write.__name__ == "_field_write_checked"
    assert unchecked._field_write.__name__ == "_field_write_unchecked"
    assert checked._field_read.__name__ == "_field_read_checked"
    assert unchecked._field_read.__name__ == "_field_read_unchecked"


def test_validate_mode_keeps_checked_paths_without_charging():
    analyzed = analyze(DISPATCH_SOURCE)
    interp = Machine(analyzed, RunOptions(checks_enabled=False,
                                          validate=True)).interpreter
    # validation still needs the check engine on the access path
    assert interp._field_write.__name__ == "_field_write_checked"


# ---------------------------------------------------------------------------
# RegionManager dead-area pruning
# ---------------------------------------------------------------------------

def _spawn_dead(manager, n, peak=64):
    for i in range(n):
        area = manager.create(f"tmp{i}", "LocalRegion", VT, 0, set())
        area.peak_bytes = peak
        area.destroy()


def test_dead_areas_are_pruned_past_threshold():
    manager = RegionManager()
    _spawn_dead(manager, RegionManager.PRUNE_THRESHOLD + 8)
    # the registry stays bounded instead of holding every dead area
    assert len(manager.areas) < RegionManager.PRUNE_THRESHOLD
    assert manager.pruned_dead > 0
    assert manager.pruned_peak_bytes == 64


def test_prune_dead_is_explicit_and_idempotent():
    manager = RegionManager()
    _spawn_dead(manager, 10, peak=128)
    dropped = manager.prune_dead()
    assert dropped == 10
    assert manager.prune_dead() == 0
    assert manager.pruned_dead == 10
    assert manager.pruned_peak_bytes == 128
    assert [a.name for a in manager.areas] == \
        [manager.heap.name, manager.immortal.name]


def test_export_metrics_aggregates_dead_regions():
    manager = RegionManager()
    _spawn_dead(manager, 600, peak=32)  # crosses the prune threshold
    live = manager.create("live", "LocalRegion", LT, 16, set())
    registry = MetricsRegistry()
    manager.export_metrics(registry)
    snapshot = registry.to_dict()
    dead_gauge = snapshot["repro_region_dead_areas"]["series"]
    assert dead_gauge[0]["value"] == 600
    peak_series = snapshot["repro_region_peak_bytes"]["series"]
    regions = [s["labels"]["region"] for s in peak_series]
    # one aggregate watermark series for all dead areas, not 600
    assert regions.count("<dead>") == 1
    assert "live" in regions
    assert not any(r.startswith("tmp") for r in regions)
    assert live.live


# ---------------------------------------------------------------------------
# single event source: the Stats.events shim is gone
# ---------------------------------------------------------------------------

def test_stats_has_single_event_source():
    stats = Stats()
    # the deprecated Stats.event()/Stats.events shim was removed: the
    # tracer (and, when armed, the flight recorder) are the only event
    # sinks, so nothing double-records
    assert not hasattr(stats, "event")
    assert not hasattr(stats, "events")
    assert stats.recorder is None  # recording is strictly opt-in
