"""Typechecker tests: fork / RT fork (Sections 2.2 / 2.3)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402

SHARED = """
regionKind Shared extends SharedRegion {
    Sub : LT(512) RT rtwork;
    Sub : VT NoRT scratch;
}
regionKind Sub extends SharedRegion { }
class Worker<Shared r> {
    void run(RHandle<r> h) accesses r { int x = 1; }
    void heapy(RHandle<r> h) accesses r, heap { int x = 1; }
    void rt(RHandle<r> h) accesses r, RT {
        (RHandle<Sub r2> h2 = h.rtwork) { int x = 1; }
    }
}
"""


class TestFork:
    def test_fork_into_shared_region(self):
        assert_well_typed(SHARED +
                          "(RHandle<Shared r> h) {"
                          "  fork (new Worker<r>).run(h);"
                          "}")

    def test_fork_on_heap_owned_receiver(self):
        assert_well_typed(
            "class W<Owner o> { void go() accesses o { } }\n"
            "{ fork (new W<heap>).go(); }")

    def test_fork_cannot_pass_local_region_objects(self):
        # objects in local regions cannot escape to another thread
        assert_rejected(
            "class W<Owner o> { void go() accesses o { } }\n"
            "(RHandle<r> h) { fork (new W<r>).go(); }",
            rule="EXPR FORK")

    def test_fork_cannot_run_inside_local_region(self):
        assert_rejected(
            SHARED +
            "class M<Shared s> {"
            "  void go(RHandle<s> hs) accesses s, heap {"
            "    (RHandle<r> h) {"
            "      fork (new Worker<s>).run(hs);"
            "    }"
            "  }"
            "}",
            rule="EXPR FORK")

    def test_fork_target_cannot_have_rt_effect(self):
        assert_rejected(SHARED +
                        "(RHandle<Shared r> h) {"
                        "  fork (new Worker<r>).rt(h);"
                        "}",
                        rule="EXPR FORK")

    def test_fork_explicit_owner_args_checked(self):
        assert_rejected(
            "class W<Owner o> {"
            "  void go<Owner p>() accesses o, p { }"
            "}\n"
            "(RHandle<r> h) {"
            "  W<heap> w = new W<heap>;"
            "  fork w.go<r>();"   # r is a local region
            "}",
            rule="EXPR FORK")


class TestRTFork:
    def test_rt_fork_into_lt_shared_region(self):
        assert_well_typed(SHARED +
                          "(RHandle<Shared : LT(8192) r> h) {"
                          "  RT fork (new Worker<r>).rt(h);"
                          "}")

    def test_rt_fork_requires_lt_region_effects(self):
        # the mission region is VT by default -> unbounded allocation
        assert_rejected(SHARED +
                        "(RHandle<Shared r> h) {"
                        "  RT fork (new Worker<r>).rt(h);"
                        "}",
                        rule="EXPR RTFORK")

    def test_rt_fork_target_cannot_touch_heap(self):
        assert_rejected(SHARED +
                        "(RHandle<Shared : LT(8192) r> h) {"
                        "  RT fork (new Worker<r>).heapy(h);"
                        "}",
                        rule="EXPR RTFORK")

    def test_rt_fork_cannot_receive_heap_owned_receiver(self):
        assert_rejected(
            "class W<Owner o> { void go() accesses RT { } }\n"
            "regionKind Shared extends SharedRegion { }\n"
            "(RHandle<Shared : LT(1024) r> h) {"
            "  RT fork (new W<heap>).go();"
            "}",
            rule="EXPR RTFORK")

    def test_rt_fork_from_main_inside_shared_region(self):
        assert_well_typed(SHARED +
                          "(RHandle<Shared : LT(8192) r> h) {"
                          "  RT fork (new Worker<r>).run(h);"
                          "}")

    def test_rt_fork_outside_shared_region_rejected(self):
        # main's current region is the heap: RT fork must happen inside a
        # shared region
        assert_rejected(
            "regionKind Shared extends SharedRegion { }\n"
            "class W<Owner o> { void go() { } }\n"
            "{ RT fork (new W<heap>).go(); }",
            rule="EXPR RTFORK")

    def test_rt_fork_inside_method_is_conservative(self):
        # a method's initialRegion has opaque kind `Region`, so the
        # checker cannot prove the current region is shared and must
        # reject — RT forks happen lexically inside the region creation
        # scope (as in every paper example)
        assert_rejected(
            SHARED +
            "class Launcher<Shared : LT s> {"
            "  void launch(RHandle<s> hs) accesses s, RT {"
            "    RT fork (new Worker<s>).run(hs);"
            "  }"
            "}",
            rule="EXPR RTFORK")
