"""Unit tests for the simulated memory areas (LT/VT policies, the flush
rule, the runtime outlives relation)."""

import pytest

from repro.errors import OutOfRegionMemoryError
from repro.rtsj.objects import ObjRef, make_array
from repro.rtsj.regions import LT, VT, MemoryArea, RegionManager


def fresh_obj(area, fields=("a", "b")):
    return ObjRef("C", (area,), fields, area)


@pytest.fixture
def mgr():
    return RegionManager()


class TestAllocation:
    def test_lt_budget_respected(self, mgr):
        area = mgr.create("r", "LocalRegion", LT, lt_budget=100,
                          ancestors=set())
        obj = fresh_obj(area)           # 16 + 2*8 = 32 bytes
        area.allocate(obj)
        assert area.bytes_used == 32

    def test_lt_overflow_raises(self, mgr):
        area = mgr.create("r", "LocalRegion", LT, lt_budget=40,
                          ancestors=set())
        area.allocate(fresh_obj(area))
        with pytest.raises(OutOfRegionMemoryError):
            area.allocate(fresh_obj(area))

    def test_vt_grows_in_chunks(self, mgr):
        area = mgr.create("r", "LocalRegion", VT, lt_budget=0,
                          ancestors=set())
        chunks = area.allocate(fresh_obj(area))
        assert chunks == 1              # first chunk acquired
        chunks = area.allocate(fresh_obj(area))
        assert chunks == 0              # fits in the same chunk
        big = ObjRef("Big", (area,), tuple(f"f{i}" for i in range(600)),
                     area)
        assert area.allocate(big) >= 1  # spills into fresh chunks

    def test_allocation_in_dead_region_raises(self, mgr):
        area = mgr.create("r", "LocalRegion", VT, 0, set())
        area.destroy()
        with pytest.raises(OutOfRegionMemoryError):
            area.allocate(fresh_obj(area))

    def test_array_bytes(self, mgr):
        area = mgr.create("r", "LocalRegion", VT, 0, set())
        arr = make_array("IntArray", (area,), area, 10)
        assert arr.size_bytes == 16 + 80

    def test_peak_bytes_tracked(self, mgr):
        area = mgr.create("r", "LocalRegion", LT, 1000, set())
        area.allocate(fresh_obj(area))
        area.allocate(fresh_obj(area))
        peak = area.peak_bytes
        area.flush()
        assert area.peak_bytes == peak
        assert area.bytes_used == 0


class TestFlush:
    def test_flush_invalidates_objects(self, mgr):
        area = mgr.create("r", "LocalRegion", LT, 100, set())
        obj = fresh_obj(area)
        area.allocate(obj)
        assert obj.alive
        area.flush()
        assert not obj.alive

    def test_lt_flush_keeps_budget(self, mgr):
        # "flushing the region simply resets a pointer, and, importantly,
        # does not free the memory allocated for the region"
        area = mgr.create("r", "K", LT, 64, set())
        area.allocate(fresh_obj(area))
        area.flush()
        assert area.lt_budget == 64
        area.allocate(fresh_obj(area))  # reusable without allocation
        assert area.bytes_used == 32

    def test_vt_flush_returns_chunks(self, mgr):
        area = mgr.create("r", "K", VT, 0, set())
        area.allocate(fresh_obj(area))
        assert area.chunks >= 1
        area.flush()
        assert area.chunks == 0

    def test_destroy_kills_region(self, mgr):
        area = mgr.create("r", "K", VT, 0, set())
        obj = fresh_obj(area)
        area.allocate(obj)
        freed = area.destroy()
        assert freed == 1
        assert not area.live
        assert not obj.alive


class TestFlushRule:
    """Section 2.2: flush when counter == 0, portals null, subregions
    flushed."""

    def test_fresh_area_can_flush(self, mgr):
        area = mgr.create("r", "K", LT, 64, set())
        assert area.can_flush()

    def test_positive_count_blocks_flush(self, mgr):
        area = mgr.create("r", "K", LT, 64, set())
        area.thread_count = 1
        assert not area.can_flush()

    def test_nonnull_portal_blocks_flush(self, mgr):
        area = mgr.create("r", "K", LT, 100, set())
        area.portals = {"f": None}
        obj = fresh_obj(area)
        area.allocate(obj)
        area.portals["f"] = obj
        assert not area.can_flush()
        area.portals["f"] = None
        assert area.can_flush()

    def test_unflushed_subregion_blocks_flush(self, mgr):
        parent = mgr.create("p", "K", VT, 0, set())
        child = mgr.create("p.c", "K2", LT, 100, set(), parent=parent)
        parent.subregions = {"c": child}
        child.allocate(fresh_obj(child))
        assert not parent.can_flush()
        child.flush()
        assert parent.can_flush()


class TestRuntimeOutlives:
    def test_heap_immortal_outlive_all(self, mgr):
        area = mgr.create("r", "K", VT, 0, set())
        assert mgr.heap.outlives(area)
        assert mgr.immortal.outlives(area)
        assert not area.outlives(mgr.heap)

    def test_creation_ancestry(self, mgr):
        outer = mgr.create("outer", "K", VT, 0, set())
        inner = mgr.create("inner", "K", VT, 0,
                           outer.ancestor_ids | {outer.area_id})
        assert outer.outlives(inner)
        assert not inner.outlives(outer)

    def test_subregion_parent_outlives(self, mgr):
        parent = mgr.create("p", "K", VT, 0, set())
        child = mgr.create("p.c", "K2", VT, 0, set(), parent=parent)
        assert parent.outlives(child)
        assert not child.outlives(parent)

    def test_reflexive(self, mgr):
        area = mgr.create("r", "K", VT, 0, set())
        assert area.outlives(area)

    def test_siblings_unrelated(self, mgr):
        a = mgr.create("a", "K", VT, 0, set())
        b = mgr.create("b", "K", VT, 0, set())
        assert not a.outlives(b)
        assert not b.outlives(a)

    def test_ancestry_distance(self, mgr):
        outer = mgr.create("outer", "K", VT, 0, set())
        inner = mgr.create("inner", "K", VT, 0,
                           outer.ancestor_ids | {outer.area_id})
        assert inner.ancestry_distance(inner) == 0
        assert outer.ancestry_distance(inner) >= 1
        assert mgr.heap.ancestry_distance(inner) >= 1

    def test_generation_distinguishes_incarnations(self, mgr):
        area = mgr.create("r", "K", LT, 100, set())
        obj = fresh_obj(area)
        area.allocate(obj)
        area.flush()
        newer = fresh_obj(area)
        area.allocate(newer)
        assert not obj.alive
        assert newer.alive
