"""Unit tests for source positions/spans and the error hierarchy."""

import pytest

from repro.errors import (DeadlockError, IllegalAssignmentError,
                          InferenceError, InterpreterError, LexError,
                          MemoryAccessError, OutOfRegionMemoryError,
                          OwnershipTypeError, ParseError,
                          RealtimeViolationError, ReproError,
                          RuntimeCheckError, ScopedCycleError,
                          SimulatedNullPointerError, StaticError)
from repro.source import Position, Span, excerpt


class TestSpans:
    def test_str_formats(self):
        span = Span(Position(3, 7), Position(3, 12), "file.rtj")
        assert str(span) == "file.rtj:3:7"
        assert str(Position(1, 1)) == "1:1"

    def test_merge_covers_both(self):
        a = Span(Position(2, 5), Position(2, 9), "f")
        b = Span(Position(4, 1), Position(4, 3), "f")
        merged = a.merge(b)
        assert merged.start == Position(2, 5)
        assert merged.end == Position(4, 3)

    def test_merge_is_commutative_on_extent(self):
        a = Span(Position(2, 5), Position(2, 9), "f")
        b = Span(Position(4, 1), Position(4, 3), "f")
        assert a.merge(b).start == b.merge(a).start
        assert a.merge(b).end == b.merge(a).end

    def test_unknown_span(self):
        assert Span.unknown().start.line == 0

    def test_excerpt(self):
        text = "line one\nline two\nline three"
        span = Span(Position(2, 1), Position(2, 8))
        assert excerpt(text, span) == "line two"
        assert "line one" in excerpt(text, span, context=1)


class TestErrorHierarchy:
    def test_static_errors_are_repro_errors(self):
        for cls in (LexError, ParseError, OwnershipTypeError,
                    InferenceError):
            assert issubclass(cls, StaticError)
            assert issubclass(cls, ReproError)

    def test_runtime_check_errors(self):
        for cls in (IllegalAssignmentError, MemoryAccessError,
                    ScopedCycleError, OutOfRegionMemoryError,
                    RealtimeViolationError):
            assert issubclass(cls, RuntimeCheckError)
            assert issubclass(cls, ReproError)

    def test_interpreter_errors(self):
        assert issubclass(SimulatedNullPointerError, InterpreterError)
        assert issubclass(DeadlockError, ReproError)

    def test_static_error_carries_span_and_rule(self):
        span = Span(Position(5, 2), Position(5, 9), "x.rtj")
        err = OwnershipTypeError("bad", span, rule="EXPR NEW")
        assert err.rule == "EXPR NEW"
        assert "x.rtj:5:2" in str(err)
        assert "[EXPR NEW]" in str(err)

    def test_static_error_without_span(self):
        err = StaticError("oops")
        assert str(err) == "oops"
        assert err.span is None

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise IllegalAssignmentError("x")
        with pytest.raises(ReproError):
            raise ParseError("y")


class TestBenchSuiteModule:
    def test_get_benchmark(self):
        from repro.bench.suite import get_benchmark
        bench = get_benchmark("Array")
        assert bench.paper_overhead == 7.23
        with pytest.raises(KeyError):
            get_benchmark("Nope")

    def test_benchmark_source_params(self):
        from repro.bench.suite import get_benchmark
        bench = get_benchmark("Array")
        fast = bench.source(fast=True)
        custom = bench.source(n=7)
        assert "run(40)" in fast      # FAST_PARAMS n=40
        assert "run(7)" in custom

    def test_all_benchmarks_declare_paper_numbers(self):
        from repro.bench.suite import BENCHMARKS
        for bench in BENCHMARKS.values():
            assert bench.paper_loc > 0
            assert bench.paper_lines_changed > 0
            assert bench.kind in ("micro", "scientific", "pipeline",
                                  "server")

    def test_bench_main_fast(self, capsys):
        from repro.bench.__main__ import main
        assert main(["--fast", "--only", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Array" in out
