"""Unit coverage for the request-tracing plane (``repro-trace/1``).

Four contracts pinned here:

* the **wire context** round-trips and malformed headers degrade to a
  fresh context, never a rejection;
* **self-time accounting** — per-trace self-times sum to the root
  span's duration by construction, so the critical-path table always
  accounts for 100% of measured latency;
* **tail-based sampling** is deterministic (counter-based, no RNG) and
  never drops an error/faulted/degraded trace;
* **exemplars** survive the Prometheus text round-trip: the exporter
  renders OpenMetrics-style ``# {trace_id=...}`` suffixes and the
  parser tolerates them.

The concurrent scrape-under-load test at the bottom pins the metrics
satellite: a histogram snapshot taken mid-burst must be internally
consistent (buckets, sum, and count from one instant), which is
exactly the race ``_HistogramChild.snapshot()`` exists to close.
"""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro.obs.exporters import parse_prometheus, to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (RequestTrace, TraceBuffer, analyze_traces,
                             dump_traces, end_span, instant_span,
                             load_traces, new_span_id, new_trace_id,
                             queue_compute_ms, render_report_html,
                             render_report_text, render_trace_text,
                             self_times, span_tree, start_span,
                             validate_trace)
from repro.serve.protocol import (TRACE_HEADER, admit_trace,
                                  format_traceparent, parse_traceparent)


class TestWireContext:

    def test_format_parse_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_traceparent(trace_id, span_id)
        parsed = parse_traceparent(header)
        assert parsed == (trace_id, span_id, True)

    def test_sampled_bit_round_trips(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_traceparent(trace_id, span_id, sampled=False)
        assert parse_traceparent(header)[2] is False

    @pytest.mark.parametrize("bad", [
        "", "garbage", "repro-trace/2;trace=00;span=00;sampled=1",
        "repro-trace/1;trace=xyz;span=00;sampled=1",
        "repro-trace/1;span=" + "0" * 16 + ";sampled=1",
        "repro-trace/1;trace=" + "0" * 31 + ";span="
        + "0" * 16 + ";sampled=1",                  # short trace id
    ])
    def test_malformed_headers_parse_to_none(self, bad):
        assert parse_traceparent(bad) is None

    def test_missing_or_bad_span_keeps_the_trace_id(self):
        # a sound trace id with a missing/short span still correlates
        # the request; only the parent link is dropped
        tid = new_trace_id()
        assert parse_traceparent(
            f"repro-trace/1;trace={tid}") == (tid, None, True)
        assert parse_traceparent(
            f"repro-trace/1;trace={tid};span=short") == (tid, None,
                                                         True)

    def test_admit_trace_mints_on_absent_or_malformed(self):
        trace_id, parent, sampled = admit_trace(None)
        assert len(trace_id) == 32 and parent is None and sampled
        trace_id2, parent2, _ = admit_trace("not-a-header")
        assert len(trace_id2) == 32 and parent2 is None
        assert trace_id != trace_id2

    def test_admit_trace_adopts_a_valid_context(self):
        tid, sid = new_trace_id(), new_span_id()
        assert admit_trace(format_traceparent(tid, sid)) == (tid, sid,
                                                             True)

    def test_trace_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64

    def test_header_name_is_stable(self):
        # the wire contract the client and CI smoke both rely on
        assert TRACE_HEADER == "X-Repro-Trace"


class TestSpans:

    def test_end_span_is_idempotent(self):
        span = start_span("x", "test")
        end_span(span, first=True)
        first_end = span["end"]
        time.sleep(0.001)
        end_span(span, second=True)
        assert span["end"] == first_end
        assert span["attrs"] == {"first": True, "second": True}

    def test_instant_span_has_zero_duration(self):
        span = instant_span("cache-hot", "frontend", tier="frontend")
        assert span["end"] == span["start"]
        assert span["attrs"] == {"tier": "frontend"}


def _finished_trace(status=200, flags=(), children_ms=(1.0, 2.0)):
    """A small, sound trace record with known span structure."""
    rt = RequestTrace(new_trace_id(), "run")
    for i, _ms in enumerate(children_ms):
        span = rt.begin("admission" if i == 0 else "analyze")
        rt.end(span)
    for flag in flags:
        rt.flag(flag)
    return rt.finish(status)


class TestRequestTrace:

    def test_finish_produces_a_sound_record(self):
        record = _finished_trace()
        assert record["schema"] == "repro-trace/1"
        assert record["status"] == 200
        assert record["endpoint"] == "run"
        assert validate_trace(record) == []

    def test_unclosed_spans_are_truncated_at_finish(self):
        rt = RequestTrace(new_trace_id(), "run")
        rt.begin("admission")  # never ended
        record = rt.finish(500)
        assert validate_trace(record) == []
        (leaked,) = [s for s in record["spans"]
                     if s["name"] == "admission"]
        assert leaked["attrs"].get("truncated") is True

    def test_adopted_spans_join_the_tree(self):
        rt = RequestTrace(new_trace_id(), "run")
        pool = start_span("queue-wait", "pool",
                          parent=rt.root["span"])
        worker = start_span("analyze", "worker", parent=pool["span"])
        end_span(worker)
        end_span(pool)
        rt.adopt([pool, worker])
        record = rt.finish(200)
        assert validate_trace(record) == []
        tree = span_tree(record)
        assert [s["name"] for s in tree[pool["span"]]] == ["analyze"]

    def test_flags_deduplicate(self):
        rt = RequestTrace(new_trace_id(), "run")
        rt.flag("degraded")
        rt.flag("degraded")
        assert rt.finish(200)["flags"] == ["degraded"]


class TestValidation:

    def test_orphan_span_is_a_problem(self):
        record = _finished_trace()
        record["spans"].append(
            {"name": "lost", "span": new_span_id(),
             "parent": "feedfeedfeedfeed", "process": "pool",
             "start": 0.0, "end": 1.0, "attrs": {}})
        problems = validate_trace(record)
        assert any("orphan" in p for p in problems)

    def test_unended_span_is_a_problem(self):
        record = _finished_trace()
        record["spans"][1] = dict(record["spans"][1], end=None)
        assert any("never ended" in p
                   for p in validate_trace(record))

    def test_external_root_parent_is_allowed(self):
        # the root's parent is the client's attempt span — external by
        # design, never an orphan
        rt = RequestTrace(new_trace_id(), "run", parent=new_span_id())
        assert validate_trace(rt.finish(200)) == []


class TestSelfTime:

    def test_self_times_sum_to_root_duration(self):
        record = _finished_trace(children_ms=(1.0, 2.0, 3.0))
        total = sum(self_times(record).values())
        assert total == pytest.approx(record["duration_s"], abs=1e-9)

    def test_child_time_is_subtracted_from_parent(self):
        rt = RequestTrace(new_trace_id(), "run")
        child = rt.begin("analyze")
        time.sleep(0.005)
        rt.end(child)
        record = rt.finish(200)
        selfs = self_times(record)
        root_self = selfs[record["root"]]
        child_self = selfs[child["span"]]
        assert child_self >= 0.004
        assert root_self == pytest.approx(
            record["duration_s"] - child_self, abs=1e-9)

    def test_queue_compute_decomposition(self):
        rt = RequestTrace(new_trace_id(), "run")
        q = rt.begin("queue-wait")
        time.sleep(0.004)
        rt.end(q)
        c = rt.begin("execute")
        time.sleep(0.004)
        rt.end(c)
        record = rt.finish(200)
        queue_ms, compute_ms = queue_compute_ms(record)
        assert queue_ms >= 3.0 and compute_ms >= 3.0
        assert queue_ms + compute_ms <= record["duration_s"] * 1e3 + 1e-6


class TestTailSampling:

    def test_counter_sampling_is_deterministic(self):
        buf = TraceBuffer(sample=4)
        decisions = [buf.offer(_finished_trace())[0]
                     for _ in range(12)]
        # retained when seen % 4 == 1: arrivals 1, 5, 9
        assert decisions == [True, False, False, False] * 3

    def test_sample_one_retains_everything(self):
        buf = TraceBuffer(sample=1)
        assert all(buf.offer(_finished_trace())[0]
                   for _ in range(8))

    @pytest.mark.parametrize("record,reason", [
        (lambda: _finished_trace(status=429), "error"),
        (lambda: _finished_trace(status=500), "error"),
        (lambda: _finished_trace(flags=("requeued",)), "faulted"),
        (lambda: _finished_trace(flags=("faulted",)), "faulted"),
        (lambda: _finished_trace(flags=("degraded",)), "degraded"),
        (lambda: _finished_trace(flags=("shed",)), "degraded"),
    ])
    def test_interesting_traces_always_survive(self, record, reason):
        buf = TraceBuffer(sample=1000)
        buf.offer(_finished_trace())  # burn the counter's first slot
        for _ in range(5):
            retained, why = buf.offer(record())
            assert retained and why == reason

    def test_slow_tail_retained_after_warmup(self):
        buf = TraceBuffer(sample=1000)
        fast = _finished_trace()
        fast["duration_s"] = 0.001
        for _ in range(128):  # past _SLOW_MIN_SAMPLES and a refresh
            buf.offer(dict(fast))
        slow = _finished_trace()
        slow["duration_s"] = 10.0
        retained, reason = buf.offer(slow)
        assert retained and reason == "slow"

    def test_capacity_evicts_oldest_first(self):
        buf = TraceBuffer(capacity=3, sample=1)
        records = [_finished_trace() for _ in range(5)]
        for record in records:
            buf.offer(record)
        kept = [r["trace"] for r in buf.snapshot()]
        assert kept == [r["trace"] for r in records[2:]]
        assert buf.get(records[0]["trace"]) is None
        assert buf.get(records[4]["trace"]) is not None

    def test_stats_shape(self):
        buf = TraceBuffer(sample=2)
        buf.offer(_finished_trace())
        buf.offer(_finished_trace(status=500))
        stats = buf.stats()
        assert stats["seen"] == 2
        assert stats["retained"] == 2
        assert stats["by_reason"] == {"sampled": 1, "error": 1}


class TestAnalysis:

    def test_analyze_covers_percentiles_and_breakdown(self):
        records = [_finished_trace() for _ in range(10)]
        report = analyze_traces(records)
        assert report["traces"] == 10
        assert report["problems"] == []
        assert set(report["percentiles"]) == {"p50", "p95", "p99"}
        names = {row["span"] for row in report["overall"]["rows"]}
        assert {"request", "admission", "analyze"} <= names
        assert report["exemplars"]
        # renderers accept the report without raising
        assert "request traces" in render_report_text(report)
        html = render_report_html(report, records)
        assert html.startswith("<!doctype html>")

    def test_empty_input_is_a_clean_empty_report(self):
        report = analyze_traces([])
        assert report["traces"] == 0
        assert "no traces" in render_report_text(report)

    def test_structural_problems_are_reported(self):
        record = _finished_trace()
        record["spans"][1] = dict(record["spans"][1],
                                  parent="feedfeedfeedfeed")
        report = analyze_traces([record])
        assert report["problems"]

    def test_render_trace_text_walks_the_tree(self):
        record = _finished_trace()
        text = render_trace_text(record)
        assert record["trace"] in text
        assert "admission" in text and "self=" in text


class TestPersistence:

    def test_jsonl_round_trip(self, tmp_path):
        records = [_finished_trace() for _ in range(3)]
        path = str(tmp_path / "traces.jsonl")
        lines = dump_traces(records, path, meta={"seen": 3})
        assert lines == 4  # header + 3 records
        header, loaded = load_traces(path)
        assert header["count"] == 3
        assert header["meta"] == {"seen": 3}
        assert [r["trace"] for r in loaded] == [r["trace"]
                                                for r in records]

    def test_loads_a_saved_traces_response(self):
        records = [_finished_trace()]
        import json
        payload = json.dumps({"stats": {"seen": 1},
                              "traces": records})
        header, loaded = load_traces(io.StringIO(payload))
        assert header["count"] == 1
        assert loaded[0]["trace"] == records[0]["trace"]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_traces(io.StringIO(""))
        with pytest.raises(ValueError):
            load_traces(io.StringIO('{"not": "a dump"}'))


class TestExemplars:

    def test_exemplars_render_and_parse(self):
        registry = MetricsRegistry()
        hist = registry.histogram("req_seconds", "request latency",
                                  buckets=(0.01, 0.1, 1.0))
        trace_id = new_trace_id()
        hist.observe(0.05, exemplar=trace_id)
        hist.observe(0.5)
        text = to_prometheus(registry)
        assert f'# {{trace_id="{trace_id}"}}' in text
        _help, _types, samples = parse_prometheus(text)
        # the exemplar suffix must not confuse the parser: bucket
        # counts still parse as plain numbers
        bucket = [v for (name, labels), v in samples.items()
                  if name == "req_seconds_bucket"
                  and ("le", "0.1") in labels]
        assert bucket == [1.0]
        assert samples[("req_seconds_count", ())] == 2.0


class TestConsistentScrape:

    def test_snapshot_is_internally_consistent_under_load(self):
        """Histogram bucket counts, sum, and count must come from one
        instant: with every observation == 1.0, any snapshot where
        ``sum != count`` or ``count != sum(bucket deltas)`` is torn."""
        registry = MetricsRegistry()
        hist = registry.histogram("load_seconds", "scrape race probe",
                                  buckets=(0.5, 2.0))
        stop = threading.Event()
        torn = []

        def hammer():
            while not stop.is_set():
                hist.observe(1.0)

        def scrape():
            child = next(iter(hist.children()))[1]
            while not stop.is_set():
                counts, total_sum, count, _ex = child.snapshot()
                if total_sum != count or sum(counts) != count:
                    torn.append((counts, total_sum, count))

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        reader = threading.Thread(target=scrape)
        for t in writers:
            t.start()
        reader.start()
        time.sleep(0.3)
        stop.set()
        for t in writers + [reader]:
            t.join(timeout=10)
        assert torn == [], f"torn snapshots observed: {torn[:3]}"

    def test_full_exposition_under_load_parses_clean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("busy_seconds", "exposition probe")
        counter = registry.counter("busy_total", "exposition probe")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                hist.observe(1.0, exemplar=new_trace_id())
                counter.inc()

        writers = [threading.Thread(target=hammer) for _ in range(2)]
        for t in writers:
            t.start()
        try:
            for _ in range(20):
                _help, _types, samples = parse_prometheus(
                    to_prometheus(registry))
                count = samples.get(("busy_seconds_count", ()), 0.0)
                total = samples.get(("busy_seconds_sum", ()), 0.0)
                assert total == count, (total, count)
        finally:
            stop.set()
            for t in writers:
                t.join(timeout=10)
