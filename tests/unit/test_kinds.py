"""Unit tests for the owner-kind lattice (Figure 4) and subkinding."""

import pytest

from repro.core.kinds import (BUILTIN_KINDS, K_GC_REGION, K_IMMORTAL,
                              K_LOCAL_REGION, K_NO_GC_REGION, K_OBJ_OWNER,
                              K_OWNER, K_REGION, K_SHARED_REGION, Kind,
                              KindTable)
from repro.core.owners import Owner


@pytest.fixture
def table():
    return KindTable()


@pytest.fixture
def user_table():
    """BufferRegion <: SharedRegion, BufferSub <: BufferRegion, and a
    parameterized kind P<o> <: SharedRegion."""
    t = KindTable()
    t.supers["BufferRegion"] = ((), K_SHARED_REGION)
    t.supers["BufferSub"] = ((), Kind("BufferRegion"))
    t.supers["P"] = (("o",), K_SHARED_REGION)
    return t


class TestBuiltinLattice:
    def test_reflexivity(self, table):
        for name in BUILTIN_KINDS:
            k = Kind(name)
            assert table.is_subkind(k, k)

    def test_figure4_direct_edges(self, table):
        assert table.is_subkind(K_OBJ_OWNER, K_OWNER)
        assert table.is_subkind(K_REGION, K_OWNER)
        assert table.is_subkind(K_GC_REGION, K_REGION)
        assert table.is_subkind(K_NO_GC_REGION, K_REGION)
        assert table.is_subkind(K_LOCAL_REGION, K_NO_GC_REGION)
        assert table.is_subkind(K_SHARED_REGION, K_NO_GC_REGION)

    def test_transitivity(self, table):
        assert table.is_subkind(K_LOCAL_REGION, K_OWNER)
        assert table.is_subkind(K_SHARED_REGION, K_REGION)
        assert table.is_subkind(K_GC_REGION, K_OWNER)

    def test_non_edges(self, table):
        assert not table.is_subkind(K_OWNER, K_OBJ_OWNER)
        assert not table.is_subkind(K_REGION, K_OBJ_OWNER)
        assert not table.is_subkind(K_OBJ_OWNER, K_REGION)
        assert not table.is_subkind(K_GC_REGION, K_NO_GC_REGION)
        assert not table.is_subkind(K_LOCAL_REGION, K_SHARED_REGION)
        assert not table.is_subkind(K_SHARED_REGION, K_LOCAL_REGION)

    def test_siblings_are_unrelated(self, table):
        assert not table.is_subkind(K_GC_REGION, K_LOCAL_REGION)
        assert not table.is_subkind(K_LOCAL_REGION, K_GC_REGION)


class TestLTRefinement:
    def test_delete_lt(self, table):
        # [DELETE LT]: rkind:LT <= rkind
        assert table.is_subkind(K_SHARED_REGION.with_lt(), K_SHARED_REGION)

    def test_add_lt(self, table):
        # [ADD LT]: k1 <= k2 => k1:LT <= k2:LT
        assert table.is_subkind(K_LOCAL_REGION.with_lt(),
                                K_NO_GC_REGION.with_lt())

    def test_unrefined_is_not_subkind_of_refined(self, table):
        assert not table.is_subkind(K_SHARED_REGION,
                                    K_SHARED_REGION.with_lt())

    def test_immortal_kind_is_lt_shared(self, table):
        assert K_IMMORTAL == K_SHARED_REGION.with_lt()
        assert table.is_subkind(K_IMMORTAL, K_SHARED_REGION)


class TestUserKinds:
    def test_user_kind_below_shared(self, user_table):
        assert user_table.is_subkind(Kind("BufferRegion"), K_SHARED_REGION)
        assert user_table.is_subkind(Kind("BufferRegion"), K_REGION)

    def test_two_level_user_chain(self, user_table):
        assert user_table.is_subkind(Kind("BufferSub"),
                                     Kind("BufferRegion"))
        assert user_table.is_subkind(Kind("BufferSub"), K_SHARED_REGION)

    def test_user_kind_not_local(self, user_table):
        assert not user_table.is_subkind(Kind("BufferRegion"),
                                         K_LOCAL_REGION)

    def test_parameterized_kind_substitutes_args(self, user_table):
        k = Kind("P", (Owner("x"),))
        sup = user_table.direct_super(k)
        assert sup == K_SHARED_REGION

    def test_parameterized_kinds_with_different_args_differ(self,
                                                            user_table):
        a = Kind("P", (Owner("x"),))
        b = Kind("P", (Owner("y"),))
        assert not user_table.is_subkind(a, b)
        assert user_table.is_subkind(a, a)

    def test_lt_refined_user_kind(self, user_table):
        assert user_table.is_subkind(Kind("BufferSub", lt=True),
                                     K_SHARED_REGION.with_lt())

    def test_is_region_kind(self, user_table):
        assert user_table.is_region_kind(Kind("BufferRegion"))
        assert user_table.is_region_kind(K_GC_REGION)
        assert not user_table.is_region_kind(K_OBJ_OWNER)
        assert not user_table.is_region_kind(K_OWNER)

    def test_is_shared_kind(self, user_table):
        assert user_table.is_shared_kind(Kind("BufferSub"))
        assert not user_table.is_shared_kind(K_LOCAL_REGION)

    def test_lineage(self, user_table):
        names = [k.name for k in user_table.lineage(Kind("BufferSub"))]
        assert names == ["BufferSub", "BufferRegion", "SharedRegion",
                         "NoGCRegion", "Region", "Owner"]


class TestKindValue:
    def test_substitute(self):
        k = Kind("P", (Owner("a"), Owner("b")))
        out = k.substitute({Owner("a"): Owner("x")})
        assert out.args == (Owner("x"), Owner("b"))

    def test_substitute_no_args_is_identity(self):
        assert K_REGION.substitute({Owner("a"): Owner("x")}) is K_REGION

    def test_str(self):
        assert str(Kind("P", (Owner("a"),), lt=True)) == "P<a>:LT"
        assert str(K_REGION) == "Region"

    def test_strip_and_with_lt(self):
        k = K_SHARED_REGION.with_lt()
        assert k.lt
        assert not k.strip_lt().lt
