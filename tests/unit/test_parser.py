"""Unit tests for the parser (grammar of Figures 3, 7, 9 and 13)."""

import pytest

from repro.errors import ParseError
from repro.lang import ast, parse_program, pretty_program


def parse_expr(text):
    program = parse_program(f"{{ int x = {text}; }}")
    decl = program.main.stmts[0].stmts[0]
    return decl.init


def parse_stmt(text):
    program = parse_program(f"{{ {text} }}")
    return program.main.stmts[0].stmts[0]


class TestClassDeclarations:
    def test_minimal_class(self):
        p = parse_program("class C<Owner o> { }")
        assert p.classes[0].name == "C"
        assert p.classes[0].formals[0].name == "o"
        assert p.classes[0].formals[0].kind.name == "Owner"

    def test_class_without_formals(self):
        p = parse_program("class C { int x; }")
        assert p.classes[0].formals == []

    def test_multiple_formals_with_kinds(self):
        p = parse_program(
            "class C<Owner a, Region r, LocalRegion s> { }")
        kinds = [f.kind.name for f in p.classes[0].formals]
        assert kinds == ["Owner", "Region", "LocalRegion"]

    def test_user_region_kind_formal(self):
        p = parse_program(
            "regionKind K extends SharedRegion { } class C<K r> { }")
        assert p.classes[0].formals[0].kind.name == "K"

    def test_extends_clause(self):
        p = parse_program(
            "class A<Owner o> { } class B<Owner o> extends A<o> { }")
        assert p.classes[1].superclass.name == "A"
        assert p.classes[1].superclass.owners[0].name == "o"

    def test_where_clause(self):
        p = parse_program(
            "class C<Owner a, Owner b> where a owns b, a outlives b { }")
        constraints = p.classes[0].constraints
        assert constraints[0].relation == "owns"
        assert constraints[1].relation == "outlives"
        assert constraints[1].left.name == "a"

    def test_field_with_initializer(self):
        p = parse_program("class C<Owner o> { C<o> f = null; int n = 3; }")
        fields = p.classes[0].fields
        assert isinstance(fields[0].init, ast.NullLit)
        assert isinstance(fields[1].init, ast.IntLit)

    def test_static_field(self):
        p = parse_program("class C<Owner o> { static int counter; }")
        assert p.classes[0].fields[0].static


class TestMethodDeclarations:
    def test_method_with_params(self):
        p = parse_program(
            "class C<Owner o> { int m(int a, C<o> b) { return a; } }")
        meth = p.classes[0].methods[0]
        assert meth.name == "m"
        assert len(meth.params) == 2

    def test_method_with_owner_formals(self):
        p = parse_program(
            "class C<Owner o> { void m<Region r>(RHandle<r> h) { } }")
        meth = p.classes[0].methods[0]
        assert meth.formals[0].name == "r"
        assert meth.formals[0].kind.name == "Region"

    def test_accesses_clause(self):
        p = parse_program(
            "class C<Owner o> { void m() accesses o, heap, RT { } }")
        effects = [o.name for o in p.classes[0].methods[0].effects]
        assert effects == ["o", "heap", "RT"]

    def test_missing_accesses_clause_is_none(self):
        p = parse_program("class C<Owner o> { void m() { } }")
        assert p.classes[0].methods[0].effects is None

    def test_method_where_clause(self):
        p = parse_program(
            "class C<Owner o> { void m<Owner p>() where p outlives o { } }")
        assert p.classes[0].methods[0].constraints[0].relation == "outlives"


class TestRegionKinds:
    def test_portal_fields_and_subregions(self):
        p = parse_program("""
            regionKind Buf extends SharedRegion {
                Frame<this> f;
                Sub : LT(256) RT inner;
                Sub : VT NoRT outer;
            }
            regionKind Sub extends SharedRegion { }
            class Frame<Owner o> { }
        """)
        buf = p.region_kinds[0]
        assert list(f.name for f in buf.portals) == ["f"]
        assert buf.subregions[0].name == "inner"
        assert buf.subregions[0].policy.kind == "LT"
        assert buf.subregions[0].policy.size == 256
        assert buf.subregions[0].realtime
        assert buf.subregions[1].policy.kind == "VT"
        assert not buf.subregions[1].realtime

    def test_bare_subregion_parses_as_field_then_reclassified(self):
        # `Sub b;` is ambiguous at parse time; the semantic tables turn it
        # into a subregion with default VT/NoRT
        p = parse_program("""
            regionKind Buf extends SharedRegion { Sub b; }
            regionKind Sub extends SharedRegion { }
        """)
        from repro.core.program import build_program_info
        info = build_program_info(p)
        buf = info.region_kinds["Buf"]
        assert "b" in buf.subregions
        assert buf.subregions["b"].policy.kind == "VT"

    def test_region_kind_with_formals(self):
        p = parse_program("""
            regionKind K<Owner o> extends SharedRegion { T<o> portal; }
            class T<Owner o> { }
        """)
        assert p.region_kinds[0].formals[0].name == "o"


class TestStatements:
    def test_local_decl_with_owners(self):
        stmt = parse_stmt("C<r1, heap> x = null;")
        assert isinstance(stmt, ast.LocalDecl)
        assert stmt.declared_type.owners[1].name == "heap"

    def test_local_decl_without_owners(self):
        stmt = parse_stmt("C x;")
        assert isinstance(stmt, ast.LocalDecl)
        assert stmt.declared_type.owners == ()

    def test_assignment_vs_decl_disambiguation(self):
        stmt = parse_stmt("x = y;")
        assert isinstance(stmt, ast.AssignLocal)

    def test_field_assignment(self):
        stmt = parse_stmt("a.b = c;")
        assert isinstance(stmt, ast.AssignField)
        assert stmt.field_name == "b"

    def test_chained_field_assignment(self):
        stmt = parse_stmt("a.b.c = d;")
        assert isinstance(stmt, ast.AssignField)
        assert isinstance(stmt.target, ast.FieldRead)

    def test_comparison_is_not_parsed_as_owner_args(self):
        stmt = parse_stmt("boolean b = x.size < y;")
        assert isinstance(stmt.init, ast.Binary)
        assert stmt.init.op == "<"

    def test_owner_instantiated_call(self):
        stmt = parse_stmt("x.m<r1, heap>(y);")
        call = stmt.expr
        assert isinstance(call, ast.Invoke)
        assert [o.name for o in call.owner_args] == ["r1", "heap"]

    def test_if_else_chain(self):
        stmt = parse_stmt("if (a) { } else if (b) { } else { }")
        assert isinstance(stmt, ast.If)
        nested = stmt.else_body.stmts[0]
        assert isinstance(nested, ast.If)

    def test_while(self):
        stmt = parse_stmt("while (x < 3) { x = x + 1; }")
        assert isinstance(stmt, ast.While)

    def test_return_void_and_value(self):
        assert parse_stmt("return;").value is None
        assert isinstance(parse_stmt("return 4;").value, ast.IntLit)

    def test_fork(self):
        stmt = parse_stmt("fork x.run(h);")
        assert isinstance(stmt, ast.Fork)
        assert not stmt.realtime

    def test_rt_fork(self):
        stmt = parse_stmt("RT fork x.run(h);")
        assert stmt.realtime

    def test_fork_requires_invocation(self):
        with pytest.raises(ParseError):
            parse_stmt("fork x;")


class TestRegionStatements:
    def test_plain_local_region(self):
        stmt = parse_stmt("(RHandle<r> h) { }")
        assert isinstance(stmt, ast.RegionStmt)
        assert stmt.kind is None
        assert stmt.region_name == "r"
        assert stmt.handle_name == "h"

    def test_region_with_kind(self):
        stmt = parse_stmt("(RHandle<Buf r> h) { }")
        assert stmt.kind.name == "Buf"

    def test_region_with_kind_and_lt_policy(self):
        stmt = parse_stmt("(RHandle<Buf : LT(4096) r> h) { }")
        assert stmt.policy.kind == "LT"
        assert stmt.policy.size == 4096

    def test_region_with_vt_policy(self):
        stmt = parse_stmt("(RHandle<LocalRegion : VT r> h) { }")
        assert stmt.policy.kind == "VT"

    def test_subregion_entry(self):
        stmt = parse_stmt("(RHandle<Sub r2> h2 = h.b) { }")
        assert isinstance(stmt, ast.SubregionStmt)
        assert stmt.subregion_name == "b"
        assert not stmt.fresh

    def test_fresh_subregion_entry(self):
        stmt = parse_stmt("(RHandle<Sub r2> h2 = new h.b) { }")
        assert stmt.fresh

    def test_subregion_without_kind_annotation(self):
        stmt = parse_stmt("(RHandle<r2> h2 = h.b) { }")
        assert isinstance(stmt, ast.SubregionStmt)
        assert stmt.declared_kind is None


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_comparison_over_and(self):
        e = parse_expr("a < b && c > d")
        assert e.op == "&&"

    def test_unary_minus_and_not(self):
        e = parse_expr("-x")
        assert isinstance(e, ast.Unary)
        program = parse_program("{ boolean b = !a; }")
        assert program.main.stmts[0].stmts[0].init.op == "!"

    def test_parenthesized(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_new_with_owners(self):
        e = parse_expr("new C<r, this>")
        assert isinstance(e, ast.NewExpr)
        assert [o.name for o in e.owners] == ["r", "this"]

    def test_new_without_owners(self):
        e = parse_expr("new C")
        assert e.owners == ()

    def test_new_array_with_length(self):
        e = parse_expr("new IntArray<r>(10)")
        assert len(e.args) == 1

    def test_builtin_calls(self):
        for name in ("print", "io", "yieldnow", "sqrt", "itof", "ftoi",
                     "check"):
            program = parse_program(f"{{ {name}(); }}")
            call = program.main.stmts[0].stmts[0].expr
            assert isinstance(call, ast.BuiltinCall)
            assert call.name == name

    def test_this(self):
        e = parse_expr("this")
        assert isinstance(e, ast.ThisRef)

    def test_chained_calls_and_fields(self):
        e = parse_expr("a.b.m(1).c")
        assert isinstance(e, ast.FieldRead)
        assert isinstance(e.target, ast.Invoke)

    def test_special_owners(self):
        e = parse_expr("new C<heap, immortal, initialRegion>")
        assert [o.name for o in e.owners] == ["heap", "immortal",
                                              "initialRegion"]


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "class { }",
        "class C<> { }",
        "class C<Owner o> { int }",
        "{ int x = ; }",
        "{ if x { } }",
        "{ (RHandle<r>) { } }",
        "{ 3 = x; }",
        "class C<Owner o> extends { }",
    ])
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_program(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("class C<Owner o> {\n  int = 3;\n}")
        assert exc.value.span.start.line == 2


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        "class C<Owner o> { int x; }",
        "class C<Owner a, Owner b> where a owns b { C<a, b> f; }",
        "regionKind K extends SharedRegion { Sub : LT(64) RT s; }\n"
        "regionKind Sub extends SharedRegion { }",
        "{ (RHandle<Buf : LT(128) r> h) { int x = 1 + 2 * 3; } }",
        "{ RT fork x.go<r>(1, true, null); }",
        "class C<Owner o> { void m() accesses o, RT { return; } }",
    ])
    def test_pretty_parse_fixpoint(self, source):
        first = pretty_program(parse_program(source))
        second = pretty_program(parse_program(first))
        assert first == second
