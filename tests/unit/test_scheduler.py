"""Unit tests for the deterministic cooperative scheduler."""

import pytest

from repro.errors import DeadlockError, InterpreterError
from repro.rtsj.regions import VT, RegionManager
from repro.rtsj.stats import Stats
from repro.rtsj.threads import Scheduler, SimThread, YIELD


def costs(*values):
    """A coroutine charging the given costs."""
    def gen():
        for value in values:
            yield value
    return gen()


class TestBasicScheduling:
    def test_single_thread_runs_to_completion(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=100)
        sched.spawn(SimThread("t", costs(10, 20, 30)))
        sched.run()
        assert stats.cycles == 60
        assert stats.cycles_by_thread["t"] == 60

    def test_round_robin_between_threads(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=15)
        order = []

        def tracked(name, slices):
            for _ in range(slices):
                order.append(name)
                yield 10
                yield YIELD

        sched.spawn(SimThread("a", tracked("a", 3)))
        sched.spawn(SimThread("b", tracked("b", 3)))
        sched.run()
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_quantum_preempts_long_slices(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=25)
        order = []

        def greedy(name):
            for _ in range(4):
                order.append(name)
                yield 20

        sched.spawn(SimThread("a", greedy("a")))
        sched.spawn(SimThread("b", greedy("b")))
        sched.run()
        # quantum 25 = two 20-cycle ops per slice
        assert order == ["a", "a", "b", "b"] * 2

    def test_realtime_threads_run_first(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=100)
        order = []

        def tracked(name):
            order.append(name)
            yield 5

        sched.spawn(SimThread("regular", tracked("regular")))
        sched.spawn(SimThread("rt", tracked("rt"), realtime=True))
        sched.run()
        assert order == ["rt", "regular"]

    def test_max_cycles_guard(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=100, max_cycles=500)

        def forever():
            while True:
                yield 10

        sched.spawn(SimThread("loop", forever()))
        with pytest.raises(DeadlockError):
            sched.run()

    def test_thread_failure_propagates(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=100)

        def boom():
            yield 5
            raise InterpreterError("bang")

        sched.spawn(SimThread("bad", boom()))
        with pytest.raises(InterpreterError):
            sched.run()


class TestThreadExitSemantics:
    def test_dying_thread_releases_shared_regions(self):
        mgr = RegionManager()
        shared = mgr.create("s", "Shared", VT, 0, set())
        shared.thread_count = 2
        stats = Stats()
        sched = Scheduler(stats, quantum=100)
        t = SimThread("t", costs(1))
        t.shared_stack.append(shared)
        sched.spawn(t)
        sched.run()
        assert shared.thread_count == 1
        assert shared.live  # another thread still holds it

    def test_last_thread_destroys_top_level_shared_region(self):
        mgr = RegionManager()
        shared = mgr.create("s", "Shared", VT, 0, set())
        shared.thread_count = 1
        stats = Stats()
        sched = Scheduler(stats, quantum=100)
        t = SimThread("t", costs(1))
        t.shared_stack.append(shared)
        sched.spawn(t)
        sched.run()
        assert shared.thread_count == 0
        assert not shared.live

    def test_latency_metric_counts_from_spawn(self):
        stats = Stats()
        sched = Scheduler(stats, quantum=1000)
        sched.spawn(SimThread("warmup", costs(500)))
        late = SimThread("late", costs(1))
        sched.spawn(late)
        sched.run()
        # 'late' was spawned after warmup charged 0 cycles (spawn happens
        # before run); its dispatch latency is the warmup slice, not the
        # whole history of the machine
        assert late.max_dispatch_latency <= 500


class TestGCHook:
    def test_gc_pause_charged_and_regular_delayed(self):
        stats = Stats()
        fired = []

        def hook():
            if not fired:
                fired.append(True)
                return 1000
            return 0

        sched = Scheduler(stats, quantum=100, gc_hook=hook)
        rt = SimThread("rt", costs(10, 10), realtime=True)
        reg = SimThread("reg", costs(10, 10))
        sched.spawn(rt)
        sched.spawn(reg)
        sched.run()
        assert stats.cycles_by_thread["<gc>"] == 1000
        # the RT thread's dispatch clock was reset across the pause
        assert rt.max_dispatch_latency < 1000
