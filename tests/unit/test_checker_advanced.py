"""Typechecker tests: the subtler corners of the system — object owners
as method arguments, `this` in signatures, handle-typed fields, the
heap-effect strengthening, constraint propagation."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402

CELL = "class Cell<Owner o> { int v; Cell<o> next; }\n"


class TestObjectOwnersAsMethodArguments:
    """Section 2.1: "if a formal owner parameter of mn is instantiated
    with an object obj, then our system ensures that obj ≽o o1"."""

    BASE = (CELL +
            "class Node<Owner o> {"
            "  Cell<this> mine;"
            "  void fill() { mine = new Cell<this>; }"
            "  void visit<Owner p>(Cell<p> c) accesses p { }"
            "}\n")

    def test_this_as_owner_argument_for_own_method(self):
        # inside the class, `this` trivially owns this
        assert_well_typed(
            self.BASE +
            "class User<Owner o> extends Node<o> {"
            "  void go() {"
            "    this.fill();"
            "    this.visit<this>(mine);"
            "  }"
            "}")

    def test_unrelated_object_owner_argument_rejected(self):
        # `this` of class M does not own the receiver's owner
        assert_rejected(
            self.BASE +
            "class M<Owner o> {"
            "  void go(Node<o> node, Cell<this> c) { node.visit<this>(c); }"
            "}",
            rule="EXPR INVOKE", fragment="own the receiver")

    def test_region_owner_arguments_unconstrained(self):
        # regions are not required to own the receiver (Theorem 4)
        assert_well_typed(
            self.BASE +
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Node<r2> node = new Node<r2>;"
            "  Cell<r1> c = new Cell<r1>;"
            "  node.visit<r1>(c);"
            "} }")


class TestThisInSignatures:
    SOURCE = (CELL +
              "class Keeper<Owner o> {"
              "  Cell<this> held;"
              "  Cell<this> expose() { return held; }"
              "  void absorb(Cell<this> c) { held = c; }"
              "}\n")

    def test_internal_use_fine(self):
        assert_well_typed(
            self.SOURCE +
            "class Sub<Owner o> extends Keeper<o> {"
            "  void cycle() {"
            "    Cell<this> c = new Cell<this>;"
            "    this.absorb(c);"
            "    Cell<this> back = this.expose();"
            "  }"
            "}")

    def test_external_return_type_rejected(self):
        assert_rejected(
            self.SOURCE +
            "(RHandle<r> h) {"
            "  Keeper<r> k = new Keeper<r>;"
            "  Cell<r> c = k.expose();"
            "}",
            rule="EXPR INVOKE", fragment="O3")

    def test_external_param_type_rejected(self):
        assert_rejected(
            self.SOURCE +
            "(RHandle<r> h) {"
            "  Keeper<r> k = new Keeper<r>;"
            "  k.absorb(null);"
            "}",
            rule="EXPR INVOKE", fragment="O3")


class TestHandleFields:
    def test_handle_field_with_region_formal(self):
        assert_well_typed(
            CELL +
            "class Holder<Owner o, Region r> {"
            "  RHandle<r> stash;"
            "  void keep(RHandle<r> h) { stash = h; }"
            "  Cell<r> make() accesses r {"
            "    RHandle<r> h = stash;"
            "    return new Cell<r>;"
            "  }"
            "}\n"
            "(RHandle<r1> h1) {"
            "  Holder<r1, r1> holder = new Holder<r1, r1>;"
            "  holder.keep(h1);"
            "  Cell<r1> c = holder.make();"
            "}")

    def test_handle_field_requires_region_kind(self):
        assert_rejected(
            "class Holder<Owner o> { RHandle<o> h; }",
            rule="TYPE REGION HANDLE")

    def test_handle_type_mismatch(self):
        assert_rejected(
            "class Holder<Owner o, Region r, Region s> {"
            "  RHandle<r> stash;"
            "  void keep(RHandle<s> h) { stash = h; }"
            "}",
            rule="SUBTYPE")


class TestHeapEffectStrengthening:
    """`accesses immortal` must not smuggle in heap access (our
    documented strengthening of the effect system)."""

    def test_immortal_does_not_cover_heap(self):
        assert_rejected(
            CELL +
            "class M<Owner o> {"
            "  void go() accesses immortal {"
            "    Cell<heap> c = new Cell<heap>;"
            "  }"
            "}",
            rule="EXPR NEW")

    def test_heap_covers_immortal(self):
        # the paper's R1 direction that is safe: heap/immortal both live
        # forever, and heap-capable methods may touch immortal
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  void go() accesses heap {"
            "    Cell<immortal> c = new Cell<immortal>;"
            "  }"
            "}")

    def test_immortal_covers_regions(self):
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  void fill<Region r>(RHandle<r> h) accesses immortal"
            "      where immortal outlives r {"
            "    Cell<r> c = new Cell<r>;"
            "  }"
            "}")


class TestConstraintPropagation:
    def test_class_constraint_usable_in_body(self):
        assert_well_typed(
            CELL +
            "class Pairing<Owner a, Owner b> where b owns a {"
            "  void go(Cell<b> c) accesses b {"
            "    Cell<b> mine = c;"
            "  }"
            "}")

    def test_method_constraint_grants_type_formation(self):
        assert_well_typed(
            CELL +
            "class Link<Owner x, Owner y> { Cell<y> to; }\n"
            "class M<Owner o> {"
            "  void go<Owner p, Owner q>() where q outlives p {"
            "    Link<p, q> l = null;"
            "  }"
            "}")

    def test_without_constraint_type_formation_fails(self):
        assert_rejected(
            CELL +
            "class Link<Owner x, Owner y> { Cell<y> to; }\n"
            "class M<Owner o> {"
            "  void go<Owner p, Owner q>() {"
            "    Link<p, q> l = null;"
            "  }"
            "}",
            rule="TYPE C")

    def test_caller_must_discharge_method_constraint(self):
        src = (CELL +
               "class M<Owner o> {"
               "  void need<Owner p, Owner q>() where q outlives p { }"
               "}\n"
               "(RHandle<r1> h1) { (RHandle<r2> h2) {"
               "  M<r1> m = new M<r1>;"
               "  m.need<r1, r2>();"   # r2 does not outlive r1
               "} }")
        assert_rejected(src, rule="EXPR INVOKE")

    def test_caller_discharges_with_actual_nesting(self):
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  void need<Owner p, Owner q>() where q outlives p { }"
            "}\n"
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  M<r1> m = new M<r1>;"
            "  m.need<r2, r1>();"
            "} }")


class TestMethodOwnerKinds:
    def test_region_kinded_formal_rejects_object_owner(self):
        assert_rejected(
            CELL +
            "class M<Owner o> {"
            "  void go<Region r>() accesses r { }"
            "  void call() { this.go<this>(); }"
            "}",
            rule="EXPR INVOKE", fragment="kind")

    def test_region_kinded_formal_accepts_region(self):
        assert_well_typed(
            CELL +
            "class M<Owner o> {"
            "  void go<Region r>() accesses r { }"
            "}\n"
            "(RHandle<r1> h1) {"
            "  M<r1> m = new M<r1>;"
            "  m.go<r1>();"
            "}")

    def test_lt_refined_formal_rejects_unrefined_region(self):
        assert_rejected(
            "regionKind K extends SharedRegion { }\n"
            "class M<Owner o> {"
            "  void go<K : LT r>() accesses r { }"
            "}\n"
            "(RHandle<K r> h) {"
            "  M<heap> m = new M<heap>;"
            "  m.go<r>();"
            "}",
            rule="EXPR INVOKE")

    def test_lt_refined_formal_accepts_lt_region(self):
        assert_well_typed(
            "regionKind K extends SharedRegion { }\n"
            "class M<Owner o> {"
            "  void go<K : LT r>() accesses r { }"
            "}\n"
            "(RHandle<K : LT(512) r> h) {"
            "  M<heap> m = new M<heap>;"
            "  m.go<r>();"
            "}")
