"""Tests for the Section 2.6 translation to RTSJ."""

import sys
from pathlib import Path

import pytest

from repro import AllocStrategy, OwnershipTypeError, analyze, translate

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import TSTACK_SOURCE  # noqa: E402


def strategies(source: str):
    translation = translate(analyze(source).require_well_typed())
    return translation, {(s.class_name, s.owner): s.strategy
                         for s in translation.sites}


class TestAllocationStrategies:
    def test_current_region(self):
        _, by_site = strategies(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r> h) { Cell<r> c = new Cell<r>; }")
        assert by_site[("Cell", "r")] is AllocStrategy.CURRENT_REGION

    def test_heap_and_immortal(self):
        # inside a region block, heap/immortal are not the current region
        _, by_site = strategies(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r> h) {"
            "  Cell<heap> a = new Cell<heap>;"
            "  Cell<immortal> b = new Cell<immortal>;"
            "}")
        assert by_site[("Cell", "heap")] is AllocStrategy.HEAP
        assert by_site[("Cell", "immortal")] is AllocStrategy.IMMORTAL

    def test_heap_in_main_is_current_region(self):
        # at main top level the current region IS the heap: plain `new`
        _, by_site = strategies(
            "class Cell<Owner o> { int v; }\n"
            "{ Cell<heap> a = new Cell<heap>; }")
        assert by_site[("Cell", "heap")] is AllocStrategy.CURRENT_REGION

    def test_handle_var_for_outer_region(self):
        translation, by_site = strategies(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Cell<r1> c = new Cell<r1>;"
            "} }")
        assert by_site[("Cell", "r1")] is AllocStrategy.HANDLE_VAR
        site = [s for s in translation.sites if s.owner == "r1"][0]
        assert site.handle == "h1"

    def test_via_this_for_this_owned(self):
        _, by_site = strategies(
            "class Inner<Owner o> { int v; }\n"
            "class Outer<Owner o> {"
            "  Inner<this> guts;"
            "  void fill() { guts = new Inner<this>; }"
            "}")
        assert by_site[("Inner", "this")] is AllocStrategy.VIA_THIS

    def test_initial_region(self):
        # at method entry initialRegion IS the current region (plain new);
        # inside a nested region block the saved initial-area handle is
        # used instead
        _, by_site = strategies(
            "class Cell<Owner o> { int v; }\n"
            "class M<Owner o> {"
            "  Cell<initialRegion> make() {"
            "    return new Cell<initialRegion>;"
            "  }"
            "}")
        assert by_site[("Cell", "initialRegion")] \
            is AllocStrategy.CURRENT_REGION
        _, nested = strategies(
            "class Cell<Owner o> { int v; }\n"
            "class M<Owner o> {"
            "  void make() accesses heap, initialRegion {"
            "    (RHandle<r> h) {"
            "      Cell<initialRegion> c = new Cell<initialRegion>;"
            "    }"
            "  }"
            "}")
        assert nested[("Cell", "initialRegion")] \
            is AllocStrategy.INITIAL_REGION

    def test_handle_param_strategy(self):
        translation, by_site = strategies(
            "class Cell<Owner o> { int v; }\n"
            "class M<Owner o> {"
            "  void fill<Region r>(RHandle<r> h) accesses r {"
            "    Cell<r> c = new Cell<r>;"
            "  }"
            "}")
        assert by_site[("Cell", "r")] is AllocStrategy.HANDLE_VAR

    def test_histogram(self):
        translation, _ = strategies(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r> h) {"
            "  Cell<r> a = new Cell<r>;"
            "  Cell<r> b = new Cell<r>;"
            "  Cell<heap> c = new Cell<heap>;"
            "}")
        hist = translation.strategy_histogram()
        assert hist[AllocStrategy.CURRENT_REGION] == 2
        assert hist[AllocStrategy.HEAP] == 1


class TestPseudoJava:
    def test_erases_owner_parameters(self):
        translation, _ = strategies(TSTACK_SOURCE)
        assert "<Owner" not in translation.java
        assert "class TStack" in translation.java

    def test_region_becomes_memory_area(self):
        translation, _ = strategies(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r> h) { Cell<r> c = new Cell<r>; }")
        assert "VTMemoryWithSubregions" in translation.java
        assert ".enter(" in translation.java

    def test_lt_region_size_in_constructor(self):
        translation, _ = strategies(
            "regionKind K extends SharedRegion { }\n"
            "(RHandle<K : LT(2048) r> h) { int x = 1; }")
        assert "LTMemoryWithSubregions(2048)" in translation.java

    def test_newinstance_for_cross_region_allocation(self):
        translation, _ = strategies(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Cell<r1> c = new Cell<r1>;"
            "} }")
        assert "h1.newInstance(Cell.class)" in translation.java

    def test_portal_wrapper_classes_emitted(self):
        translation, _ = strategies(
            "regionKind Buf extends SharedRegion {"
            "  Cell<this> slot;"
            "  Sub : LT(64) NoRT s;"
            "}\n"
            "regionKind Sub extends SharedRegion { }\n"
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<Buf r> h) { int x = 1; }")
        assert "class BufPortals" in translation.java       # w2
        assert "class BufSubregions" in translation.java    # w1

    def test_rt_fork_becomes_noheap_realtime_thread(self):
        translation, _ = strategies(
            "regionKind Shared extends SharedRegion { }\n"
            "class W<Shared r> { void go() accesses r { } }\n"
            "(RHandle<Shared : LT(512) r> h) {"
            "  RT fork (new W<r>).go();"
            "}")
        assert "NoHeapRealtimeThread" in translation.java

    def test_handle_becomes_memory_area_type(self):
        translation, _ = strategies(
            "class M<Owner o> {"
            "  void use<Region r>(RHandle<r> h) accesses r { }"
            "}")
        assert "MemoryArea h" in translation.java

    def test_float_becomes_double(self):
        translation, _ = strategies("{ float f = 1.5; }")
        assert "double f" in translation.java


class TestErrors:
    def test_ill_typed_program_rejected(self):
        analyzed = analyze(
            "class Cell<Owner o> { int v; }\n"
            "(RHandle<r1> h1) { (RHandle<r2> h2) {"
            "  Cell<r1> bad = new Cell<r2>;"
            "} }")
        with pytest.raises(OwnershipTypeError):
            translate(analyzed)
