"""Unit tests for the continuous-telemetry plane: the envelope store,
the shared bench-compare statistics, the regression observatory, and
the live scrape endpoint."""

import json
import urllib.request

import pytest

from repro.bench.compare import (check_exact, check_missing, check_wall,
                                 mad, median, robust_threshold)
from repro.obs.live import TelemetryServer
from repro.obs.report import build_report, render_html, render_text
from repro.obs.telemetry import (TELEMETRY_SCHEMA, TelemetryStore,
                                 envelope_digest, make_envelope,
                                 validate_envelope)


def _store(tmp_path):
    return TelemetryStore(str(tmp_path / "telemetry"))


class TestEnvelope:
    def test_make_envelope_minimal(self):
        env = make_envelope("run", created_at=123.0, git_sha="")
        assert env["schema"] == TELEMETRY_SCHEMA
        assert env["kind"] == "run"
        assert env["created_at"] == 123.0
        assert validate_envelope(env) == []

    def test_empty_sections_omitted(self):
        env = make_envelope("run", created_at=1.0, git_sha="",
                            summary={}, bench=None,
                            meta={"mode": "dynamic"})
        assert "summary" not in env and "bench" not in env
        assert env["meta"] == {"mode": "dynamic"}

    def test_validate_rejects_bad_envelopes(self):
        assert validate_envelope([]) == ["envelope is not an object"]
        assert any("schema" in p for p in validate_envelope(
            {"schema": "x/9", "kind": "run", "created_at": 1}))
        assert any("kind" in p for p in validate_envelope(
            {"schema": TELEMETRY_SCHEMA, "kind": "nope",
             "created_at": 1}))
        assert any("created_at" in p for p in validate_envelope(
            {"schema": TELEMETRY_SCHEMA, "kind": "run"}))
        assert any("section" in p for p in validate_envelope(
            {"schema": TELEMETRY_SCHEMA, "kind": "run",
             "created_at": 1, "summary": "not-a-dict"}))

    def test_digest_is_content_addressed(self):
        a = make_envelope("run", created_at=1.0, git_sha="",
                          summary={"cycles": 1})
        b = make_envelope("run", created_at=1.0, git_sha="",
                          summary={"cycles": 1})
        c = make_envelope("run", created_at=1.0, git_sha="",
                          summary={"cycles": 2})
        assert envelope_digest(a) == envelope_digest(b)
        assert envelope_digest(a) != envelope_digest(c)


class TestStore:
    def _envelope(self, i, kind="run"):
        return make_envelope(kind, created_at=1000.0 + i, git_sha="",
                             label=f"e{i}", summary={"cycles": i})

    def test_append_load_round_trip(self, tmp_path):
        store = _store(tmp_path)
        env = self._envelope(1)
        sha = store.append(env)
        assert store.load(sha) == env
        assert store.validate() == []

    def test_append_dedups_identical_envelopes(self, tmp_path):
        store = _store(tmp_path)
        env = self._envelope(1)
        assert store.append(env) == store.append(env)
        assert len(store.index()) == 1

    def test_append_rejects_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            _store(tmp_path).append({"schema": "x/9"})

    def test_recent_filters_and_orders(self, tmp_path):
        store = _store(tmp_path)
        for i in range(5):
            store.append(self._envelope(i))
        store.append(self._envelope(99, kind="bench"))
        recent = store.recent(3)
        assert [e["label"] for e in recent] == ["e99", "e4", "e3"]
        assert [e["label"] for e in store.recent(10, kind="bench")] \
            == ["e99"]

    def test_empty_store_reads_empty(self, tmp_path):
        store = _store(tmp_path)
        assert store.index() == []
        assert store.recent(5) == []
        assert store.validate() == []

    def test_load_detects_corruption(self, tmp_path):
        store = _store(tmp_path)
        sha = store.append(self._envelope(1))
        path = tmp_path / "telemetry" / "objects" / (sha + ".json")
        path.write_text('{"schema": "repro-telemetry/1", "kind": '
                        '"run", "created_at": 1}')
        with pytest.raises(ValueError):
            store.load(sha)
        assert store.validate() != []

    def test_rebuild_index(self, tmp_path):
        store = _store(tmp_path)
        for i in range(3):
            store.append(self._envelope(i))
        (tmp_path / "telemetry" / "index.jsonl").unlink()
        assert store.validate() != []  # objects missing from index
        assert store.rebuild_index() == 3
        assert store.validate() == []
        assert [e["label"] for e in store.recent(3)] \
            == ["e2", "e1", "e0"]


class TestRobustStats:
    def test_median_and_mad(self):
        assert median([]) == 0.0
        assert median([3.0]) == 3.0
        assert median([1.0, 3.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert mad([5.0]) == 0.0
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 9.0]) == 1.0

    def test_robust_threshold_widens_with_noise(self):
        stable = [0.100, 0.101, 0.099, 0.100]
        noisy = [0.080, 0.120, 0.095, 0.140]
        base = 0.30
        assert robust_threshold(base, []) == base
        assert robust_threshold(base, stable) == pytest.approx(
            base, abs=0.05)
        assert robust_threshold(base, noisy) > \
            robust_threshold(base, stable)

    def test_shared_judgments(self):
        assert check_wall("x", 0.1, 0.1) is None
        assert check_wall("x", 0.0, 9.9) is None  # no baseline
        msg = check_wall("x", 0.1, 0.2, threshold=0.3)
        assert msg is not None and "regression" in msg
        assert check_exact("x", "cycles", 5, 5) is None
        assert "determinism" in check_exact("x", "cycles", 5, 6)
        assert "missing" in check_missing("x")


def _interp_payload(wall=0.1, cycles=1000):
    return {"schema": "repro-bench-interp/1", "benchmarks": {
        "array": {"dynamic": {"wall_s": wall, "cycles": cycles},
                  "static": {"wall_s": wall / 2, "cycles": 500}}}}


class TestObservatory:
    def _seed_history(self, store, walls):
        for i, wall in enumerate(walls):
            store.append(make_envelope(
                "bench", created_at=1000.0 + i, git_sha="",
                bench={"suite": "interp",
                       "payload": _interp_payload(wall)}))

    def test_ok_on_stable_history(self, tmp_path):
        store = _store(tmp_path)
        self._seed_history(store, [0.101, 0.099, 0.100])
        report = build_report(store,
                              baselines={"interp": _interp_payload()})
        assert report["ok"]
        rows = {r["label"]: r
                for r in report["suites"]["interp"]["rows"]}
        assert rows["array/dynamic"]["verdict"] == "ok"
        assert rows["array/dynamic"]["history"] == [0.101, 0.099]

    def test_regression_fails_report(self, tmp_path):
        store = _store(tmp_path)
        self._seed_history(store, [0.10, 0.10, 0.25])
        report = build_report(store,
                              baselines={"interp": _interp_payload()})
        assert not report["ok"]
        assert any("regression" in f
                   for f in report["suites"]["interp"]["failures"])

    def test_determinism_break_fails_report(self, tmp_path):
        store = _store(tmp_path)
        report = build_report(
            store, baselines={"interp": _interp_payload(cycles=1000)},
            current={"interp": _interp_payload(cycles=1001)})
        assert not report["ok"]
        assert any("determinism" in f
                   for f in report["suites"]["interp"]["failures"])

    def test_missing_strict_only_for_explicit_current(self, tmp_path):
        store = _store(tmp_path)
        subset = {"schema": "repro-bench-interp/1", "benchmarks": {}}
        # store-inferred subset run: informational, not failing
        store.append(make_envelope(
            "bench", created_at=1.0, git_sha="",
            bench={"suite": "interp", "payload": subset}))
        report = build_report(store,
                              baselines={"interp": _interp_payload()})
        assert report["ok"]
        # explicit --current payload must be complete
        report = build_report(store,
                              baselines={"interp": _interp_payload()},
                              current={"interp": subset})
        assert not report["ok"]

    def test_noisy_history_widens_threshold(self, tmp_path):
        store = _store(tmp_path)
        # very noisy history: +50% current should NOT page
        self._seed_history(store,
                           [0.05, 0.15, 0.07, 0.18, 0.06, 0.150])
        report = build_report(store,
                              baselines={"interp": _interp_payload()})
        rows = {r["label"]: r
                for r in report["suites"]["interp"]["rows"]}
        row = rows["array/dynamic"]
        assert row["effective_threshold"] > row["threshold"]
        assert row["verdict"] == "ok"

    def test_renderings(self, tmp_path):
        store = _store(tmp_path)
        self._seed_history(store, [0.10, 0.25])
        report = build_report(store,
                              baselines={"interp": _interp_payload()})
        text = render_text(report)
        assert "array/dynamic" in text and "FAIL" in text
        html = render_html(report)
        assert "regression" in html and "<table>" in html

    def test_empty_report(self, tmp_path):
        report = build_report(_store(tmp_path))
        assert report["suites"] == {} and report["ok"]


class TestLiveServer:
    def _get(self, server, path):
        url = f"http://{server.host}:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode()

    def test_routes_over_store(self, tmp_path):
        store = _store(tmp_path)
        from repro.obs import MetricsRegistry
        reg = MetricsRegistry()
        reg.counter("repro_c", "help").labels(kind="x").inc(3)
        sha = store.append(make_envelope(
            "run", created_at=1.0, git_sha="", label="demo",
            summary={"cycles": 7}, metrics=reg.to_dict()))
        with TelemetryServer(store=store).serve_background() as server:
            status, body = self._get(server, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["envelopes"] == 1
            assert health["metrics_source"] == "store"

            status, body = self._get(server, "/metrics")
            assert status == 200
            from repro.obs import parse_prometheus
            _, types, samples = parse_prometheus(body)
            assert samples[("repro_c", (("kind", "x"),))] == 3.0

            status, body = self._get(server, "/runs?n=5")
            runs = json.loads(body)
            assert [e["sha"] for e in runs] == [sha]

            status, body = self._get(server, f"/runs/{sha}")
            assert json.loads(body)["label"] == "demo"

    def test_live_registry_takes_precedence(self, tmp_path):
        from repro.obs import MetricsRegistry, parse_prometheus
        reg = MetricsRegistry()
        gauge = reg.gauge("repro_live", "live gauge")
        gauge.set(1)
        with TelemetryServer(store=_store(tmp_path),
                             registry=reg).serve_background() as server:
            _, body = self._get(server, "/metrics")
            _, _, samples = parse_prometheus(body)
            assert samples[("repro_live", ())] == 1.0
            gauge.set(42)  # scrapes see the current value
            _, body = self._get(server, "/metrics")
            _, _, samples = parse_prometheus(body)
            assert samples[("repro_live", ())] == 42.0
            health = json.loads(self._get(server, "/healthz")[1])
            assert health["metrics_source"] == "live"

    def test_unknown_routes_404(self, tmp_path):
        with TelemetryServer(store=_store(tmp_path)) \
                .serve_background() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(server, "/nope")
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(server, "/runs/doesnotexist")
            assert err.value.code == 404
