"""Tests for the Figure 15 well-formedness predicates."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402


class TestWFClasses:
    def test_duplicate_class(self):
        assert_rejected(
            "class C<Owner o> { } class C<Owner o> { }",
            fragment="defined twice")

    def test_class_hierarchy_cycle(self):
        assert_rejected(
            "class A<Owner o> extends B<o> { }"
            "class B<Owner o> extends A<o> { }",
            fragment="cycle")

    def test_self_extension_cycle(self):
        assert_rejected("class A<Owner o> extends A<o> { }",
                        fragment="cycle")

    def test_unknown_superclass(self):
        assert_rejected("class A<Owner o> extends Nope<o> { }",
                        fragment="unknown class")

    def test_superclass_arity(self):
        assert_rejected(
            "class A<Owner o, Owner p> { }"
            "class B<Owner o> extends A<o> { }",
            fragment="expected 2")

    def test_duplicate_formals(self):
        assert_rejected("class A<Owner o, Owner o> { }",
                        fragment="duplicate owner formals")

    def test_builtin_class_redefinition(self):
        assert_rejected("class Object<Owner o> { }",
                        fragment="built-in")
        assert_rejected("class IntArray<Owner o> { }",
                        fragment="built-in")


class TestWFRegionKinds:
    def test_duplicate_kind(self):
        assert_rejected(
            "regionKind K extends SharedRegion { }"
            "regionKind K extends SharedRegion { }",
            fragment="defined twice")

    def test_kind_cycle(self):
        assert_rejected(
            "regionKind A extends B { } regionKind B extends A { }",
            fragment="cycle")

    def test_kind_must_reach_shared_region(self):
        assert_rejected("regionKind K extends LocalRegion { }",
                        fragment="SharedRegion")

    def test_unknown_superkind(self):
        assert_rejected("regionKind K extends Zap { }",
                        fragment="unknown kind")

    def test_builtin_kind_redefinition(self):
        assert_rejected("regionKind SharedRegion extends SharedRegion { }",
                        fragment="built-in")

    def test_infinite_subregions_rejected(self):
        # "Our system checks that a region has a finite number of
        # transitive subregions"
        assert_rejected(
            "regionKind A extends SharedRegion { B : VT NoRT b; }"
            "regionKind B extends SharedRegion { A : VT NoRT a; }",
            fragment="infinite")

    def test_self_subregion_rejected(self):
        assert_rejected(
            "regionKind A extends SharedRegion { A : VT NoRT a; }",
            fragment="infinite")

    def test_finite_subregion_dag_ok(self):
        assert_well_typed(
            "regionKind A extends SharedRegion {"
            "  B : VT NoRT left; B : VT NoRT right;"
            "}"
            "regionKind B extends SharedRegion { C : LT(64) NoRT c; }"
            "regionKind C extends SharedRegion { }")


class TestMembersOnce:
    def test_duplicate_field(self):
        assert_rejected("class C<Owner o> { int x; int x; }",
                        fragment="field twice")

    def test_duplicate_method(self):
        assert_rejected(
            "class C<Owner o> { void m() { } void m() { } }",
            fragment="method twice")

    def test_field_shadowing_rejected(self):
        assert_rejected(
            "class A<Owner o> { int x; }"
            "class B<Owner o> extends A<o> { int x; }",
            fragment="shadows")

    def test_duplicate_region_member(self):
        assert_rejected(
            "regionKind K extends SharedRegion { int x; int x; }",
            fragment="member twice")


class TestInheritanceOK:
    def test_superclass_constraints_must_be_repeated(self):
        assert_rejected(
            "class A<Owner a, Owner b> where a owns b { }"
            "class B<Owner a, Owner b> extends A<a, b> { }",
            fragment="repeat the inherited constraint")

    def test_superclass_constraints_repeated_ok(self):
        assert_well_typed(
            "class A<Owner a, Owner b> where a owns b { }"
            "class B<Owner a, Owner b> extends A<a, b>"
            "  where a owns b { }")

    def test_override_changes_param_type(self):
        assert_rejected(
            "class Cell<Owner o> { }"
            "class A<Owner o> { void m(int x) { } }"
            "class B<Owner o> extends A<o> { void m(Cell<o> x) { } }",
            fragment="changes the type of a parameter")

    def test_override_changes_param_count(self):
        assert_rejected(
            "class A<Owner o> { void m(int x) { } }"
            "class B<Owner o> extends A<o> { void m() { } }",
            fragment="different number of parameters")

    def test_override_covariant_return_ok(self):
        assert_well_typed(
            "class Animal<Owner o> { }"
            "class Dog<Owner o> extends Animal<o> { }"
            "class A<Owner o> {"
            "  Animal<o> get() { return null; }"
            "}"
            "class B<Owner o> extends A<o> {"
            "  Dog<o> get() { return null; }"
            "}")

    def test_override_incompatible_return(self):
        assert_rejected(
            "class A<Owner o> { int m() { return 1; } }"
            "class B<Owner o> extends A<o> {"
            "  boolean m() { return true; }"
            "}",
            fragment="return type")

    def test_override_cannot_widen_effects(self):
        assert_rejected(
            "class A<Owner o> { void m() accesses o { } }"
            "class B<Owner o> extends A<o> {"
            "  void m() accesses o, heap { }"
            "}",
            fragment="effect")

    def test_override_narrower_effects_ok(self):
        assert_well_typed(
            "class A<Owner o> { void m() accesses o, heap { } }"
            "class B<Owner o> extends A<o> { void m() accesses o { } }")

    def test_override_with_renamed_formals(self):
        assert_well_typed(
            "class Cell<Owner o> { }"
            "class A<Owner o> {"
            "  void m<Owner p>(Cell<p> c) accesses o, p { }"
            "}"
            "class B<Owner o> extends A<o> {"
            "  void m<Owner q>(Cell<q> c) accesses o, q { }"
            "}")
