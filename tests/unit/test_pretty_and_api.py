"""Unit tests for the pretty printer, the analyze API, and the runtime
value helpers."""

import pytest

from repro import (OwnershipTypeError, analyze, parse_program,
                   pretty_program, typecheck_source)
from repro.core.api import AnalyzedProgram
from repro.interp.values import format_value, region_of_owner
from repro.rtsj.objects import ObjRef
from repro.rtsj.regions import RegionManager


class TestPrettyPrinter:
    def test_expression_parenthesization_preserves_meaning(self):
        source = "{ int x = 1 + 2 * 3 - 4 / 2; print(x); }"
        text = pretty_program(parse_program(source))
        assert "((1 + (2 * 3)) - (4 / 2))" in text

    def test_floats_keep_decimal_point(self):
        text = pretty_program(parse_program("{ float f = 2.0; }"))
        assert "2.0" in text

    def test_region_kind_members(self):
        src = ("regionKind K extends SharedRegion {"
               " Sub : LT(64) RT s; }\n"
               "regionKind Sub extends SharedRegion { }")
        text = pretty_program(parse_program(src))
        assert "Sub : LT(64) RT s;" in text

    def test_else_if_chain(self):
        src = "{ if (true) { } else if (false) { } else { } }"
        text = pretty_program(parse_program(src))
        reparsed = pretty_program(parse_program(text))
        assert text == reparsed

    def test_subregion_statement(self):
        src = ("regionKind K extends SharedRegion { Sub s; }\n"
               "regionKind Sub extends SharedRegion { }\n"
               "(RHandle<K r> h) {"
               " (RHandle<Sub r2> h2 = new h.s) { } }")
        text = pretty_program(parse_program(src))
        assert "= new h.s)" in text

    def test_unary_and_logical(self):
        text = pretty_program(parse_program(
            "{ boolean b = !(true && false) || true; }"))
        assert "((!(true && false)) || true)" in text


class TestAnalyzeApi:
    GOOD = "class C<Owner o> { int v; }\n{ C<heap> c = new C<heap>; }"
    BAD = "class C<Owner o> { int v; }\n{ C<zap> c = null; }"

    def test_analyze_well_typed(self):
        analyzed = analyze(self.GOOD)
        assert isinstance(analyzed, AnalyzedProgram)
        assert analyzed.well_typed
        assert analyzed.require_well_typed() is analyzed

    def test_analyze_collects_errors(self):
        analyzed = analyze(self.BAD)
        assert not analyzed.well_typed
        with pytest.raises(OwnershipTypeError):
            analyzed.require_well_typed()

    def test_typecheck_source_shorthand(self):
        assert typecheck_source(self.GOOD) == []
        assert typecheck_source(self.BAD)

    def test_error_rules_lists_judgments(self):
        analyzed = analyze(self.BAD)
        assert analyzed.error_rules()

    def test_analyze_without_inference(self):
        # the raw program has no effects clauses; checking without the
        # defaults pass must fail with the METHOD rule
        source = "class C<Owner o> { void m() { } }"
        analyzed = analyze(source, infer=False)
        assert "METHOD" in analyzed.error_rules()

    def test_analyze_accepts_parsed_program(self):
        program = parse_program(self.GOOD)
        analyzed = analyze(program)
        assert analyzed.well_typed

    def test_filename_in_diagnostics(self):
        analyzed = analyze(self.BAD, filename="prog.rtj")
        assert "prog.rtj" in str(analyzed.errors[0])


class TestValueHelpers:
    def test_format_scalars(self):
        assert format_value(None) == "null"
        assert format_value(True) == "true"
        assert format_value(False) == "false"
        assert format_value(42) == "42"
        assert format_value(1.5) == "1.5"
        assert format_value(0.1 + 0.2) == "0.3"  # 6 significant digits

    def test_region_of_owner(self):
        mgr = RegionManager()
        area = mgr.create("r", "K", "VT", 0, set())
        assert region_of_owner(area) is area
        obj = ObjRef("C", (area,), ("f",), area)
        assert region_of_owner(obj) is area
        with pytest.raises(TypeError):
            region_of_owner(42)


class TestMachineExtras:
    def test_ownership_graph_include_dead(self):
        from repro import RunOptions
        from repro.interp.machine import Machine
        source = ("class C<Owner o> { int v; }\n"
                  "(RHandle<r> h) { C<r> c = new C<r>; }")
        machine = Machine(analyze(source).require_well_typed(),
                          RunOptions())
        machine.run()
        live_only = machine.ownership_graph()
        with_dead = machine.ownership_graph(include_dead=True)
        assert len(with_dead.labels) > len(live_only.labels)
        assert any(label == "r" for label in with_dead.labels.values())

    def test_statics_initialized_before_main(self):
        from repro import RunOptions, run_source
        source = ("class C<Owner o> {"
                  "  static int a = 7;"
                  "  static boolean b;"
                  "  static float f;"
                  "}\n"
                  "{ print(C.a); print(C.b); print(C.f); }")
        result = run_source(analyze(source).require_well_typed(),
                            RunOptions())
        assert result.output == ["7", "false", "0"]

    def test_stats_summary_keys(self):
        from repro import RunOptions, run_source
        result = run_source(analyze("{ print(1); }"), RunOptions())
        summary = result.stats.summary()
        assert summary["cycles"] == result.cycles
        assert "assignment_checks" in summary
        assert "gc_runs" in summary
