"""Unit tests for the runtime region sanitizer
(:mod:`repro.rtsj.sanitizer`): a clean walk over healthy state, and one
deliberately-corrupted state per invariant class."""

import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import RunOptions, run_source
from repro.errors import SanitizerViolation
from repro.rtsj.objects import ObjRef
from repro.rtsj.regions import LT, VT, RegionManager
from repro.rtsj.sanitizer import (CHECKPOINTS, RegionSanitizer,
                                  SanitizerConfig)
from repro.rtsj.stats import Stats

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import TSTACK_SOURCE, assert_well_typed  # noqa: E402


def make_sanitizer():
    manager = RegionManager()
    stats = Stats()
    return manager, stats, RegionSanitizer(manager, stats)


def make_area(manager, name="r", policy=LT, budget=4096, parent=None):
    ancestors = set() if parent is None else set(parent.ancestor_ids)
    return manager.create(name, "SomeRegion", policy, budget,
                          ancestors, parent=parent)


def alloc(area, class_name="T", owner=None, fields=("f",)):
    obj = ObjRef(class_name, (owner if owner is not None else area,),
                 fields, area)
    area.allocate(obj)
    return obj


def violation(sanitizer, invariant):
    with pytest.raises(SanitizerViolation) as exc:
        sanitizer.sweep("test")
    assert exc.value.invariant == invariant
    return exc.value


class TestCleanState:
    def test_healthy_state_sweeps_clean(self):
        manager, stats, sanitizer = make_sanitizer()
        area = make_area(manager)
        obj = alloc(area)
        other = alloc(area)
        obj.fields["f"] = other          # same-area ref: trivially safe
        area.portals["p"] = None
        area.portals["count"] = 7        # scalar portal: legal
        sanitizer.sweep("test")
        assert stats.sanitizer_checks == 1
        assert sanitizer.violations == 0

    def test_well_typed_program_is_sanitizer_clean(self):
        result = run_source(assert_well_typed(TSTACK_SOURCE),
                            RunOptions(sanitize=True))
        assert result.stats.sanitizer_checks > 0


class TestForestInvariant:
    def test_self_ancestry_is_o1_violation(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        area.ancestor_ids.add(area.area_id)
        violation(sanitizer, "O1-forest")

    def test_parent_cycle_is_o1_violation(self):
        manager, _, sanitizer = make_sanitizer()
        a = make_area(manager, "a")
        b = make_area(manager, "b", parent=a)
        a.parent = b                      # corrupt: a <-> b cycle
        violation(sanitizer, "O1-forest")


class TestAccounting:
    def test_negative_thread_count(self):
        manager, _, sanitizer = make_sanitizer()
        make_area(manager).thread_count = -1
        violation(sanitizer, "thread-count")

    def test_byte_accounting_mismatch(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        alloc(area)
        area.bytes_used += 8              # corrupt the accounting
        violation(sanitizer, "byte-accounting")


class TestPortals:
    def test_non_value_portal(self):
        manager, _, sanitizer = make_sanitizer()
        make_area(manager).portals["p"] = object()
        violation(sanitizer, "portal-typing")

    def test_dead_portal_reference(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        doomed = make_area(manager, "doomed")
        obj = alloc(doomed)
        doomed.destroy()
        area.portals["p"] = obj
        violation(sanitizer, "R1-no-dangling")


class TestColocation:
    def test_object_outside_owner_region_is_o2_violation(self):
        manager, _, sanitizer = make_sanitizer()
        owner_area = make_area(manager, "owner")
        stray_area = make_area(manager, "stray")
        alloc(stray_area, owner=owner_area)
        violation(sanitizer, "O2-colocation")

    def test_spilled_object_in_outliving_area_is_exempt(self):
        manager, stats, sanitizer = make_sanitizer()
        owner_area = make_area(manager, "owner", policy=VT)
        obj = ObjRef("T", (owner_area,), ("f",), manager.heap)
        manager.heap.allocate(obj)
        obj.spilled = True                # the VT-spill degradation
        sanitizer.sweep("test")
        assert sanitizer.violations == 0

    def test_spill_into_shorter_lived_area_still_flagged(self):
        manager, _, sanitizer = make_sanitizer()
        owner_area = make_area(manager, "owner")
        stray_area = make_area(manager, "stray")
        obj = alloc(stray_area, owner=owner_area)
        obj.spilled = True                # spill target must outlive
        violation(sanitizer, "O2-colocation")


class TestReferences:
    def test_dangling_field_is_r1_violation(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        holder = alloc(area)
        doomed = make_area(manager, "doomed")
        victim = alloc(doomed)
        doomed.destroy()
        holder.fields["f"] = victim
        violation(sanitizer, "R1-no-dangling")

    def test_inward_reference_is_r2_violation(self):
        manager, _, sanitizer = make_sanitizer()
        parent = make_area(manager, "parent")
        child = make_area(manager, "child", parent=parent)
        holder = alloc(parent)
        inner = alloc(child)
        holder.fields["f"] = inner        # parent -> child: would dangle
        violation(sanitizer, "R2-outlives")


class TestRealtimeNoHeap:
    def test_rt_thread_holding_heap_ref_is_r3_violation(self):
        manager, _, sanitizer = make_sanitizer()
        heap_obj = alloc(manager.heap)
        frame = SimpleNamespace(this=None, vars={"x": heap_obj},
                                temps=[])
        thread = SimpleNamespace(name="rt", realtime=True, done=False,
                                 frames=[frame])
        sanitizer.scheduler = SimpleNamespace(threads=[thread])
        violation(sanitizer, "R3-rt-no-heap")

    def test_non_rt_thread_may_hold_heap_refs(self):
        manager, _, sanitizer = make_sanitizer()
        heap_obj = alloc(manager.heap)
        frame = SimpleNamespace(this=heap_obj, vars={}, temps=[])
        thread = SimpleNamespace(name="plain", realtime=False,
                                 done=False, frames=[frame])
        sanitizer.scheduler = SimpleNamespace(threads=[thread])
        sanitizer.sweep("test")
        assert sanitizer.violations == 0


class TestFlushRule:
    def test_flush_with_thread_inside_is_f1(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        area.thread_count = 1
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_flush(area)
        assert exc.value.invariant == "F1-threads"

    def test_flush_with_reference_portal_is_f2(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        area.portals["p"] = alloc(manager.immortal)
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_flush(area)
        assert exc.value.invariant == "F2-portals"

    def test_flush_with_unflushed_subregion_is_f3(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        sub = make_area(manager, "sub", parent=area)
        area.subregions["sub"] = sub
        alloc(sub)                        # sub holds bytes: not flushed
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_flush(area)
        assert exc.value.invariant == "F3-subregions"

    def test_destroyed_region_with_threads_inside(self):
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        area.destroy()
        area.thread_count = 2
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_region_exit(area)
        assert exc.value.invariant == "F1-threads"

    def test_empty_live_region_with_threads_is_not_flagged_on_exit(self):
        # "is_flushed" (zero bytes) also holds for a region that never
        # allocated anything — threads can legitimately still be inside
        manager, _, sanitizer = make_sanitizer()
        area = make_area(manager)
        area.thread_count = 2
        sanitizer.on_region_exit(area)    # must not raise

    def test_end_of_run_leftover_thread(self):
        manager, _, sanitizer = make_sanitizer()
        parent = make_area(manager, "parent")
        sub = make_area(manager, "sub", parent=parent)
        sub.thread_count = 1
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_end()
        assert exc.value.invariant == "F1-threads"


class TestConfig:
    def test_unknown_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizer"):
            SanitizerConfig(checkpoints=frozenset({"nope"}))

    def test_every_n_quanta_validated(self):
        with pytest.raises(ValueError, match="every_n_quanta"):
            SanitizerConfig(every_n_quanta=0)

    def test_quantum_sampling(self):
        manager, stats, _ = make_sanitizer()
        sanitizer = RegionSanitizer(
            manager, stats, config=SanitizerConfig(every_n_quanta=3))
        for _ in range(6):
            sanitizer.on_quantum()
        assert stats.sanitizer_checks == 2

    def test_disarmed_checkpoints_are_noops(self):
        manager, stats, _ = make_sanitizer()
        sanitizer = RegionSanitizer(
            manager, stats,
            config=SanitizerConfig(checkpoints=frozenset({"end"})))
        area = make_area(manager)
        area.thread_count = 1             # would be F1 if flush armed
        sanitizer.on_quantum()
        sanitizer.on_flush(area)
        assert stats.sanitizer_checks == 0

    def test_violation_diagnostic_carries_context(self):
        manager, stats, sanitizer = make_sanitizer()
        area = make_area(manager)
        area.thread_count = -2
        err = violation(sanitizer, "thread-count")
        diag = err.diagnostic()
        assert diag["invariant"] == "thread-count"
        assert diag["checkpoint"] == "test"
        assert area.name in diag["message"]
        assert stats.metrics.counter(
            "repro_sanitizer_violations_total", "").labels(
                invariant="thread-count").value == 1
