"""Property-based differential fuzzing of the codegen backends.

Every backend promises *byte-identical observable behaviour* to the
interpreter: same output lines, same simulated cycle total, same full
``Stats.summary()``.  These tests generate small but semantically busy
programs (arithmetic with mixed int/float, dispatch chains, region
allocation loops, arrays, organically failing runs) and assert that
promise for every backend — including the forced ``py-fused`` /
``py-faithful`` forms and, when a C toolchain and cffi are present,
the ``c`` backend.

A program a backend cannot compile falls back down the capability
ladder; that is part of the contract under test — the observable
behaviour must be identical *whatever* ends up executing.  Runs that
end in a simulated error must produce the same error type and message
on every backend (compiled backends bail and re-execute on a fallback
rather than guessing at error state).
"""

import shutil

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RunOptions, analyze
from repro.errors import ReproError
from repro.interp.machine import execute


def _c_available() -> bool:
    if not any(shutil.which(cc) for cc in ("cc", "gcc", "clang")):
        return False
    try:
        import cffi  # noqa: F401
    except ImportError:
        return False
    return True


BACKENDS = ["py", "py-fused", "py-faithful"]
if _c_available():
    BACKENDS.append("c")


def _observe(analyzed, backend: str, enabled: bool):
    """The observable identity of one run: output + cycles + full
    stats summary, or the error identity for failing runs."""
    options = RunOptions(checks_enabled=enabled, validate=False,
                         instrument=False, backend=backend)
    try:
        result, _machine = execute(analyzed, options)
    except ReproError as err:
        return ("error", type(err).__name__, str(err))
    return ("ok", tuple(result.output), result.stats.cycles,
            tuple(sorted(result.stats.summary().items(),
                         key=lambda kv: kv[0])))


def assert_backends_agree(source: str) -> None:
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    for enabled in (False, True):
        reference = _observe(analyzed, "interp", enabled)
        for backend in BACKENDS:
            if backend == "c" and enabled:
                continue  # checks-erased: C only runs static mode
            got = _observe(analyzed, backend, enabled)
            assert got == reference, (
                f"backend {backend} (checks={enabled}) diverged:\n"
                f"  interp: {reference}\n  {backend}: {got}")


@st.composite
def arithmetic_programs(draw):
    """Mixed int/float arithmetic in a loop, with conversions and
    comparisons — including divisors that can reach zero, so organic
    division-by-zero error runs are part of the corpus."""
    n = draw(st.integers(min_value=0, max_value=12))
    a0 = draw(st.integers(min_value=-50, max_value=50))
    m1 = draw(st.integers(min_value=-6, max_value=6))
    op = draw(st.sampled_from(["+", "-", "*"]))
    d = draw(st.integers(min_value=-3, max_value=9))
    f0 = draw(st.integers(min_value=-20, max_value=20))
    return f"""
(RHandle<r> h) {{
    int a = {a0};
    int b = 1;
    float x = itof({f0}) / 4.0;
    int i = 0;
    while (i < {n}) {{
        a = a + i * {m1};
        b = b {op} 2;
        x = x + itof(a) / itof({d} + i);
        i = i + 1;
    }}
    print(a);
    print(b);
    print(x);
    print(a < b);
    print(ftoi(x * 3.0));
    print(a % 7);
}}
"""


@st.composite
def region_list_programs(draw):
    """Linked-list churn inside a nested plain (VT) region, with heap
    escapees — exercises allocation charging, region destroy
    accounting, and owner plumbing through methods."""
    n = draw(st.integers(min_value=0, max_value=10))
    m = draw(st.integers(min_value=1, max_value=9))
    k = draw(st.integers(min_value=1, max_value=7))
    keep = draw(st.integers(min_value=0, max_value=3))
    return f"""
class Cell<Owner o> {{
    int v;
    Cell<o> next;
    int bump(int d) {{ v = v + d; return v; }}
}}
(RHandle<r> h) {{
    Cell<heap> kept = new Cell<heap>;
    int j = 0;
    while (j < {keep}) {{
        kept.v = kept.bump(j);
        j = j + 1;
    }}
    (RHandle<s> g) {{
        Cell<s> head = null;
        int i = 0;
        while (i < {n}) {{
            Cell<s> c = new Cell<s>;
            c.v = i * {m} % {k};
            c.next = head;
            head = c;
            i = i + 1;
        }}
        int total = 0;
        Cell<s> w = head;
        while (w != null) {{
            total = total + w.v;
            w = w.next;
        }}
        print(total);
    }}
    print(kept.v);
}}
"""


@st.composite
def array_programs(draw):
    """Array fill/scan with an index expression that can step outside
    the bounds — organic error runs must agree across backends too."""
    length = draw(st.integers(min_value=1, max_value=12))
    step = draw(st.integers(min_value=1, max_value=4))
    limit = draw(st.integers(min_value=0, max_value=14))
    return f"""
(RHandle<r> h) {{
    IntArray<r> data = new IntArray<r>({length});
    int i = 0;
    while (i < {limit}) {{
        data.set(i * {step} % {length}, i + 1);
        i = i + 1;
    }}
    int total = 0;
    int j = 0;
    while (j < {length}) {{
        total = total + data.get(j);
        j = j + 1;
    }}
    print(total);
    print(data.length());
}}
"""


def _hierarchy_source(depth: int, tags) -> str:
    classes = []
    for i in range(depth):
        parent = f" extends C{i - 1}<o>" if i > 0 else ""
        classes.append(f"""
class C{i}<Owner o>{parent} {{
    int f{i};
    int tag() {{ return {tags[i]}; }}
}}""")
    uses = []
    for i in range(depth):
        uses.append(f"C0<r> v{i} = new C{i}<r>;")
        uses.append(f"print(v{i}.tag());")
    body = "\n    ".join(uses)
    return "\n".join(classes) + f"\n(RHandle<r> h) {{\n    {body}\n}}"


@st.composite
def hierarchy_programs(draw):
    """Polymorphic dispatch chains: forces the mono-dispatch gate in
    the straight-line backends and the fallback path around it."""
    depth = draw(st.integers(min_value=1, max_value=4))
    tags = draw(st.lists(st.integers(0, 999), min_size=depth,
                         max_size=depth))
    return _hierarchy_source(depth, tags)


class TestBackendDifferential:
    @given(arithmetic_programs())
    @settings(max_examples=20, deadline=None)
    def test_arithmetic(self, source):
        assert_backends_agree(source)

    @given(region_list_programs())
    @settings(max_examples=15, deadline=None)
    def test_regions_and_methods(self, source):
        assert_backends_agree(source)

    @given(array_programs())
    @settings(max_examples=15, deadline=None)
    def test_arrays_with_organic_bounds_errors(self, source):
        assert_backends_agree(source)

    @given(hierarchy_programs())
    @settings(max_examples=10, deadline=None)
    def test_polymorphic_dispatch(self, source):
        assert_backends_agree(source)
