"""Property-based soundness test (Theorems 3 and 4, empirically).

A hypothesis strategy generates random *well-typed-by-construction*
programs: nested regions, objects allocated at arbitrary depths, links
respecting the outlives order.  For each one we assert the full paper
pipeline:

* the typechecker accepts it;
* it runs under full RTSJ dynamic checking without any check firing;
* removing the checks does not change its output (check elimination is
  semantics-preserving);
* validation mode observes no dangling reference.

A second strategy *mutates* a program with one deliberately
lifetime-violating store and asserts the dual: the typechecker rejects
it, and — run anyway — the RTSJ dynamic check catches exactly that store.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (IllegalAssignmentError, RunOptions, analyze,
                   run_source)

HEADER = """
class Cell<Owner o> { int v; Cell<o> next; }
class Box<Owner a, Owner b> { Cell<b> item; }
"""

#: owner tokens ordered by lifetime: index 0 lives longest
def owner_tokens(depth: int) -> List[str]:
    return ["immortal", "heap"] + [f"r{i}" for i in range(depth)]


def outlives(tokens: List[str], a: str, b: str) -> bool:
    """Does a outlive b in the generated nesting?"""
    ia, ib = tokens.index(a), tokens.index(b)
    if a in ("heap", "immortal"):
        return True
    return ia <= ib


@dataclass
class ProgramSketch:
    depth: int
    ops: List[Tuple] = field(default_factory=list)
    cells: List[Tuple[str, str]] = field(default_factory=list)  # name,owner
    boxes: List[Tuple[str, str, str]] = field(default_factory=list)

    def emit(self, bad_store: bool = False) -> str:
        lines = [HEADER]
        indent = ""
        for i in range(self.depth):
            lines.append(f"{indent}(RHandle<r{i}> h{i}) {{")
            indent += "    "
        body: List[str] = []
        for op in self.ops:
            body.append(self._emit_op(op))
        if bad_store:
            body.append(self._emit_bad_store())
        for line in body:
            lines.append(indent + line)
        for i in reversed(range(self.depth)):
            indent = "    " * i
            lines.append(f"{indent}}}")
        return "\n".join(lines)

    def _emit_op(self, op) -> str:
        kind = op[0]
        if kind == "cell":
            _, name, owner, value = op
            return (f"Cell<{owner}> {name} = new Cell<{owner}>; "
                    f"{name}.v = {value};")
        if kind == "box":
            _, name, a, b = op
            return f"Box<{a}, {b}> {name} = new Box<{a}, {b}>;"
        if kind == "link":
            _, x, y = op
            return f"{x}.next = {y};"
        if kind == "put":
            _, box, cell = op
            return f"{box}.item = {cell};"
        if kind == "print":
            _, cell = op
            return f"print({cell}.v);"
        raise AssertionError(op)

    def _emit_bad_store(self) -> str:
        # a box in the oldest region receives a cell from the youngest:
        # statically ill-typed AND dynamically dangling
        old = "r0"
        young = f"r{self.depth - 1}"
        return (f"Box<{old}, {old}> badBox = new Box<{old}, {old}>; "
                f"Cell<{young}> badCell = new Cell<{young}>; "
                f"badBox.item = badCell;")


@st.composite
def program_sketches(draw) -> ProgramSketch:
    depth = draw(st.integers(min_value=1, max_value=3))
    tokens = owner_tokens(depth)
    sketch = ProgramSketch(depth)
    n_ops = draw(st.integers(min_value=1, max_value=10))
    for index in range(n_ops):
        choice = draw(st.integers(0, 4))
        if choice == 0 or not sketch.cells:
            owner = draw(st.sampled_from(tokens))
            name = f"c{index}"
            value = draw(st.integers(0, 99))
            sketch.ops.append(("cell", name, owner, value))
            sketch.cells.append((name, owner))
        elif choice == 1:
            # box whose item owner outlives the box owner
            a = draw(st.sampled_from(tokens))
            candidates = [t for t in tokens if outlives(tokens, t, a)]
            b = draw(st.sampled_from(candidates))
            name = f"b{index}"
            sketch.ops.append(("box", name, a, b))
            sketch.boxes.append((name, a, b))
        elif choice == 2 and len(sketch.cells) >= 2:
            # link two cells with the same owner
            by_owner = {}
            for name, owner in sketch.cells:
                by_owner.setdefault(owner, []).append(name)
            pools = [names for names in by_owner.values()
                     if len(names) >= 2]
            if pools:
                pool = draw(st.sampled_from(pools))
                x = draw(st.sampled_from(pool))
                y = draw(st.sampled_from(pool))
                sketch.ops.append(("link", x, y))
        elif choice == 3 and sketch.boxes:
            # store a compatible cell into a box
            pairs = [(bname, cname)
                     for bname, _a, b in sketch.boxes
                     for cname, cowner in sketch.cells if cowner == b]
            if pairs:
                box, cell = draw(st.sampled_from(pairs))
                sketch.ops.append(("put", box, cell))
        else:
            cell = draw(st.sampled_from(sketch.cells))[0]
            sketch.ops.append(("print", cell))
    return sketch


class TestWellTypedPrograms:
    @given(program_sketches())
    @settings(max_examples=40, deadline=None)
    def test_generated_programs_are_well_typed(self, sketch):
        analyzed = analyze(sketch.emit())
        assert not analyzed.errors, \
            (sketch.emit(), [str(e) for e in analyzed.errors])

    @given(program_sketches())
    @settings(max_examples=25, deadline=None)
    def test_checks_never_fire_and_elimination_is_sound(self, sketch):
        analyzed = analyze(sketch.emit())
        assert not analyzed.errors
        # dynamic checks on + validated: a failing check would raise
        dyn = run_source(analyzed, RunOptions(checks_enabled=True,
                                              validate=True))
        sta = run_source(analyzed, RunOptions(checks_enabled=False,
                                              validate=True))
        assert dyn.output == sta.output
        assert sta.cycles <= dyn.cycles


class TestMutatedPrograms:
    @given(program_sketches())
    @settings(max_examples=25, deadline=None)
    def test_lifetime_violations_rejected_and_caught(self, sketch):
        from hypothesis import assume
        assume(sketch.depth >= 2)  # the bad store needs two lifetimes
        source = sketch.emit(bad_store=True)
        analyzed = analyze(source)
        # the static system rejects the bad store ...
        assert analyzed.errors, source
        assert "SUBTYPE" in analyzed.error_rules()
        # ... and the RTSJ dynamic checks catch exactly the same store
        # when the program runs unchecked-by-types
        with pytest.raises(IllegalAssignmentError):
            run_source(analyzed, RunOptions(checks_enabled=True),
                       require_well_typed=False)


class TestBackendParity:
    """Differential testing of the two execution paths: for every
    generated well-typed program, the erased Python compilation must
    produce exactly the interpreter's output."""

    @given(program_sketches())
    @settings(max_examples=25, deadline=None)
    def test_compiled_matches_interpreted(self, sketch):
        from repro.interp.compile_py import compile_to_python
        analyzed = analyze(sketch.emit())
        assert not analyzed.errors
        interpreted = run_source(analyzed, RunOptions()).output
        compiled = compile_to_python(analyzed).run()
        assert compiled == interpreted

    @given(program_sketches())
    @settings(max_examples=15, deadline=None)
    def test_compiled_rtsj_build_never_trips_on_well_typed(self, sketch):
        from repro.interp.compile_py import compile_to_python
        analyzed = analyze(sketch.emit())
        assert not analyzed.errors
        typed = compile_to_python(analyzed, checks=False).run()
        checked = compile_to_python(analyzed, checks=True).run()
        assert typed == checked
