"""Property-based tests of the region runtime and the parser round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfRegionMemoryError
from repro.lang import parse_program, pretty_program
from repro.rtsj.objects import ObjRef
from repro.rtsj.regions import LT, VT, RegionManager


# ---------------------------------------------------------------------------
# region-runtime invariants under random operation sequences
# ---------------------------------------------------------------------------

#: operations: ('alloc',) ('flush',) ('enter',) ('exit',) ('portal', on/off)
ops_strategy = st.lists(
    st.one_of(
        st.just(("alloc",)),
        st.just(("flush",)),
        st.just(("enter",)),
        st.just(("exit",)),
        st.tuples(st.just("portal"), st.booleans()),
    ),
    max_size=30)


class TestRegionInvariants:
    @given(st.sampled_from([LT, VT]), ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_any_sequence(self, policy, ops):
        mgr = RegionManager()
        area = mgr.create("r", "K", policy, lt_budget=200,
                          ancestors=set())
        area.portals = {"p": None}
        live_objs = []
        for op in ops:
            if op[0] == "alloc":
                obj = ObjRef("C", (area,), ("f",), area)
                try:
                    area.allocate(obj)
                    live_objs.append(obj)
                except OutOfRegionMemoryError:
                    assert policy == LT  # only LT budgets overflow
            elif op[0] == "flush":
                if area.can_flush():
                    area.flush()
                    # flushing kills every object allocated so far
                    assert all(not o.alive for o in live_objs)
                    live_objs = []
            elif op[0] == "enter":
                area.thread_count += 1
            elif op[0] == "exit":
                if area.thread_count > 0:
                    area.thread_count -= 1
            elif op[0] == "portal":
                area.portals["p"] = live_objs[-1] if (op[1]
                                                      and live_objs) \
                    else None
            # global invariants after every step
            assert area.thread_count >= 0
            assert area.bytes_used >= 0
            if policy == LT:
                assert area.bytes_used <= area.lt_budget
            assert area.bytes_used <= area.peak_bytes
            if area.thread_count > 0:
                assert not area.can_flush()
            if area.portals["p"] is not None:
                assert not area.can_flush()

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_flush_rule_portal_blocks(self, ops):
        mgr = RegionManager()
        area = mgr.create("r", "K", LT, 500, set())
        area.portals = {"p": None}
        obj = ObjRef("C", (area,), ("f",), area)
        area.allocate(obj)
        area.portals["p"] = obj
        # whatever the count does, a non-null portal blocks the flush
        for op in ops:
            if op[0] == "enter":
                area.thread_count += 1
            elif op[0] == "exit" and area.thread_count > 0:
                area.thread_count -= 1
            assert not area.can_flush()


# ---------------------------------------------------------------------------
# parser round-trip on generated programs
# ---------------------------------------------------------------------------

ident = st.from_regex(r"[a-z][a-zA-Z0-9]{0,5}", fullmatch=True).filter(
    lambda s: s not in {
        "class", "extends", "where", "owns", "outlives", "new", "null",
        "true", "false", "this", "if", "else", "while", "return", "fork",
        "int", "float", "boolean", "void", "heap", "immortal", "io",
        "print", "check", "sqrt", "itof", "ftoi", "yieldnow", "regionKind",
        "accesses",
    })


@st.composite
def small_programs(draw):
    """Random but syntactically valid programs: a class with scalar
    fields and arithmetic-heavy methods plus a main block."""
    n_fields = draw(st.integers(0, 3))
    fields = [f"int f{i};" for i in range(n_fields)]
    exprs = draw(st.lists(st.integers(-99, 99), min_size=1, max_size=5))
    stmts = [f"int v{i} = {value if value >= 0 else f'(0 - {-value})'};"
             for i, value in enumerate(exprs)]
    stmts.append(
        "int total = " + " + ".join(f"v{i}" for i in range(len(exprs)))
        + ";")
    stmts.append("print(total);")
    cls_name = draw(ident).capitalize() + "K"
    body = " ".join(fields)
    main = " ".join(stmts)
    return (f"class {cls_name}<Owner o> {{ {body} }}\n"
            f"{{ {main} }}")


class TestParserRoundTrip:
    @given(small_programs())
    @settings(max_examples=60, deadline=None)
    def test_pretty_parse_fixpoint(self, source):
        first = pretty_program(parse_program(source))
        second = pretty_program(parse_program(first))
        assert first == second

    @given(small_programs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_behaviour(self, source):
        from repro import RunOptions, analyze, run_source
        direct = run_source(analyze(source), RunOptions())
        roundtripped = run_source(
            analyze(pretty_program(parse_program(source))), RunOptions())
        assert direct.output == roundtripped.output
