"""Property-style robustness test (the PR's acceptance property):

For any seeded fault schedule over a well-typed program, the run must

* never produce a sanitizer violation (the recovery paths preserve the
  paper's invariants O1-O3/R1-R3 and the flush rule),
* end either clean or cleanly-diagnosed (a structured ReproError with a
  complete diagnostic, never a bare host exception),
* leave no wedged state behind: every thread is finished and every live
  area's thread count is back to zero.
"""

import sys
from pathlib import Path

import pytest

from repro import RunOptions
from repro.errors import ReproError, SanitizerViolation
from repro.interp.machine import Machine
from repro.rtsj.faults import FaultPlan

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import (PRODUCER_CONSUMER_SOURCE, REALTIME_SOURCE,  # noqa: E402
                      TSTACK_SOURCE, assert_well_typed)

PROGRAMS = [
    ("tstack", TSTACK_SOURCE),
    ("producer_consumer", PRODUCER_CONSUMER_SOURCE),
    ("realtime", REALTIME_SOURCE),
]

SEEDS = range(6)

#: every site enabled, rates high enough that most runs inject faults
PLAN_RATE = 0.1


def chaos_run(analyzed, seed):
    """One run under a seeded plan with sanitizer + degradation armed.
    Returns (machine, error): error is None for a completed run."""
    plan = FaultPlan(seed=seed, rate=PLAN_RATE)
    machine = Machine(analyzed, RunOptions(
        checks_enabled=True, validate=True, fault_plan=plan,
        sanitize=True, degrade=True, max_cycles=5_000_000))
    try:
        machine.run()
        return machine, None
    except ReproError as err:
        return machine, err


@pytest.mark.parametrize("name,source", PROGRAMS,
                         ids=[name for name, _ in PROGRAMS])
class TestSeededFaultSchedules:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_violates_never_wedges(self, name, source, seed):
        machine, err = chaos_run(assert_well_typed(source), seed)

        # never a sanitizer violation on a well-typed program
        assert not isinstance(err, SanitizerViolation), \
            f"sanitizer violation under seed {seed}: {err}"
        for diag in machine.scheduler.diagnostics:
            assert not isinstance(diag, SanitizerViolation)

        # clean end or structured diagnosis — chaos_run only catches
        # ReproError, so reaching this point already excludes bare
        # host exceptions; the diagnostic must be complete
        if err is not None:
            diag = err.diagnostic()
            assert diag["type"] and diag["message"]
            assert diag["cycle"] is not None

        # no wedged scheduler: every thread finished
        assert all(t.done for t in machine.scheduler.threads)
        # thread counts back to zero in every surviving area
        for area in machine.regions.live_areas():
            assert area.thread_count == 0, \
                (f"seed {seed}: area '{area.name}' ended with "
                 f"thread count {area.thread_count}")
        # the fault accounting is consistent
        injected = machine.fault_injector.injected
        assert machine.stats.faults_injected == len(injected)

    def test_schedule_is_deterministic(self, name, source):
        analyzed = assert_well_typed(source)
        a, err_a = chaos_run(analyzed, seed=1)
        b, err_b = chaos_run(analyzed, seed=1)
        from repro.rtsj.faults import fault_key
        assert fault_key(a.fault_injector.injected) == \
            fault_key(b.fault_injector.injected)
        assert a.stats.cycles == b.stats.cycles
        assert a.output == b.output
        assert type(err_a) is type(err_b)
