"""Property tests over generated subregion pipelines: the Section 2.2
flush rule must hold for any handoff pattern, policy, and payload size —
and both execution backends must agree on all of it."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import RunOptions, analyze, run_source
from repro.interp.compile_py import compile_to_python
from repro.interp.machine import Machine

PAYLOAD_FIELDS = ["int a;", "int b;", "int c;", "int d;"]


def pipeline_source(items: int, payload_fields: int, policy_lt: bool,
                    budget: int, hold_last: bool) -> str:
    """A single-threaded producer/consumer over one subregion: place an
    item, consume it, repeat; optionally leave the final item in the
    portal (which must then block the flush)."""
    fields = " ".join(PAYLOAD_FIELDS[:payload_fields])
    policy = f"LT({budget})" if policy_lt else "VT"
    consume_last = "" if hold_last else "h2.slot = null;"
    return f"""
regionKind Buf extends SharedRegion {{
    Sub : {policy} NoRT s;
}}
regionKind Sub extends SharedRegion {{
    Item<this> slot;
}}
class Item {{ {fields} int tag; }}
(RHandle<Buf r> h) {{
    int total = 0;
    int i = 0;
    while (i < {items}) {{
        (RHandle<Sub r2> h2 = h.s) {{
            Item it = new Item;
            it.tag = i;
            h2.slot = it;
        }}
        (RHandle<Sub r2> h2 = h.s) {{
            Item got = h2.slot;
            total = total + got.tag;
            if (i < {items} - 1) {{ h2.slot = null; }}
            else {{ {consume_last} }}
        }}
        i = i + 1;
    }}
    print(total);
}}
"""


@st.composite
def pipelines(draw):
    items = draw(st.integers(min_value=1, max_value=8))
    payload = draw(st.integers(min_value=0, max_value=4))
    policy_lt = draw(st.booleans())
    # budget always fits one item: header 16 + (payload+1)*8
    item_bytes = 16 + (payload + 1) * 8
    budget = draw(st.integers(min_value=item_bytes,
                              max_value=item_bytes * 3))
    hold_last = draw(st.booleans())
    return items, payload, policy_lt, budget, hold_last, item_bytes


class TestFlushRuleUnderAnyPattern:
    @given(pipelines())
    @settings(max_examples=30, deadline=None)
    def test_one_item_at_a_time_regardless_of_count(self, case):
        items, payload, policy_lt, budget, hold_last, item_bytes = case
        source = pipeline_source(items, payload, policy_lt, budget,
                                 hold_last)
        analyzed = analyze(source)
        assert not analyzed.errors, [str(e) for e in analyzed.errors]
        machine = Machine(analyzed, RunOptions())
        result = machine.run()
        assert result.output == [str(sum(range(items)))]
        sub = [a for a in machine.regions.areas
               if a.kind_name == "Sub"][0]
        # the flush rule kept the subregion at one item: even an LT
        # budget barely larger than a single item never overflowed
        assert sub.peak_bytes == item_bytes

    @given(pipelines())
    @settings(max_examples=20, deadline=None)
    def test_held_portal_blocks_final_flush(self, case):
        items, payload, policy_lt, budget, hold_last, _ib = case
        assume(hold_last)
        source = pipeline_source(items, payload, policy_lt, budget, True)
        analyzed = analyze(source)
        assert not analyzed.errors
        machine = Machine(analyzed, RunOptions())
        machine.run()
        sub = [a for a in machine.regions.areas
               if a.kind_name == "Sub"][0]
        # the last item was left in the portal: the region must NOT have
        # been flushed on the final exit (its bytes are still occupied)
        assert not sub.is_flushed

    @given(pipelines())
    @settings(max_examples=15, deadline=None)
    def test_backends_agree(self, case):
        items, payload, policy_lt, budget, hold_last, _ib = case
        source = pipeline_source(items, payload, policy_lt, budget,
                                 hold_last)
        analyzed = analyze(source)
        assert not analyzed.errors
        interpreted = run_source(analyzed, RunOptions()).output
        compiled = compile_to_python(analyzed).run()
        assert compiled == interpreted
