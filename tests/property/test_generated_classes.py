"""Property tests over generated class hierarchies: inheritance, dynamic
dispatch, and owner translation through ``extends`` chains must agree
between the typechecker and the interpreter, in both check modes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RunOptions, analyze, run_source


def build_hierarchy(depth: int, tags) -> str:
    """A chain C0 <: C1 <: ... where each level overrides tag() and adds
    a field; plus a driver that exercises dispatch at every level."""
    classes = []
    for i in range(depth):
        parent = f" extends C{i - 1}<o>" if i > 0 else ""
        classes.append(f"""
class C{i}<Owner o>{parent} {{
    int f{i};
    int tag() {{ return {tags[i]}; }}
    int level() {{ return {i}; }}
}}""")
    uses = []
    for i in range(depth):
        # statically typed at every ancestor level, dynamically C{i}
        uses.append(f"C0<r> v{i} = new C{i}<r>;")
        uses.append(f"print(v{i}.tag());")
    body = "\n    ".join(uses)
    return "\n".join(classes) + f"\n(RHandle<r> h) {{\n    {body}\n}}"


@st.composite
def hierarchies(draw):
    depth = draw(st.integers(min_value=1, max_value=5))
    tags = draw(st.lists(st.integers(0, 999), min_size=depth,
                         max_size=depth))
    return depth, tags


class TestInheritanceDispatch:
    @given(hierarchies())
    @settings(max_examples=25, deadline=None)
    def test_dispatch_uses_dynamic_class(self, case):
        depth, tags = case
        source = build_hierarchy(depth, tags)
        analyzed = analyze(source)
        assert not analyzed.errors, [str(e) for e in analyzed.errors]
        result = run_source(analyzed, RunOptions())
        assert result.output == [str(tags[i]) for i in range(depth)]

    @given(hierarchies())
    @settings(max_examples=15, deadline=None)
    def test_check_modes_agree(self, case):
        depth, tags = case
        analyzed = analyze(build_hierarchy(depth, tags))
        dyn = run_source(analyzed, RunOptions(checks_enabled=True))
        sta = run_source(analyzed, RunOptions(checks_enabled=False))
        assert dyn.output == sta.output


class TestQuantumIndependence:
    """For a single-threaded program, the scheduler quantum must not
    change behaviour or the cycle total."""

    SOURCE = """
class Cell { int v; Cell next; }
(RHandle<r> h) {
    Cell<r> head = null;
    int i = 0;
    while (i < 40) {
        Cell c = new Cell;
        c.v = i * 3 % 7;
        c.next = head;
        head = c;
        i = i + 1;
    }
    int total = 0;
    Cell w = head;
    while (w != null) { total = total + w.v; w = w.next; }
    print(total);
}
"""

    @given(st.integers(min_value=20, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_single_threaded_output_and_cycles(self, quantum):
        analyzed = analyze(self.SOURCE)
        assert not analyzed.errors
        result = run_source(analyzed, RunOptions(quantum=quantum))
        baseline = run_source(analyzed, RunOptions(quantum=2000))
        assert result.output == baseline.output
        assert result.cycles == baseline.cycles


class TestParserRobustness:
    """Arbitrary junk must produce a diagnostic, never an internal
    crash."""

    @given(st.text(alphabet="class{}<>();=.+intOwner abfork\n", max_size=80))
    @settings(max_examples=120, deadline=None)
    def test_junk_raises_only_static_errors(self, text):
        from repro.errors import StaticError
        from repro.lang import parse_program
        try:
            parse_program(text)
        except StaticError:
            pass  # LexError/ParseError are the contract

    @given(st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_unicode(self, text):
        from repro.errors import StaticError
        from repro.lang import parse_program
        try:
            parse_program(text)
        except StaticError:
            pass
