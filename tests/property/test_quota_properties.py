"""Quota admission properties: Retry-After is never a lie.

The resilient client sleeps exactly what ``Retry-After`` names and
then retries.  That discipline only kills the early-retry thundering
herd if the server's advertised wait is *sufficient*: a bucket that
denies with wait ``w`` must admit a retry ``ceil(w)`` seconds later,
for any rate/burst/traffic history and any clock value — including
huge epochs and clocks that step backwards (a backwards step must
never mint tokens).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.quota import TokenBucket
from repro.serve.server import _retry_after

RATES = st.floats(min_value=0.001, max_value=1000.0,
                  allow_nan=False, allow_infinity=False)
BURSTS = st.floats(min_value=1.0, max_value=64.0,
                   allow_nan=False, allow_infinity=False)
#: boundary clocks: epoch zero, sub-second, and far-future monotonic
#: readings (a host up for years) must all behave identically
CLOCKS = st.one_of(st.just(0.0),
                   st.floats(min_value=0.0, max_value=1e-3),
                   st.floats(min_value=0.0, max_value=1e9))
STEPS = st.lists(st.floats(min_value=0.0, max_value=5.0,
                           allow_nan=False, allow_infinity=False),
                 max_size=20)


@given(wait=st.floats(min_value=0.0, max_value=1e6,
                      allow_nan=False, allow_infinity=False))
def test_retry_after_header_is_a_ceiling(wait):
    advertised = int(_retry_after(wait))
    assert advertised >= 1
    assert advertised >= wait  # never names a too-short wait
    # and never gratuitously long: at most one second of slack
    assert advertised <= max(1, math.ceil(wait))


@settings(max_examples=200)
@given(rate=RATES, burst=BURSTS, now=CLOCKS, steps=STEPS)
def test_denied_request_succeeds_after_the_advertised_wait(
        rate, burst, now, steps):
    bucket = TokenBucket(rate, burst, now=now)
    clock = now
    # arbitrary admission history first — the property must hold from
    # any reachable bucket state, not just a freshly drained one
    for step in steps:
        clock += step
        bucket.allow(now=clock)
    # drain to a denial (bounded: burst <= 64)
    denied_wait = None
    for _ in range(int(burst) + 2):
        ok, wait = bucket.allow(now=clock)
        if not ok:
            denied_wait = wait
            break
    if denied_wait is None:
        return  # refill outpaced the drain at this rate; nothing to check
    advertised = int(_retry_after(denied_wait))
    ok, residual = bucket.allow(now=clock + advertised)
    # the advertised wait must be sufficient; any residual is float
    # dust far below every clock resolution the server can observe
    assert ok or residual < 1e-6


@settings(max_examples=200)
@given(rate=RATES, burst=BURSTS, now=st.floats(min_value=10.0,
                                               max_value=1e9),
       back=st.floats(min_value=0.0, max_value=10.0))
def test_backwards_clock_never_mints_tokens(rate, burst, now, back):
    bucket = TokenBucket(rate, burst, now=now)
    bucket.allow(now=now)  # spend one token
    before = bucket.tokens
    bucket.allow(now=now - back, cost=float("inf"))  # denied probe
    assert bucket.tokens <= before  # no refill from going backwards


@given(rate=RATES, burst=BURSTS, now=CLOCKS)
def test_burst_bounds_the_bucket_forever(rate, burst, now):
    bucket = TokenBucket(rate, burst, now=now)
    bucket.allow(now=now + 1e6)  # any amount of idle refill
    assert bucket.tokens <= burst
