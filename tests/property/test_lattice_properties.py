"""Property-based tests for the kind lattice and the environment
relations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.env import Env
from repro.core.kinds import (BUILTIN_KINDS, K_LOCAL_REGION,
                              K_SHARED_REGION, Kind, KindTable)
from repro.core.owners import HEAP, IMMORTAL, Owner
from repro.core.program import build_program_info
from repro.lang import parse_program


def make_table(chain_length: int) -> KindTable:
    """A user-kind chain K0 <: K1 <: ... <: SharedRegion."""
    table = KindTable()
    for i in range(chain_length):
        parent = Kind(f"K{i + 1}") if i + 1 < chain_length \
            else K_SHARED_REGION
        table.supers[f"K{i}"] = ((), parent)
    return table


builtin_kinds = st.sampled_from(
    [Kind(name) for name in BUILTIN_KINDS]
    + [Kind(name, lt=True) for name in BUILTIN_KINDS])


class TestSubkindLattice:
    @given(builtin_kinds)
    def test_reflexive(self, kind):
        assert KindTable().is_subkind(kind, kind)

    @given(builtin_kinds, builtin_kinds, builtin_kinds)
    def test_transitive(self, a, b, c):
        table = KindTable()
        if table.is_subkind(a, b) and table.is_subkind(b, c):
            assert table.is_subkind(a, c)

    @given(builtin_kinds, builtin_kinds)
    def test_antisymmetric(self, a, b):
        table = KindTable()
        if table.is_subkind(a, b) and table.is_subkind(b, a):
            assert a == b

    @given(builtin_kinds)
    def test_owner_is_top(self, kind):
        assert KindTable().is_subkind(kind.strip_lt(), Kind("Owner"))

    @given(builtin_kinds)
    def test_delete_lt(self, kind):
        # k:LT <= k always
        assert KindTable().is_subkind(kind.with_lt(), kind.strip_lt())

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=5))
    def test_user_chain_ordering(self, length, i, j):
        table = make_table(length)
        i, j = i % length, j % length
        lower, higher = Kind(f"K{min(i, j)}"), Kind(f"K{max(i, j)}")
        assert table.is_subkind(lower, higher)
        if i != j:
            assert not table.is_subkind(higher, lower)

    @given(st.integers(min_value=1, max_value=6))
    def test_user_chain_reaches_shared(self, length):
        table = make_table(length)
        assert table.is_subkind(Kind("K0"), K_SHARED_REGION)
        assert not table.is_subkind(K_SHARED_REGION, Kind("K0"))


# -- environment relation properties ---------------------------------------

def env_with_edges(edges):
    """Env over owners o0..o5 with the given outlives edges."""
    info = build_program_info(parse_program("class C<Owner a> { }"))
    env = Env.initial(info)
    for i in range(6):
        env = env.with_owner(f"o{i}", K_LOCAL_REGION)
    for a, b in edges:
        env = env.with_outlives(Owner(f"o{a}"), Owner(f"o{b}"))
    return env


edge_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12)


class TestOutlivesClosure:
    @given(edge_lists, st.integers(0, 5))
    def test_reflexive(self, edges, i):
        env = env_with_edges(edges)
        assert env.outlives(Owner(f"o{i}"), Owner(f"o{i}"))

    @given(edge_lists, st.integers(0, 5), st.integers(0, 5),
           st.integers(0, 5))
    @settings(max_examples=60)
    def test_transitive(self, edges, i, j, k):
        env = env_with_edges(edges)
        a, b, c = Owner(f"o{i}"), Owner(f"o{j}"), Owner(f"o{k}")
        if env.outlives(a, b) and env.outlives(b, c):
            assert env.outlives(a, c)

    @given(edge_lists, st.integers(0, 5))
    def test_heap_immortal_top(self, edges, i):
        env = env_with_edges(edges)
        assert env.outlives(HEAP, Owner(f"o{i}"))
        assert env.outlives(IMMORTAL, Owner(f"o{i}"))

    @given(edge_lists, st.integers(0, 5), st.integers(0, 5))
    def test_closure_contains_declared_edges(self, edges, i, j):
        env = env_with_edges(edges + [(i, j)])
        assert env.outlives(Owner(f"o{i}"), Owner(f"o{j}"))

    @given(edge_lists, st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=60)
    def test_owns_implies_outlives(self, edges, i, j):
        env = env_with_edges(edges).with_owns(Owner(f"o{i}"),
                                              Owner(f"o{j}"))
        assert env.outlives(Owner(f"o{i}"), Owner(f"o{j}"))

    @given(edge_lists, st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=60)
    def test_effect_coverage_monotone(self, edges, i, j):
        # a larger permitted set never covers less
        env = env_with_edges(edges)
        a, b = Owner(f"o{i}"), Owner(f"o{j}")
        small = frozenset({a})
        large = frozenset({a, b})
        for target in (Owner(f"o{k}") for k in range(6)):
            if env.effect_covers(small, target):
                assert env.effect_covers(large, target)
