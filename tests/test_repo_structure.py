"""Deliverable inventory: the repository keeps its promised shape."""

from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


class TestDeliverables:
    def test_documentation_files(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/RULES.md", "docs/LANGUAGE.md",
                     "docs/TUTORIAL.md", "docs/API.md"):
            path = REPO / name
            assert path.exists(), name
            assert len(path.read_text()) > 500, name

    def test_examples_present_and_nontrivial(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        names = {p.name for p in examples}
        assert "quickstart.py" in names
        for path in examples:
            text = path.read_text()
            assert '"""' in text, f"{path.name} lacks a docstring"
            assert "def main()" in text

    def test_benchmark_drivers_cover_both_figures(self):
        drivers = {p.name for p in (REPO / "benchmarks").glob("test_*.py")}
        assert "test_fig11_overhead.py" in drivers
        assert "test_fig12_check_overhead.py" in drivers
        assert len(drivers) >= 6  # + ablations, scalability, erasure...

    def test_core_packages(self):
        for pkg in ("lang", "core", "rtsj", "interp", "bench", "tools"):
            assert (REPO / "src" / "repro" / pkg / "__init__.py").exists()

    def test_every_module_has_a_docstring(self):
        import ast as python_ast
        missing = []
        for path in (REPO / "src").rglob("*.py"):
            tree = python_ast.parse(path.read_text())
            if python_ast.get_docstring(tree) is None \
                    and path.name != "__main__.py":
                missing.append(str(path))
        assert not missing, missing

    def test_design_confirms_paper_identity(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "Paper identity confirmed" in text

    def test_experiments_records_paper_vs_measured(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for figure in ("Figure 11", "Figure 12"):
            assert figure in text
        for program in ("Array", "Tree", "Water", "Barnes", "ImageRec",
                        "http", "game", "phone"):
            assert program in text
