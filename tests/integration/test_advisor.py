"""Tests for the region-sizing advisor (repro.tools.advisor)."""

from repro import RunOptions
from repro.rtsj.regions import LT, VT
from repro.tools import advise


class TestLTSizing:
    OVERSIZED = """
class Cell { int v; }
(RHandle<LocalRegion : LT(65536) r> h) {
    Cell<r> a = new Cell<r>;
    print(a == null);
}
"""

    TIGHT = """
class Cell { int v; Cell next; }
(RHandle<LocalRegion : LT(200) r> h) {
    Cell<r> head = null;
    int i = 0;
    while (i < 6) {
        Cell<r> c = new Cell<r>;
        c.next = head;
        head = c;
        i = i + 1;
    }
    print(i);
}
"""

    def test_over_provisioned_flagged(self):
        report = advise(self.OVERSIZED)
        advice = [a for a in report.regions if a.policy == LT][0]
        assert advice.declared_budget == 65536
        assert "over-provisioned" in advice.note
        assert advice.suggested_budget < advice.declared_budget

    def test_near_overflow_flagged(self):
        report = advise(self.TIGHT)
        advice = [a for a in report.regions if a.policy == LT][0]
        # 6 cells * 32 bytes = 192 of 200: near overflow
        assert advice.peak_bytes == 192
        assert "near overflow" in advice.note
        assert advice.suggested_budget >= advice.peak_bytes

    def test_suggestion_has_headroom_and_granularity(self):
        report = advise(self.TIGHT)
        advice = [a for a in report.regions if a.policy == LT][0]
        assert advice.suggested_budget % 256 == 0
        assert advice.suggested_budget >= advice.peak_bytes * 1.2


class TestVTtoLTCandidates:
    SMALL_VT = """
class Cell { int v; }
(RHandle<r> h) {
    Cell<r> a = new Cell<r>;
    print(a != null);
}
"""

    def test_small_stable_vt_is_candidate(self):
        report = advise(self.SMALL_VT)
        assert report.vt_to_lt_candidates()

    def test_lt_suggestions_mapping(self):
        report = advise(TestLTSizing.TIGHT)
        suggestions = report.lt_suggestions()
        assert len(suggestions) == 1
        assert all(v % 256 == 0 for v in suggestions.values())


class TestHeapEscape:
    CHURNY = """
class Cell { int v; }
{
    int i = 0;
    while (i < 300) {
        Cell<heap> c = new Cell<heap>;
        c.v = i;
        i = i + 1;
    }
    print(i);
}
"""

    def test_heap_death_rate_reported(self):
        report = advise(self.CHURNY, RunOptions(gc_trigger_bytes=4000))
        assert report.gc_runs > 0
        assert report.heap_allocated >= 300
        assert report.heap_collected > 0
        assert 0 < report.heap_death_rate <= 1.0

    def test_format_renders(self):
        report = advise(TestLTSizing.TIGHT)
        text = report.format()
        assert "Region" in text
        assert "heap:" in text
