"""The codegen backends against the seed equivalence fixture.

``tests/data/seed_equivalence.json`` pins the observable identity of
the seed interpreter across the benchmark registry.  Every compiled
backend — Python-source fused and faithful, and the C backend where a
toolchain exists — must reproduce those values *exactly*: simulated
cycles, output hash, check counters, allocation/free counts, steps.

Also covers the routing contract (which backend actually executes and
why), the bail-and-fallback re-execution chain, and the
``repro bench --suite codegen`` differential harness plus its
committed ``BENCH_codegen.json`` payload.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import shutil

import pytest

from repro.bench import codegen as bench_codegen
from repro.bench.suite import BENCHMARKS
from repro.core.api import analyze
from repro.errors import ReproError
from repro.interp.machine import Machine, RunOptions, execute

FIXTURE_PATH = (pathlib.Path(__file__).parent.parent / "data"
                / "seed_equivalence.json")
FIXTURE = json.loads(FIXTURE_PATH.read_text())["fixture"]

MODES = {"dynamic": True, "static": False}


def _c_available() -> bool:
    if not any(shutil.which(cc) for cc in ("cc", "gcc", "clang")):
        return False
    try:
        import cffi  # noqa: F401
    except ImportError:
        return False
    return True


C_AVAILABLE = _c_available()

needs_c = pytest.mark.skipif(not C_AVAILABLE,
                             reason="no C toolchain or cffi")


def _capture(result):
    return {
        "cycles": result.stats.cycles,
        "output_sha256": hashlib.sha256(
            "\n".join(result.output).encode()).hexdigest(),
        "output_lines": len(result.output),
        "assignment_checks": result.stats.assignment_checks,
        "read_checks": result.stats.read_checks,
        "allocations": result.stats.allocations,
        "objects_freed": result.stats.objects_freed,
        "steps": result.stats.steps,
    }


def _run(name, mode, backend):
    analyzed = analyze(BENCHMARKS[name].source(fast=True))
    assert not analyzed.errors
    result, machine = execute(analyzed, RunOptions(
        checks_enabled=MODES[mode], validate=False, instrument=False,
        backend=backend))
    return result, machine


# after the block closes, the interpreter's flat frame leaks the inner
# local `x` over the implicit this-field read in `print(x)` — the one
# reachable shape of ``use-of-leaked-local`` that stays a hazard after
# tainted *redeclarations* were proven exact
LEAKED_USE_SOURCE = """\
class C<Owner o> {
  int x;
  void m() {
    x = 5;
    if (x > 0) { int x = 1; print(x); }
    print(x);
  }
}
{ C<heap> c = new C<heap>; c.m(); }
"""


def _run_source(source, mode, backend):
    analyzed = analyze(source)
    assert not analyzed.errors
    result, machine = execute(analyzed, RunOptions(
        checks_enabled=MODES[mode], validate=False, instrument=False,
        backend=backend))
    return result, machine


@pytest.mark.parametrize("backend", ["py", "py-fused", "py-faithful"])
@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("name", sorted(FIXTURE))
def test_py_backends_match_seed(name, mode, backend):
    result, _machine = _run(name, mode, backend)
    assert _capture(result) == FIXTURE[name][mode]


@needs_c
@pytest.mark.parametrize("name", sorted(FIXTURE))
def test_c_backend_matches_seed(name):
    # whatever the ladder routes to (genuine C, py fallback for
    # hazardous programs, interp for http) the observables must match
    result, _machine = _run(name, "static", "c")
    assert _capture(result) == FIXTURE[name]["static"]


# ---------------------------------------------------------------------------
# routing: which backend actually runs, and why
# ---------------------------------------------------------------------------

class TestRouting:
    def test_py_prefers_fused_form(self):
        _result, machine = _run("Array", "static", "py")
        assert machine.program.backend == "py-fused"
        assert machine.codegen_fallback is None

    def test_dynamic_mode_still_fuses(self):
        # the fused form compiles ownership checks in when enabled;
        # only the C backend is checks-erased
        _result, machine = _run("Array", "dynamic", "py")
        assert machine.program.backend == "py-fused"

    def test_hazardous_program_falls_to_faithful(self):
        # a *use* of a leaked local over an implicit this-field: the
        # interpreter's flat frame leaks the if-block's x over the
        # field, which lexical renaming cannot mirror — the surviving
        # core of the use-of-leaked-local hazard after the narrowing
        _result, machine = _run_source(LEAKED_USE_SOURCE, "static", "py")
        assert machine.program.backend == "py-faithful"

    def test_tainted_redeclare_graduates_to_fused(self):
        # redeclaring a name whose block closed is exact under renaming
        # (the flat frame overwrites the slot unconditionally), so
        # Barnes and game fuse now
        for name in ("Barnes", "game"):
            _result, machine = _run(name, "static", "py")
            assert machine.program.backend == "py-fused", name

    def test_unsupported_program_falls_to_interp(self):
        _result, machine = _run("http", "static", "py")
        assert machine.program is None  # interpreter ran
        assert machine.codegen_fallback  # and said why

    @needs_c
    def test_c_backend_compiles_supported_program(self):
        _result, machine = _run("Array", "static", "c")
        assert machine.program.backend == "c"
        assert machine.codegen_fallback is None

    @needs_c
    def test_c_chains_down_on_hazards(self):
        _result, machine = _run_source(LEAKED_USE_SOURCE, "static", "c")
        assert machine.program.backend == "py-faithful"
        assert "c unavailable" in machine.codegen_fallback

    @needs_c
    def test_c_declines_dynamic_checks(self):
        _result, machine = _run("Array", "dynamic", "c")
        assert machine.program.backend == "py-fused"
        assert "checks-erased" in machine.codegen_fallback

    def test_missing_toolchain_is_graceful(self, monkeypatch):
        # a never-seen source so neither the in-process lib cache nor
        # an on-disk artifact can satisfy the request without a cc
        import repro.interp.codegen_c as codegen_c
        monkeypatch.setattr(codegen_c.shutil, "which",
                            lambda *_a, **_k: None)
        analyzed = analyze("(RHandle<r> h) { print(40 + 3); }")
        result, machine = execute(analyzed, RunOptions(
            checks_enabled=False, validate=False, instrument=False,
            backend="c"))
        assert result.output == ["43"]
        assert machine.program.backend == "py-fused"
        assert "no C toolchain" in machine.codegen_fallback

    def test_bail_reexecutes_identically(self):
        # a cycle limit the program overruns: compiled forms bail and
        # execute() walks the fallback chain until the interpreter
        # produces the authoritative error
        analyzed = analyze(BENCHMARKS["Array"].source(fast=True))
        outcomes = []
        for backend in ("interp", "py", "c"):
            try:
                execute(analyzed, RunOptions(
                    checks_enabled=False, validate=False,
                    instrument=False, max_cycles=300, backend=backend))
                outcomes.append(("ok",))
            except ReproError as err:
                outcomes.append((type(err).__name__, str(err)))
        assert outcomes[0][0] != "ok"  # the limit actually fires
        assert outcomes[1] == outcomes[0]
        assert outcomes[2] == outcomes[0]

    def test_instrumented_run_declines_fused_and_c(self):
        # obs hooks are compiled out of the fused/C forms, so an
        # instrumented run must land on a form that still records
        analyzed = analyze(BENCHMARKS["Tree"].source(fast=True))
        machine = Machine(analyzed, RunOptions(
            checks_enabled=False, validate=False, backend="c"))
        result = machine.run()
        assert machine.program is None or \
            machine.program.backend == "py-faithful"
        assert not result.stats.tracer.null


# ---------------------------------------------------------------------------
# the differential bench harness and its committed payload
# ---------------------------------------------------------------------------

class TestCodegenBench:
    def test_measure_row_equivalence_fields(self):
        divergences = []
        row = bench_codegen.measure_benchmark(
            "Array", ["py"], fast=True, repeats=1,
            divergences=divergences)
        assert divergences == []
        for mode in MODES:
            cell = row[mode]["py"]
            assert cell["equivalent"] is True
            assert cell["cycles"] == FIXTURE["Array"][mode]["cycles"]
            assert cell["output_sha256"] == \
                FIXTURE["Array"][mode]["output_sha256"]
        assert row["static"]["py"]["backend_used"] == "py-fused"

    def test_measure_payload_and_compare_roundtrip(self, tmp_path):
        payload = bench_codegen.measure(["Array"], backends=("py",),
                                        fast=True, repeats=1)
        assert payload["schema"] == bench_codegen.SCHEMA
        assert payload["divergences"] == []
        assert payload["aggregate"]["py"]["speedup_vs_seed"] > 0
        path = tmp_path / "bench.json"
        bench_codegen.save_payload(payload, str(path))
        loaded = bench_codegen.load_payload(str(path))
        assert bench_codegen.compare(loaded, payload,
                                     threshold=10.0) == []

    def test_compare_flags_cycle_drift_and_divergence(self):
        payload = bench_codegen.measure(["Array"], backends=("py",),
                                        fast=True, repeats=1)
        drifted = json.loads(json.dumps(payload))
        drifted["benchmarks"]["Array"]["static"]["py"]["cycles"] += 1
        failures = bench_codegen.compare(drifted, payload)
        assert any("determinism break" in f for f in failures)

        poisoned = json.loads(json.dumps(payload))
        poisoned["divergences"] = ["Array/static/py: cycles differ"]
        failures = bench_codegen.compare(poisoned, payload)
        assert any("cycles differ" in f for f in failures)

    def test_min_speedup_gate(self):
        payload = bench_codegen.measure(["Array"], backends=("py",),
                                        fast=True, repeats=1)
        assert bench_codegen.check_min_speedup(payload, "py", 0.01) == []
        failures = bench_codegen.check_min_speedup(payload, "py", 1e9)
        assert failures and "below" in failures[0]
        failures = bench_codegen.check_min_speedup(payload, "zz", 1.0)
        assert failures and "no speedup recorded" in failures[0]

    def test_skipped_c_rows_void_the_aggregate(self, monkeypatch):
        import repro.interp.codegen_c as codegen_c
        monkeypatch.setattr(codegen_c.shutil, "which",
                            lambda *_a, **_k: None)
        monkeypatch.setattr(codegen_c, "_LIBS", {})
        payload = bench_codegen.measure(["game"], backends=("c",),
                                        fast=True, repeats=1)
        # game's C row falls back for hazards (a program property, so
        # it is measured); http-style toolchain skips would void it
        assert payload["divergences"] == []

    def test_committed_payload_is_current(self):
        root = pathlib.Path(__file__).parent.parent.parent
        committed = bench_codegen.load_payload(
            str(root / "BENCH_codegen.json"))
        assert committed["schema"] == bench_codegen.SCHEMA
        assert committed["divergences"] == []
        # the acceptance bar: >=10x aggregate static speedup vs the
        # committed seed interpreter baseline
        assert committed["aggregate"]["py"]["speedup_vs_seed"] >= 10.0
        assert bench_codegen.check_min_speedup(committed, "py",
                                               10.0) == []
        # and the simulated cycles it records are the fixture's
        for name, row in committed["benchmarks"].items():
            for mode in MODES:
                for backend, cell in row[mode].items():
                    if "cycles" in cell:
                        assert cell["cycles"] == \
                            FIXTURE[name][mode]["cycles"], \
                            (name, mode, backend)
                    if isinstance(cell, dict) and \
                            cell.get("equivalent") is False:
                        pytest.fail(f"{name}/{mode}/{backend} diverged")
