"""Integration tests for the continuous-telemetry plane: the CLI
telemetry flags, the sampling tier's cycle neutrality, the metricsd
scrape path, and the `repro report` regression gate."""

import io
import json
import urllib.request
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main
from repro.core.api import analyze
from repro.interp.machine import Machine, RunOptions
from repro.obs.telemetry import TelemetryStore, validate_envelope

#: a program with enough regions, allocations, and checks to exercise
#: every high-volume event kind the sampling tier thins
PROGRAM = """
class Cell<Owner o> { int v; Cell<o> next; }
class Chain<Owner o> {
    Cell<o> head;
    void build(int n) accesses o, heap {
        int i = 0;
        while (i < n) {
            Cell<o> c = new Cell<o>;
            c.v = i;
            c.next = head;
            head = c;
            i = i + 1;
        }
    }
}
(RHandle<r> h) {
    Chain<r> chain = new Chain<r>;
    chain.build(40);
    (RHandle<r2> h2) {
        Cell<r2> scratch = new Cell<r2>;
        scratch.v = 7;
        print(scratch.v);
    }
    print(1);
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "chain.rtj"
    path.write_text(PROGRAM)
    return str(path)


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TestSamplingCycleNeutrality:
    """The always-on tier must never perturb simulated results."""

    def _cycles(self, **options):
        analyzed = analyze(PROGRAM)
        assert not analyzed.errors
        machine = Machine(analyzed, RunOptions(checks_enabled=True,
                                               **options))
        result = machine.run()
        return result.stats.cycles, result.output

    def test_sampled_recording_is_cycle_neutral(self):
        plain = self._cycles()
        recorded = self._cycles(record=True, record_sample=8)
        traced = self._cycles(trace_detail=True, trace_sample=8)
        assert recorded == plain
        assert traced == plain

    def test_sampled_recorder_keeps_exact_check_totals(self):
        analyzed = analyze(PROGRAM)
        full = Machine(analyzed, RunOptions(checks_enabled=True,
                                            record=True))
        full.run()
        sampled = Machine(analyzed, RunOptions(checks_enabled=True,
                                               record=True,
                                               record_sample=5))
        sampled.run()
        assert sampled.recorder.kind_counts == full.recorder.kind_counts
        assert sampled.recorder.check_totals \
            == full.recorder.check_totals
        assert sampled.recorder.sampled_out > 0
        assert sampled.recorder.total < full.recorder.total

    def test_overhead_gauge_exported(self):
        analyzed = analyze(PROGRAM)
        machine = Machine(analyzed, RunOptions(checks_enabled=True,
                                               record=True))
        machine.run()
        from repro.obs import to_prometheus
        text = to_prometheus(machine.stats.metrics)
        assert 'repro_observability_overhead_seconds{' \
               'component="tracer"}' in text
        assert 'component="flightrec"' in text
        assert 'repro_flight_events{disposition="seen"}' in text


class TestTelemetryCli:
    def test_run_records_valid_envelope(self, program_file, tmp_path):
        store_dir = str(tmp_path / "tstore")
        code, _out, err = run_cli(
            "run", program_file, "--dynamic-checks",
            "--record-out", str(tmp_path / "f.jsonl"),
            "--record-sample", "4", "--trace-sample", "4",
            "--telemetry-store", store_dir)
        assert code == 0
        assert "telemetry: recorded run envelope" in err
        store = TelemetryStore(store_dir)
        assert store.validate() == []
        (envelope,) = store.load_recent(1, kind="run")
        assert validate_envelope(envelope) == []
        assert envelope["summary"]["assignment_checks"] > 0
        assert envelope["flight"]["sample"] == 4
        assert envelope["meta"]["mode"] == "dynamic"
        assert "repro_run_cycles" in envelope["metrics"]
        assert envelope["overhead"]["flightrec_s"] >= 0.0

    def test_chaos_records_taxonomy(self, program_file, tmp_path):
        store_dir = str(tmp_path / "tstore")
        code, _out, _err = run_cli(
            "chaos", program_file, "--seeds", "2",
            "--telemetry-store", store_dir)
        assert code in (0, 4)  # campaign result, not telemetry, decides
        (envelope,) = TelemetryStore(store_dir).load_recent(
            1, kind="chaos")
        assert envelope["chaos"]["runs"] == 2
        assert "statuses" in envelope["chaos"]
        assert "by_program" in envelope["chaos"]

    def test_serve_metrics_scrapes_during_run(self, program_file,
                                              tmp_path):
        code, _out, err = run_cli(
            "run", program_file, "--serve-metrics", "0",
            "--telemetry-store", str(tmp_path / "tstore"))
        assert code == 0
        assert "serving /metrics on http://" in err


def _interp_payload(wall=0.1, cycles=1000):
    return {"schema": "repro-bench-interp/1", "benchmarks": {
        "array": {"dynamic": {"wall_s": wall, "cycles": cycles},
                  "static": {"wall_s": wall / 2, "cycles": 500}}}}


class TestReportGate:
    """The CI regression gate: exit 0 on committed baselines, exit 3 on
    an injected slowdown."""

    def _seed(self, tmp_path, walls):
        store_dir = str(tmp_path / "tstore")
        store = TelemetryStore(store_dir)
        from repro.obs.telemetry import make_envelope
        for i, wall in enumerate(walls):
            store.append(make_envelope(
                "bench", created_at=1000.0 + i, git_sha="",
                bench={"suite": "interp",
                       "payload": _interp_payload(wall)}))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_interp_payload()))
        return store_dir, str(baseline)

    def test_passes_on_stable_history(self, tmp_path):
        store_dir, baseline = self._seed(tmp_path, [0.101, 0.099, 0.1])
        code, out, err = run_cli(
            "report", "--store", store_dir,
            "--baseline-interp", baseline)
        assert code == 0
        assert "no regression" in err
        assert "array/dynamic" in out

    def test_fails_on_injected_slowdown(self, tmp_path):
        store_dir, baseline = self._seed(tmp_path, [0.1, 0.1])
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(_interp_payload(wall=0.5)))
        code, _out, err = run_cli(
            "report", "--store", store_dir,
            "--baseline-interp", baseline,
            "--current-interp", str(slow))
        assert code == 3
        assert "regression" in err

    def test_fails_on_determinism_break(self, tmp_path):
        store_dir, baseline = self._seed(tmp_path, [0.1])
        drift = tmp_path / "drift.json"
        drift.write_text(json.dumps(_interp_payload(cycles=1001)))
        code, _out, err = run_cli(
            "report", "--store", store_dir,
            "--baseline-interp", baseline,
            "--current-interp", str(drift))
        assert code == 3
        assert "determinism" in err

    def test_json_and_html_renderings(self, tmp_path):
        store_dir, baseline = self._seed(tmp_path, [0.1, 0.1])
        code, out, _err = run_cli(
            "report", "--store", store_dir,
            "--baseline-interp", baseline, "--format", "json")
        assert code == 0
        report = json.loads(out)
        assert report["schema"] == "repro-report/1"
        html_path = tmp_path / "report.html"
        code, _out, err = run_cli(
            "report", "--store", store_dir,
            "--baseline-interp", baseline,
            "--format", "html", "--out", str(html_path))
        assert code == 0
        assert "<svg" not in html_path.read_text() \
            or "polyline" in html_path.read_text()
        assert "repro regression observatory" in html_path.read_text()

    def test_nothing_to_judge_errors(self, tmp_path):
        code, _out, err = run_cli(
            "report", "--store", str(tmp_path / "empty"),
            "--baseline-interp", str(tmp_path / "missing.json"))
        assert code == 1


class TestBenchTelemetryAndScrape:
    """bench --telemetry feeds the store the observatory and metricsd
    read; the scrape output round-trips through the library parser."""

    def test_bench_envelope_then_report(self, tmp_path):
        store_dir = str(tmp_path / "tstore")
        code, _out, _err = run_cli(
            "bench", "--only", "Array", "--repeats", "1",
            "--telemetry-store", store_dir)
        assert code == 0
        store = TelemetryStore(store_dir)
        (envelope,) = store.load_recent(1, kind="bench")
        assert envelope["bench"]["suite"] == "interp"
        payload = envelope["bench"]["payload"]
        assert "Array" in payload["benchmarks"]
        # a report judged against this same payload as baseline: ok
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(payload))
        code, out, _err = run_cli(
            "report", "--store", store_dir,
            "--baseline-interp", str(baseline))
        assert code == 0
        assert "Array/dynamic" in out

    def test_scrape_round_trips_through_parser(self, tmp_path):
        store_dir = str(tmp_path / "tstore")
        store = TelemetryStore(store_dir)
        from repro.obs import MetricsRegistry
        from repro.obs.telemetry import make_envelope
        reg = MetricsRegistry()
        reg.counter("repro_c", "help").labels(kind="x").inc(2)
        h = reg.histogram("repro_h", "hist", buckets=(10, 100))
        h.observe(5)
        store.append(make_envelope("run", created_at=1.0, git_sha="",
                                   metrics=reg.to_dict()))
        from repro.obs.live import TelemetryServer
        with TelemetryServer(store=store).serve_background() as server:
            url = f"http://{server.host}:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                body = response.read().decode()
        from repro.obs import parse_prometheus
        _help, types, samples = parse_prometheus(body)
        assert types["repro_c"] == "counter"
        assert samples[("repro_c", (("kind", "x"),))] == 2.0
        assert samples[("repro_h_bucket", (("le", "+Inf"),))] == 1.0
