"""Integration tests: the paper's own examples behave as the paper says.

* Figure 5 — TStack: legal types s1–s5 accepted, illegal s6/s7 rejected.
* Figure 6 — ownership/outlives relation extraction.
* Figure 8 — producer/consumer through a subregion with portals.
* Section 2.3 — real-time threads in LT subregions.
"""

import sys
from pathlib import Path

from repro import RunOptions, analyze, run_source
from repro.interp.machine import Machine

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import (PRODUCER_CONSUMER_SOURCE, REALTIME_SOURCE,  # noqa: E402
                      TSTACK_SOURCE, assert_rejected, assert_well_typed,
                      run_both_modes)


class TestFigure5:
    def test_tstack_well_typed(self):
        assert_well_typed(TSTACK_SOURCE)

    def test_tstack_runs_identically_in_both_modes(self):
        dyn, sta = run_both_modes(TSTACK_SOURCE)
        assert dyn.output == ["0"]
        assert dyn.stats.assignment_checks > 0

    def test_illegal_s6(self):
        bad = TSTACK_SOURCE.replace(
            "s1.push(new T<r2>);",
            "TStack<r1, r2> s6 = null; s1.push(new T<r2>);")
        assert_rejected(bad, rule="TYPE C", fragment="does not outlive")

    def test_illegal_s7(self):
        bad = TSTACK_SOURCE.replace(
            "s1.push(new T<r2>);",
            "TStack<heap, r1> s7 = null; s1.push(new T<r2>);")
        assert_rejected(bad, rule="TYPE C")

    def test_nodes_encapsulated_in_stack(self):
        # property O3: TStack owns its TNodes; they cannot leak out
        bad = TSTACK_SOURCE.replace(
            "s1.push(new T<r2>);",
            "TNode<r2, r2> stolen = s1.head; s1.push(new T<r2>);")
        assert_rejected(bad, fragment="encapsulated")


class TestFigure6:
    def test_ownership_graph_matches_figure(self):
        analyzed = assert_well_typed(TSTACK_SOURCE)
        machine = Machine(analyzed, RunOptions())

        snapshots = []

        class Capture(list):
            def append(self, item):
                snapshots.append(machine.ownership_graph())
                super().append(item)

        machine.output = Capture()
        machine.run()
        graph = snapshots[0]

        labels = {graph.labels[n] for n in graph.node_kinds
                  if graph.node_kinds[n] == "region"}
        assert {"heap", "immortal", "r1", "r2"} <= labels

        # O1: the ownership relation forms a forest
        assert graph.is_forest()

        # the stacks are owned by regions; their nodes by the stacks
        stacks = [n for n, label in graph.labels.items()
                  if label.startswith("TStack")]
        assert len(stacks) == 5
        nodes = [n for n, label in graph.labels.items()
                 if label.startswith("TNode")]
        for node in nodes:
            owner = graph.owner_of(node)
            assert graph.labels[owner].startswith("TStack")

        # outlives: r1 ≽ r2 but not vice versa
        closure = graph.outlives_closure()
        by_label = {v: k for k, v in graph.labels.items()}
        assert (by_label["r1"], by_label["r2"]) in closure
        assert (by_label["r2"], by_label["r1"]) not in closure


class TestFigure8:
    def test_producer_consumer_typechecks(self):
        assert_well_typed(PRODUCER_CONSUMER_SOURCE)

    def test_frames_flow_in_order(self):
        dyn, sta = run_both_modes(PRODUCER_CONSUMER_SOURCE, quantum=300,
                                  max_cycles=5_000_000)
        assert dyn.output == ["0", "10", "20", "30", "40"]

    def test_subregion_flushed_each_iteration(self):
        analyzed = assert_well_typed(PRODUCER_CONSUMER_SOURCE)
        machine = Machine(analyzed, RunOptions(quantum=300))
        result = machine.run()
        # one flush per handoff: the memory leak of a shared-region-only
        # system does not happen
        assert result.stats.region_flushes >= 5
        sub = [a for a in machine.regions.areas
               if a.kind_name == "BufferSubRegion"][0]
        assert sub.peak_bytes <= 32

    def test_local_objects_cannot_cross_fork(self):
        bad = PRODUCER_CONSUMER_SOURCE.replace(
            "(RHandle<BufferRegion r> h) {",
            "(RHandle<BufferRegion r> h) { (RHandle<local> hl) {"
        ).replace(
            "fork (new Producer<r>).run(h, 5);",
            "fork (new Producer<local>).run(hl, 5);"
        ).replace(
            "fork (new Consumer<r>).run(h, 5);",
            "} fork (new Consumer<r>).run(h, 5);")
        errors = analyze(bad).errors
        assert errors  # local region escapes to a thread — rejected


class TestRealtime:
    def test_rt_pipeline_runs(self):
        dyn, sta = run_both_modes(REALTIME_SOURCE)
        assert dyn.output == ["0", "1", "2"]

    def test_lt_subregion_reused_without_allocation(self):
        analyzed = assert_well_typed(REALTIME_SOURCE)
        machine = Machine(analyzed, RunOptions())
        result = machine.run()
        # the subregion is flushed after each iteration and reused
        assert result.stats.region_flushes == 3
        work = [a for a in machine.regions.areas
                if a.kind_name == "WorkSubRegion"]
        assert len(work) == 1, "one preallocated LT instance, never " \
            "re-created"

    def test_rt_thread_never_touches_heap(self):
        # validation is on by default: a MemoryAccessError would have
        # been raised if the real-time thread had touched the heap
        analyzed = assert_well_typed(REALTIME_SOURCE)
        result = run_source(analyzed, RunOptions(checks_enabled=False,
                                                 validate=True))
        assert result.output == ["0", "1", "2"]

    def test_vt_mission_region_rejected_for_rt_fork(self):
        bad = REALTIME_SOURCE.replace(
            "(RHandle<MissionRegion : LT(65536) r> h)",
            "(RHandle<MissionRegion r> h)")
        assert_rejected(bad, rule="EXPR RTFORK")

    def test_heap_allocation_in_rt_task_rejected(self):
        bad = REALTIME_SOURCE.replace(
            "Cell<r2> c = new Cell<r2>;",
            "Cell<heap> c = new Cell<heap>;")
        assert_rejected(bad, rule="EXPR NEW")
