"""Integration tests: the observability layer wired through a real
simulated run — traces, metrics exports, profiles, and the CLI flags."""

import io
import json
import sys
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main
from repro.core.api import analyze
from repro.interp.machine import Machine, RunOptions
from repro.obs import (Tracer, build_report, to_prometheus, trace_lines)

#: a producer/consumer-style program (Figure 8 shape): two threads
#: hand frames through an LT subregion with a typed portal field
PROGRAM = """
regionKind BufRegion extends SharedRegion {
    BufSubRegion : LT(4096) NoRT b;
}
regionKind BufSubRegion extends SharedRegion {
    Frame<this> f;
}

class Frame { int data; }

class Producer<BufRegion r> {
    void run(RHandle<r> h, int frames) accesses r, heap {
        int i = 0;
        while (i < frames) {
            boolean placed = false;
            while (!placed) {
                (RHandle<BufSubRegion r2> h2 = h.b) {
                    if (h2.f == null) {
                        Frame frame = new Frame;
                        frame.data = i;
                        h2.f = frame;
                        placed = true;
                    }
                }
                yieldnow();
            }
            i = i + 1;
        }
    }
}

class Consumer<BufRegion r> {
    void run(RHandle<r> h, int frames) accesses r, heap {
        int got = 0;
        while (got < frames) {
            (RHandle<BufSubRegion r2> h2 = h.b) {
                Frame frame = h2.f;
                if (frame != null) {
                    h2.f = null;
                    print(frame.data);
                    got = got + 1;
                }
            }
            yieldnow();
        }
    }
}

(RHandle<BufRegion r> h) {
    fork (new Producer<r>).run(h, 3);
    fork (new Consumer<r>).run(h, 3);
}
"""


@pytest.fixture(scope="module")
def traced_machine():
    tracer = Tracer(detailed=True)
    analyzed = analyze(PROGRAM, tracer=tracer).require_well_typed()
    machine = Machine(analyzed, RunOptions(checks_enabled=True,
                                           tracer=tracer, quantum=300))
    machine.run()
    return machine


class TestTraceIntegration:
    def test_jsonl_trace_parses(self, traced_machine):
        lines = list(trace_lines(traced_machine.stats.tracer))
        assert len(lines) > 20
        for line in lines:
            record = json.loads(line)
            assert {"cycle", "kind", "ph", "subject",
                    "thread"} <= set(record)

    def test_region_spans_nest(self, traced_machine):
        tracer = traced_machine.stats.tracer
        assert tracer.spans_balanced()
        kinds = tracer.kinds()
        assert kinds["region-enter"] == kinds["region-exit"]
        assert kinds["region-enter"] >= 6  # >= one per handoff attempt

    def test_detailed_kinds_recorded(self, traced_machine):
        kinds = traced_machine.stats.tracer.kinds()
        for kind in ("alloc", "check-assign", "region-created",
                     "thread-spawned", "thread-finished",
                     "checker-phase"):
            assert kinds.get(kind), f"missing '{kind}' events"

    def test_events_carry_thread_attribution(self, traced_machine):
        threads = {e.thread
                   for e in traced_machine.stats.tracer.records
                   if e.kind == "region-enter"}
        assert "thread-1" in threads and "thread-2" in threads

    def test_events_between_is_time_ordered(self, traced_machine):
        from repro.tools.timeline import events_between
        stats = traced_machine.stats
        events = events_between(stats, 0, stats.cycles)
        assert events and all(len(e) == 3 for e in events)
        cycles = [cycle for cycle, _k, _s in events]
        assert cycles == sorted(cycles)

    def test_detail_off_by_default(self):
        machine = Machine(analyze(PROGRAM).require_well_typed(),
                          RunOptions(quantum=300))
        machine.run()
        kinds = machine.stats.tracer.kinds()
        assert "alloc" not in kinds and "region-enter" not in kinds
        assert kinds["region-flushed"] >= 1  # lifecycle still traced


class TestMetricsIntegration:
    def test_check_histogram_counts_match_stats(self, traced_machine):
        stats = traced_machine.stats
        hist = stats.metrics.get("repro_check_assign_cycles")
        assert hist.count == stats.assignment_checks
        assert hist.sum <= stats.check_cycles

    def test_prometheus_export_has_required_families(self,
                                                     traced_machine):
        text = to_prometheus(traced_machine.stats.metrics)
        for needle in ("repro_check_assign_cycles_count",
                       "repro_gc_pause_cycles_count",
                       "repro_region_peak_bytes",
                       "repro_thread_cycles",
                       "repro_dispatch_latency_cycles_bucket"):
            assert needle in text, f"missing '{needle}'"

    def test_region_watermark_values(self, traced_machine):
        gauge = traced_machine.stats.metrics.get(
            "repro_region_peak_bytes")
        by_region = {dict(key)["region"]: child.value
                     for key, child in gauge.children()}
        assert by_region["r.b"] > 0  # the buffer subregion saw frames

    def test_run_counters_mirrored(self, traced_machine):
        stats = traced_machine.stats
        assert stats.metrics.get("repro_run_cycles").value \
            == stats.cycles
        assert stats.metrics.get("repro_run_region_flushes").value \
            == stats.region_flushes


class TestProfileIntegration:
    def test_categories_attribute_at_least_95_percent(self,
                                                      traced_machine):
        machine = traced_machine
        report = build_report(machine.stats, machine.regions.areas)
        assert report.attributed_fraction >= 0.95
        assert report.categories["checks"] > 0
        assert report.categories["region"] > 0

    def test_per_region_rows(self, traced_machine):
        report = build_report(traced_machine.stats,
                              traced_machine.regions.areas)
        by_name = {r.name: r for r in report.regions}
        assert by_name["r.b"].allocations == 3  # one Frame per handoff
        assert by_name["r.b"].check_cycles > 0

    def test_per_site_rows_have_lines(self, traced_machine):
        report = build_report(traced_machine.stats,
                              traced_machine.regions.areas)
        assert report.sites
        assert all(s.line > 0 for s in report.sites)


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TestCli:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "pc.rtj"
        path.write_text(PROGRAM)
        return str(path)

    def test_trace_and_metrics_out(self, program_file, tmp_path):
        trace = tmp_path / "t.jsonl"
        prom = tmp_path / "m.prom"
        code, _out, _err = run_cli(
            "run", program_file, "--dynamic-checks",
            "--trace-out", str(trace), "--metrics-out", str(prom))
        assert code == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"region-enter", "region-exit", "alloc",
                "check-assign", "checker-phase"} <= kinds
        # balanced spans, checked per thread straight off the file
        stacks = {}
        for r in records:
            stack = stacks.setdefault(r["thread"], [])
            if r["ph"] == "B":
                stack.append(r["subject"])
            elif r["ph"] == "E":
                assert stack.pop() == r["subject"]
        assert all(not s for s in stacks.values())
        text = prom.read_text()
        assert "repro_check_assign_cycles_count" in text
        assert "repro_gc_pause_cycles" in text
        assert "repro_region_peak_bytes" in text

    def test_stats_json(self, program_file):
        code, out, _err = run_cli("run", program_file, "--stats-json")
        assert code == 0
        payload = json.loads(out.splitlines()[-1])
        assert payload["mode"] == "static"
        for key in ("cycles", "region_enters", "objects_freed",
                    "peak_heap_bytes", "read_checks",
                    "cycles_by_thread", "region_flushes"):
            assert key in payload
        assert payload["region_flushes"] >= 3

    def test_profile_command(self, program_file):
        code, out, _err = run_cli("profile", program_file)
        assert code == 0
        assert "cycles by category" in out
        assert "per-region profile" in out
        assert "% attributed" in out or "attributed" in out

    def test_profile_json(self, program_file):
        code, out, _err = run_cli("profile", program_file, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["attributed_fraction"] >= 0.95
        assert set(payload["categories"]) == {
            "compute", "checks", "alloc", "region", "thread", "gc",
            "io"}

    def test_python_driver_extraction(self):
        from pathlib import Path
        example = (Path(__file__).resolve().parents[2] / "examples"
                   / "producer_consumer.py")
        code, out, _err = run_cli("run", str(example))
        assert code == 0
        assert out.splitlines()[0] == "0"

    def test_summary_includes_previously_missing_keys(self):
        from repro.interp.machine import run_source
        result = run_source(PROGRAM, RunOptions(quantum=300))
        summary = result.stats.summary()
        for key in ("region_enters", "objects_freed",
                    "peak_heap_bytes", "read_checks",
                    "cycles_by_thread"):
            assert key in summary
        assert summary["region_enters"] == result.stats.region_enters


class TestTimelineCoverage:
    def test_new_kinds_render_with_marks(self, traced_machine):
        from repro.tools.timeline import MARKS, render_timeline
        text = render_timeline(traced_machine.stats,
                               kinds=["region-enter", "region-exit",
                                      "alloc", "check-assign"])
        assert "region-enter" in text
        assert MARKS["region-enter"][0] == "["
        assert "legend" in text

    def test_legend_derived_from_marks_table(self):
        from repro.tools import timeline
        # every mark in the legend comes from the table — patch in a
        # kind and it shows up without touching the renderer
        stats_machine = Machine(analyze(PROGRAM).require_well_typed(),
                                RunOptions(quantum=300))
        stats_machine.run()
        text = timeline.render_timeline(stats_machine.stats)
        for kind in stats_machine.stats.tracer.kinds():
            mark, desc = timeline.MARKS[kind]
            assert desc in text

    def test_unknown_kind_gets_fallback_mark_and_legend(self):
        from repro.rtsj.stats import Stats
        from repro.tools.timeline import UNKNOWN_MARK, render_timeline
        stats = Stats()
        stats.cycles = 10
        stats.tracer.emit("mystery-kind", "x", cycle=10)
        text = render_timeline(stats)
        assert UNKNOWN_MARK in text
        assert "other" in text
