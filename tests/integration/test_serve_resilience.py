"""The serve resilience plane, end to end over real sockets.

Crash storms, stall watchdogs, the degradation ladder's rungs, torn
cache shards, and body hygiene — each driven against an in-process
:class:`ServeService` with a deterministic fault injector where
faults are needed, so the tests are seeded, not flaky:

* a storm that kills >= 3 workers mid-burst loses zero requests, the
  pool respawns every worker, and ``/metrics`` agrees with the pool's
  own restart count;
* a wedged worker trips the stall watchdog and heals through the same
  path as a crash;
* worker failures brown the service out (``/readyz`` 503 while
  ``/livez`` stays 200), and a calm window heals it back;
* a torn on-disk cache shard is quarantined to ``<shard>.corrupt-<pid>``
  and recomputed, never trusted;
* requests with chunked bodies, missing lengths, oversized lengths, or
  stalled uploads are rejected at the socket with the right status.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.core.cache import AnalysisCache, _entries_digest
from repro.serve import (ClientPolicy, ResilientClient, ServeConfig,
                         ServeService, ServiceFaultInjector,
                         ServiceFaultPlan)

SOURCE = """\
class Cell<Owner o> {
  int v;
  void put(int n) { v = n; }
  int get() { return v; }
}
{
  Cell<heap> c = new Cell<heap>;
  c.put(41);
  print(c.get() + 1);
}
"""


def _variant(tag: str) -> str:
    return SOURCE + f"// {tag}\n"


def _metric(client: ResilientClient, name: str) -> float:
    _status, raw = client.get("/metrics")
    total = 0.0
    for line in raw.decode("utf-8").splitlines():
        head = line.split(" ")[0]
        if head == name or head.startswith(name + "{"):
            total += float(line.split()[-1])
    return total


def _patient_client(service) -> ResilientClient:
    return ResilientClient(service.host, service.port, ClientPolicy(
        max_retries=10, backoff_base_s=0.02, backoff_cap_s=0.5,
        breaker_threshold=0))


class TestCrashStorm:

    def test_storm_of_kills_loses_nothing_and_heals(self, tmp_path):
        kills = 3
        injector = ServiceFaultInjector(ServiceFaultPlan(
            rates={"worker_crash": 1.0}, max_faults=kills))
        config = ServeConfig(workers=2,
                             cache_dir=str(tmp_path / "cache"),
                             stall_timeout_s=5.0, heal_after_s=0.2)
        with ServeService(config, fault_injector=injector
                          ).serve_background() as service:
            client = _patient_client(service)
            try:
                statuses = []
                for i in range(8):  # every request a fresh cold job
                    outcome = client.post("run", {
                        "program": _variant(f"storm-{i}"),
                        "mode": "static", "backend": "py"})
                    statuses.append(outcome.status)
                # zero lost: the client rode every crash to an answer
                assert statuses == [200] * 8
                assert injector.counts()["worker_crash"] == kills
                # every killed worker respawned
                assert service.pool.alive_workers() == config.workers
                assert service.pool.restarts == kills
                # and /metrics agrees with the pool's own ledger
                assert _metric(
                    client, "repro_serve_worker_restarts_total"
                ) == kills
                # the transparent-retry path actually ran
                assert _metric(
                    client, "repro_serve_requeued_jobs_total") >= 1
            finally:
                client.close()

    def test_stalled_worker_trips_the_watchdog(self, tmp_path):
        injector = ServiceFaultInjector(ServiceFaultPlan(
            rates={"worker_stall": 1.0}, max_faults=1,
            stall_ms=4000.0))
        config = ServeConfig(workers=1,
                             cache_dir=str(tmp_path / "cache"),
                             stall_timeout_s=0.5, heal_after_s=0.2)
        with ServeService(config, fault_injector=injector
                          ).serve_background() as service:
            client = _patient_client(service)
            try:
                outcome = client.post("run", {
                    "program": _variant("stall"), "mode": "static",
                    "backend": "py"})
                # the wedged worker was killed, the job requeued, and
                # the retry answered correctly
                assert outcome.status == 200
                assert service.pool.restarts == 1
                assert service.pool.alive_workers() == 1
            finally:
                client.close()


class TestDegradationLadder:

    def test_crash_browns_out_then_heals(self):
        injector = ServiceFaultInjector(ServiceFaultPlan(
            rates={"worker_crash": 1.0}, max_faults=1))
        config = ServeConfig(workers=1, stall_timeout_s=5.0,
                             heal_after_s=0.2)
        with ServeService(config, fault_injector=injector
                          ).serve_background() as service:
            client = _patient_client(service)
            try:
                outcome = client.post("run", {
                    "program": _variant("brownout"),
                    "mode": "static", "backend": "py"})
                assert outcome.status == 200
                # liveness is unconditional; readiness is rung-gated
                status, _raw = client.get("/livez")
                assert status == 200
                status, raw = client.get("/healthz")
                health = json.loads(raw)
                if health["rung"] != "healthy":
                    status, _raw = client.get("/readyz")
                    assert status == 503
                # a calm window heals back to healthy
                deadline = time.monotonic() + 10.0
                ready = False
                while time.monotonic() < deadline:
                    status, _raw = client.get("/readyz")
                    if status == 200:
                        ready = True
                        break
                    time.sleep(0.05)
                assert ready, "service never healed to the ready rung"
                assert _metric(
                    client, "repro_serve_degradation_rung") == 0.0
            finally:
                client.close()

    def test_shed_rung_still_serves_the_hot_tier(self):
        config = ServeConfig(workers=1, heal_after_s=30.0)
        with ServeService(config).serve_background() as service:
            client = _patient_client(service)
            try:
                program = _variant("hot-under-shed")
                first = client.post("run", {"program": program,
                                            "mode": "static",
                                            "backend": "py"})
                assert first.ok
                # force the worst rung directly; the heal window is
                # far away so it stays put for the whole test
                for _ in range(service.ladder.shed_after_troubles + 1):
                    service.ladder.trouble("test")
                assert service.ladder.rung_name == "shed"
                # fingerprint-exact repeat: served from the hot tier
                repeat = ResilientClient(
                    service.host, service.port,
                    ClientPolicy(max_retries=0))
                try:
                    again = repeat.post("run", {"program": program,
                                                "mode": "static",
                                                "backend": "py"})
                    assert again.ok
                    assert again.body == first.body
                    # a cold miss is shed with Retry-After, honestly
                    miss = repeat.post("run", {
                        "program": _variant("cold-under-shed"),
                        "mode": "static", "backend": "py"})
                    assert miss.status == 503
                    assert "Retry-After" in miss.headers
                finally:
                    repeat.close()
            finally:
                client.close()


class TestBodyHygiene:
    """Raw-socket abuse the normal client can't produce."""

    def _raw(self, service, request: bytes,
             settle_s: float = 0.0) -> bytes:
        with socket.create_connection(
                (service.host, service.port), timeout=30) as sock:
            sock.sendall(request)
            if settle_s:
                time.sleep(settle_s)
            chunks = []
            sock.settimeout(30)
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    chunks.append(chunk)
            except socket.timeout:
                pass
            return b"".join(chunks)

    @pytest.fixture(scope="class")
    def service(self):
        config = ServeConfig(workers=1, read_timeout_s=1.0)
        with ServeService(config).serve_background() as svc:
            yield svc

    def test_chunked_bodies_are_411(self, service):
        reply = self._raw(service, (
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n"))
        assert b" 411 " in reply.split(b"\r\n", 1)[0]

    def test_missing_content_length_is_411(self, service):
        reply = self._raw(service,
                          b"POST /v1/run HTTP/1.1\r\nHost: x\r\n\r\n")
        assert b" 411 " in reply.split(b"\r\n", 1)[0]

    def test_oversized_content_length_is_413_before_reading(
            self, service):
        reply = self._raw(service, (
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 999999999\r\n\r\n"))
        assert b" 413 " in reply.split(b"\r\n", 1)[0]

    def test_stalled_upload_times_out_408(self, service):
        # promise 100 bytes, send none: the per-connection read
        # timeout must reclaim the handler thread with a 408
        reply = self._raw(service, (
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 100\r\n\r\n"))
        assert b" 408 " in reply.split(b"\r\n", 1)[0]

    def test_truncated_body_is_400(self, service):
        body = b'{"program": "x"'
        reply = self._raw(service, (
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(len(body) + 50).encode()
            + b"\r\n\r\n" + body), settle_s=1.2)
        assert b" 400 " in reply.split(b"\r\n", 1)[0] \
            or b" 408 " in reply.split(b"\r\n", 1)[0]


class TestShardQuarantine:
    """The disk tier never trusts bytes it can't verify."""

    def _seed_shard(self, path: str) -> None:
        cache = AnalysisCache(str(path))
        cache.record("C", "sha", "policy", "fp", _FakeDecl(), [])
        cache.save()

    def test_torn_shard_is_quarantined_and_recomputed(self, tmp_path):
        path = tmp_path / "ab" / "abc.json"
        self._seed_shard(str(path))
        # tear it: truncated JSON, the mid-write crash shape
        path.write_text('{"schema": "repro-analysis-cache/1", '
                        '"entries": {"torn')
        cache = AnalysisCache(str(path))
        assert cache.disk == {}  # cold start, never trusted
        assert cache.stats.quarantines == 1
        wrecks = list(tmp_path.glob("ab/*.corrupt-*"))
        assert len(wrecks) == 1  # evidence preserved on disk
        assert not path.exists()  # the poisoned path healed

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        path = tmp_path / "cd" / "cde.json"
        self._seed_shard(str(path))
        payload = json.loads(path.read_text())
        # bit-rot an entry without touching the recorded digest
        payload["entries"]["C"]["sha"] = "flipped"
        path.write_text(json.dumps(payload))
        cache = AnalysisCache(str(path))
        assert cache.disk == {}
        assert cache.stats.quarantines == 1
        assert list(tmp_path.glob("cd/*.corrupt-*"))

    def test_legacy_shard_without_digest_still_loads(self, tmp_path):
        path = tmp_path / "ef" / "efg.json"
        self._seed_shard(str(path))
        payload = json.loads(path.read_text())
        del payload["digest"]  # written by an older version
        path.write_text(json.dumps(payload))
        cache = AnalysisCache(str(path))
        assert cache.disk and cache.stats.quarantines == 0

    def test_schema_mismatch_is_a_cold_start_not_a_quarantine(
            self, tmp_path):
        path = tmp_path / "gh" / "ghi.json"
        path.parent.mkdir()
        path.write_text(json.dumps({"schema": "something-else/9",
                                    "entries": {}}))
        cache = AnalysisCache(str(path))
        # a foreign-but-intact file is not corruption; leave it alone
        assert cache.disk == {} and cache.stats.quarantines == 0
        assert path.exists()

    def test_saved_digest_matches_the_entries(self, tmp_path):
        path = tmp_path / "ij" / "ijk.json"
        self._seed_shard(str(path))
        payload = json.loads(path.read_text())
        assert payload["digest"] == _entries_digest(payload["entries"])


class _FakeDecl:
    """Just enough ClassDecl surface for cache.record()."""

    methods = ()
