"""The executable erasure backend (Section 2.6, made runnable).

The compiled Python contains *no owners at all* — only memory areas
obtained through the translator's handle strategies — yet must reproduce
the interpreter's output exactly, on every single-threaded benchmark and
on the paper's examples.  The compiled RTSJ build (``checks=True``) must
also catch the same violation the interpreter's dynamic checks catch.
"""

import pytest

from repro import IllegalAssignmentError, RunOptions, analyze, run_source
from repro.bench.suite import BENCHMARKS, IMAGEREC_STAGES
from repro.interp.compile_py import (CompileError, compile_to_python)

SINGLE_THREADED = ["Array", "Tree", "Water", "Barnes", "ImageRec",
                   "game", "phone"]


def outputs(source: str):
    analyzed = analyze(source).require_well_typed()
    interpreted = run_source(analyzed, RunOptions()).output
    compiled = compile_to_python(analyzed).run()
    return interpreted, compiled


class TestBenchmarkParity:
    @pytest.mark.parametrize("name", SINGLE_THREADED)
    def test_compiled_output_matches_interpreter(self, name):
        source = BENCHMARKS[name].source(fast=True)
        interpreted, compiled = outputs(source)
        assert compiled == interpreted

    @pytest.mark.parametrize("stage", IMAGEREC_STAGES)
    def test_imagerec_stages(self, stage):
        source = BENCHMARKS["ImageRec"].source(fast=True, stage=stage)
        interpreted, compiled = outputs(source)
        assert compiled == interpreted

    def test_threaded_benchmark_raises_compile_error(self):
        analyzed = analyze(
            BENCHMARKS["http"].source(fast=True)).require_well_typed()
        with pytest.raises(CompileError):
            compile_to_python(analyzed)


class TestErasureIsReal:
    def test_no_owner_tokens_in_emitted_code(self):
        source = BENCHMARKS["Tree"].source(fast=True)
        compiled = compile_to_python(
            analyze(source).require_well_typed())
        for token in ("Owner", "owner", "__owner", "outlives",
                      "initialRegion"):
            assert token not in compiled.source, token

    def test_region_names_survive_only_as_area_labels(self):
        source = ("class Cell<Owner o> { int v; }\n"
                  "(RHandle<r> h) { Cell<r> c = new Cell<r>; print(1); }")
        compiled = compile_to_python(
            analyze(source).require_well_typed())
        assert "create_region('r'" in compiled.source


class TestCompiledChecks:
    DANGLING = """
class Cell<Owner o> { int v; Cell<o> next; }
(RHandle<r1> h1) {
    Cell<r1> outer = new Cell<r1>;
    (RHandle<r2> h2) {
        Cell<r2> inner = new Cell<r2>;
        outer.next = inner;
    }
}
"""

    def test_typed_build_has_no_check_calls(self):
        source = BENCHMARKS["Array"].source(fast=True)
        compiled = compile_to_python(
            analyze(source).require_well_typed(), checks=False)
        assert "check_store" not in compiled.source

    def test_rtsj_build_catches_the_same_violation(self):
        analyzed = analyze(self.DANGLING)
        assert analyzed.errors  # rejected statically ...
        compiled = compile_to_python(analyzed, checks=True,
                                     require_well_typed=False)
        assert "check_store" in compiled.source
        with pytest.raises(IllegalAssignmentError):
            compiled.run()

    def test_rtsj_build_counts_checks_on_clean_programs(self):
        source = BENCHMARKS["Array"].source(fast=True)
        analyzed = analyze(source).require_well_typed()
        out_typed = compile_to_python(analyzed, checks=False).run()
        rtsj = compile_to_python(analyzed, checks=True)
        out_checked, runtime = rtsj.run_with_runtime()
        assert out_typed == out_checked
        assert runtime.assignment_checks > 0


class TestCompiledRegionBehaviour:
    def test_lt_overflow_in_compiled_code(self):
        from repro.errors import OutOfRegionMemoryError
        source = ("class C<Owner o> { int a; int b; int c; int d; }\n"
                  "{ (RHandle<LocalRegion : LT(48) r> h) {"
                  "    C<r> one = new C<r>;"
                  "    C<r> two = new C<r>;"
                  "} }")
        compiled = compile_to_python(
            analyze(source).require_well_typed())
        with pytest.raises(OutOfRegionMemoryError):
            compiled.run()

    def test_subregion_flush_reuse(self):
        source = """
regionKind Buf extends SharedRegion {
    Sub : LT(128) NoRT s;
}
regionKind Sub extends SharedRegion { }
class Cell { int v; }
(RHandle<Buf r> h) {
    int i = 0;
    while (i < 20) {
        (RHandle<Sub r2> h2 = h.s) {
            Cell<r2> c = new Cell<r2>;
            c.v = i;
        }
        i = i + 1;
    }
    print(i);
}
"""
        analyzed = analyze(source).require_well_typed()
        compiled = compile_to_python(analyzed)
        out, runtime = compiled.run_with_runtime()
        assert out == ["20"]
        # twenty 24-byte cells through a 128-byte LT area: only possible
        # because the compiled exit path flushes it each iteration
        subs = [a for a in runtime.areas if ".s" in a.name]
        assert len(subs) == 1
        assert subs[0].peak <= 128
