"""``repro serve`` end-to-end: real HTTP, forked workers, admission.

Everything here drives an in-process :class:`ServeService` over actual
sockets (the same path the CLI serves), so the contracts under test
are wire-level:

* served results are byte-identical to in-process CLI execution;
* N identical concurrent cold requests collapse to exactly one
  analysis (read back from the service's own ``/metrics``);
* a full queue sheds with ``429`` and a ``Retry-After`` header
  without touching in-flight work;
* an expired deadline is answered ``504`` *without executing*;
* tenant quotas shed independently per tenant;
* the ``REPRO-SERVE-READY`` / ``REPRO-METRICSD-READY`` stdout lines
  are printed only once the socket is accepting — a subprocess
  connects immediately, no polling.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import pathlib
import subprocess
import sys
import threading

import pytest

from repro.core.api import analyze
from repro.interp.machine import RunOptions, execute
from repro.serve import ServeConfig, ServeService

REPO_ROOT = pathlib.Path(__file__).parent.parent.parent

SOURCE = """\
class Counter<Owner o> {
  int total;
  void bump(int n) { total = total + n; }
  int read() { return total; }
}
{
  Counter<heap> c = new Counter<heap>;
  int i = 0;
  while (i < 5) { c.bump(i); i = i + 1; }
  print(c.read());
}
"""

BROKEN_SOURCE = """\
class C<Owner o> { int x; }
{ C<heap> c = new C<heap>; print(c.missing); }
"""


def _variant(tag: str) -> str:
    """A semantically identical program with a fresh content address."""
    return SOURCE + f"// {tag}\n"


def _post(service, endpoint, payload, raw=None):
    """One POST over a fresh connection; returns (status, headers,
    body-dict)."""
    conn = http.client.HTTPConnection(service.host, service.port,
                                      timeout=60)
    try:
        body = raw if raw is not None else json.dumps(payload)
        conn.request("POST", f"/v1/{endpoint}", body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, dict(resp.getheaders()), json.loads(data)
    finally:
        conn.close()


def _get(service, path):
    conn = http.client.HTTPConnection(service.host, service.port,
                                      timeout=60)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _metric(service, name) -> float:
    """Sum of one metric family's samples from a live /metrics scrape."""
    _status, _headers, data = _get(service, "/metrics")
    total = 0.0
    for line in data.decode("utf-8").splitlines():
        if line.startswith("#"):
            continue
        head = line.split(" ")
        if head[0] == name or head[0].startswith(name + "{"):
            total += float(head[-1])
    return total


def _cli_reference(source):
    analyzed = analyze(source)
    assert not analyzed.errors
    result, _machine = execute(analyzed, RunOptions(
        checks_enabled=False, validate=False, instrument=False,
        backend="py"))
    return {
        "cycles": result.stats.cycles,
        "output_sha256": hashlib.sha256(
            "\n".join(result.output).encode()).hexdigest(),
        "output": result.output,
    }


@pytest.fixture(scope="module")
def service():
    config = ServeConfig(workers=1, queue_depth=16)
    with ServeService(config).serve_background() as svc:
        yield svc


class TestServedParity:

    def test_run_matches_cli_byte_for_byte(self, service):
        ref = _cli_reference(SOURCE)
        status, _headers, body = _post(service, "run", {
            "program": SOURCE, "mode": "static", "backend": "py"})
        assert status == 200 and body["ok"]
        assert body["cycles"] == ref["cycles"]
        assert body["output_sha256"] == ref["output_sha256"]
        assert body["output"] == ref["output"]

    def test_analyze_reports_the_frontend_verdict(self, service):
        status, _headers, body = _post(service, "analyze",
                                       {"program": SOURCE})
        assert status == 200
        assert body["well_typed"] is True and body["errors"] == []
        assert body["classes"] >= 1
        status, _headers, body = _post(service, "analyze",
                                       {"program": BROKEN_SOURCE})
        assert status == 200
        assert body["well_typed"] is False and body["errors"]

    def test_inspect_returns_a_causal_report(self, service):
        status, _headers, body = _post(service, "inspect", {
            "program": _variant("inspect"), "mode": "static"})
        assert status == 200 and body["ok"]
        assert isinstance(body["report"], dict)
        assert "output" not in body  # the report subsumes raw output

    def test_ill_typed_program_is_422_on_run(self, service):
        status, _headers, body = _post(service, "run",
                                       {"program": BROKEN_SOURCE})
        assert status == 422
        assert body["ok"] is False and body["errors"]

    def test_unparsable_program_is_422_not_500(self, service):
        # lexer/parser rejections raise instead of returning .errors;
        # still the client's fault, never a server error
        status, _headers, body = _post(service, "run",
                                       {"program": "{ print( }"})
        assert status == 422
        assert body["ok"] is False and body["errors"]


class TestRequestHygiene:

    def test_malformed_bodies_are_400(self, service):
        status, _headers, body = _post(service, "run", {})
        assert status == 400 and "program" in body["error"]
        status, _headers, body = _post(service, "run", None,
                                       raw="{not json")
        assert status == 400 and "JSON" in body["error"]
        status, _headers, body = _post(service, "run", {
            "program": SOURCE, "mode": "fast"})
        assert status == 400 and "mode" in body["error"]

    def test_oversized_program_is_413(self, service):
        from repro.serve.protocol import MAX_PROGRAM_BYTES
        status, _headers, body = _post(service, "run", {
            "program": "x" * (MAX_PROGRAM_BYTES + 1)})
        assert status == 413

    def test_unknown_routes_are_404(self, service):
        status, _headers, body = _post(service, "destroy",
                                       {"program": SOURCE})
        assert status == 404
        status, _headers, _data = _get(service, "/v2/run")
        assert status == 404

    def test_healthz_reports_live_workers(self, service):
        status, _headers, data = _get(service, "/healthz")
        assert status == 200
        health = json.loads(data)
        assert health["status"] == "ok"
        assert health["workers_alive"] == service.config.workers
        assert health["worker_restarts"] == 0

    def test_metrics_exposition(self, service):
        status, headers, data = _get(service, "/metrics")
        assert status == 200
        assert "text/plain" in headers.get("Content-Type", "")
        text = data.decode("utf-8")
        for family in ("repro_serve_requests_total",
                       "repro_serve_request_seconds",
                       "repro_serve_coalesced_total",
                       "repro_serve_batch_size"):
            assert family in text


class TestCacheTiers:

    def test_repeat_request_hits_the_frontend_hot_tier(self, service):
        program = _variant("hot-tier")
        first = _post(service, "run", {"program": program})
        before = _metric(service,
                         "repro_serve_result_cache_hits_total")
        second = _post(service, "run", {"program": program})
        after = _metric(service, "repro_serve_result_cache_hits_total")
        assert first[0] == second[0] == 200
        assert second[2] == first[2]  # byte-identical replay
        assert after == before + 1

    def test_worker_memo_serves_when_the_hot_tier_cannot(self):
        # hot_results=0 disables the frontend tier entirely, so the
        # repeat must round-trip to the pool and come back as a memo
        config = ServeConfig(workers=1, hot_results=0)
        with ServeService(config).serve_background() as svc:
            program = _variant("memo-tier")
            first = _post(svc, "run", {"program": program})
            second = _post(svc, "run", {"program": program})
            assert first[0] == second[0] == 200
            assert second[2] == first[2]
            assert _metric(svc, "repro_serve_analyses_total") == 1


class TestTrafficMechanics:

    def test_identical_concurrent_requests_analyze_once(self, service):
        program = _variant("coalesce-burst")
        clients = 6
        analyses_before = _metric(service,
                                  "repro_serve_analyses_total")
        coalesced_before = _metric(service,
                                   "repro_serve_coalesced_total")
        barrier = threading.Barrier(clients)
        results, lock = [], threading.Lock()

        def fire():
            barrier.wait(timeout=10)
            status, _headers, body = _post(service, "run",
                                           {"program": program})
            with lock:
                results.append((status, body))

        threads = [threading.Thread(target=fire)
                   for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(results) == clients
        assert all(status == 200 for status, _body in results)
        bodies = [body for _status, body in results]
        assert all(body == bodies[0] for body in bodies)
        d_analyses = (_metric(service, "repro_serve_analyses_total")
                      - analyses_before)
        assert d_analyses == 1  # exactly one analysis for the burst
        d_coalesced = (_metric(service, "repro_serve_coalesced_total")
                       - coalesced_before)
        # every request beyond the leader either adopted the in-flight
        # job or (having lost the race) replayed the finished result
        assert d_coalesced <= clients - 1
        assert d_analyses + d_coalesced <= clients

    def test_full_queue_sheds_429_with_retry_after(self):
        # queue_depth=0: admission rejects every job that would queue,
        # which isolates the shedding branch deterministically
        config = ServeConfig(workers=1, queue_depth=0)
        with ServeService(config).serve_background() as svc:
            status, headers, body = _post(svc, "run",
                                          {"program": _variant("shed")})
            assert status == 429
            assert body["ok"] is False
            assert int(headers["Retry-After"]) >= 1
            _status, _headers, data = _get(svc, "/metrics")
            shed = [line for line in data.decode("utf-8").splitlines()
                    if line.startswith(
                        'repro_serve_shed_total{reason="queue_full"}')]
            assert shed and float(shed[0].split()[-1]) == 1.0

    def test_expired_deadline_cancels_without_executing(self, service):
        program = _variant("deadline")
        analyses_before = _metric(service,
                                  "repro_serve_analyses_total")
        cancelled_before = _metric(
            service, "repro_serve_deadline_cancelled_total")
        # 100ns deadline: expired long before any dispatcher can see it
        status, _headers, body = _post(service, "run", {
            "program": program, "deadline_ms": 0.0001})
        assert status == 504
        assert "deadline" in body["error"]
        assert (_metric(service, "repro_serve_deadline_cancelled_total")
                == cancelled_before + 1)
        # the job never executed: no analysis happened for it
        assert (_metric(service, "repro_serve_analyses_total")
                == analyses_before)

    def test_tenant_quota_sheds_independently(self):
        config = ServeConfig(workers=1, quota_rate=0.001,
                             quota_burst=1.0)
        with ServeService(config).serve_background() as svc:
            program = _variant("quota")
            status, _h, _b = _post(svc, "run", {
                "program": program, "tenant": "alice"})
            assert status == 200
            status, headers, body = _post(svc, "run", {
                "program": program, "tenant": "alice"})
            assert status == 429
            assert "quota" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] > 0
            # bob's bucket is full: same program, admitted (and served
            # straight from the hot tier alice warmed)
            status, _h, _b = _post(svc, "run", {
                "program": program, "tenant": "bob"})
            assert status == 200


class TestReadySignals:
    """The READY stdout lines are printed only after the socket is
    bound and accepting: a parent process parses one line and connects
    immediately — no retry loop, no sleep."""

    def _spawn(self, argv, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            cwd=str(tmp_path), env=env)

    def _ready_fields(self, proc, token):
        line = {}

        def read():
            line["text"] = proc.stdout.readline().decode(
                "utf-8", "replace")

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=60)
        if "text" not in line:
            proc.kill()
            pytest.fail(f"no {token} line within 60s")
        text = line["text"].strip()
        assert text.startswith(token), text
        return dict(part.split("=", 1) for part in text.split()[1:])

    def _reap(self, proc):
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)

    def test_serve_ready_line_is_accurate(self, tmp_path):
        proc = self._spawn(["serve", "--port", "0", "--workers", "1",
                            "--cache-dir", str(tmp_path / "cache")],
                           tmp_path)
        try:
            fields = self._ready_fields(proc, "REPRO-SERVE-READY")
            assert fields["workers"] == "1"
            assert int(fields["port"]) > 0  # port 0 was resolved
            conn = http.client.HTTPConnection(
                fields["host"], int(fields["port"]), timeout=30)
            try:  # first and only attempt — the line IS readiness
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                assert json.loads(resp.read())["status"] == "ok"
            finally:
                conn.close()
        finally:
            self._reap(proc)

    def test_sigterm_reaps_the_worker_pool(self, tmp_path):
        # SIGTERM is how supervisors stop a service; the forked
        # workers must not be orphaned (they inherit the parent's pipe
        # ends at fork, so without explicit hygiene they would block
        # on recv forever instead of seeing EOF)
        import time
        proc = self._spawn(["serve", "--port", "0", "--workers", "2",
                            "--cache-dir", str(tmp_path / "cache")],
                           tmp_path)
        try:
            self._ready_fields(proc, "REPRO-SERVE-READY")
            workers = subprocess.run(
                ["ps", "--ppid", str(proc.pid), "-o", "pid="],
                capture_output=True).stdout.decode().split()
            assert len(workers) == 2, workers
        finally:
            self._reap(proc)
        deadline = time.monotonic() + 10
        alive = workers
        while alive and time.monotonic() < deadline:
            alive = [p for p in workers
                     if pathlib.Path(f"/proc/{p}").exists()]
            time.sleep(0.1)
        assert not alive, f"orphaned workers: {alive}"

    def test_metricsd_ready_line_is_accurate(self, tmp_path):
        proc = self._spawn(["metricsd", "--port", "0",
                            "--store", str(tmp_path / "telemetry")],
                           tmp_path)
        try:
            fields = self._ready_fields(proc, "REPRO-METRICSD-READY")
            assert int(fields["port"]) > 0
            conn = http.client.HTTPConnection(
                fields["host"], int(fields["port"]), timeout=30)
            try:
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
            finally:
                conn.close()
        finally:
            self._reap(proc)
