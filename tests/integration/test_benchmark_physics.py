"""Sanity checks that the scientific benchmarks compute real physics —
guarding against the benchmarks degenerating into no-ops that would make
the Figure 12 ratios meaningless."""

import pytest

from repro import RunOptions, analyze, run_source
from repro.bench.programs import barnes, water


def run_program(source: str):
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    return run_source(analyzed, RunOptions())


class TestWaterPhysics:
    MOMENTUM_PROBE = """
            float px = 0.0;
            float py = 0.0;
            Molecule probe = head;
            while (probe != null) {
                px = px + probe.vx;
                py = py + probe.vy;
                probe = probe.next;
            }
            checksum = ftoi(px * 1000000.0) * 100000
                       + ftoi(py * 1000000.0);
        }
        return checksum;
"""

    def _momentum(self, steps: int) -> int:
        source = water.source(molecules=8, steps=steps)
        # replace the energy checksum with a momentum probe
        head, _sep, _tail = source.partition(
            "            // kinetic-energy checksum")
        source = head + self.MOMENTUM_PROBE + """
    }
}
{
    Water water = new Water;
    print(water.simulate(8, %d));
}
""" % steps
        return int(run_program(source).output[0])

    def test_pairwise_forces_conserve_momentum(self):
        # Newton's third law in the force loop: total momentum after any
        # number of steps equals the initial total (the per-pair force is
        # applied antisymmetrically)
        initial = self._momentum(0)
        after = self._momentum(5)
        assert initial == after

    def test_molecules_actually_move(self):
        out0 = run_program(water.source(molecules=8, steps=0)).output
        out5 = run_program(water.source(molecules=8, steps=5)).output
        assert out0 != out5, "the integrator must change the state"


class TestBarnesPhysics:
    def test_bodies_accelerate_toward_each_other(self):
        # kinetic energy starts at zero (bodies at rest) and must grow
        # under gravity
        result = run_program(barnes.source(bodies=10, steps=2, relinks=1))
        assert int(result.output[0]) > 0

    def test_zero_steps_zero_energy(self):
        result = run_program(barnes.source(bodies=10, steps=0, relinks=1))
        assert result.output == ["0"]

    def test_more_steps_more_energy_early_on(self):
        # during the initial collapse the kinetic energy increases
        e1 = int(run_program(
            barnes.source(bodies=10, steps=1, relinks=1)).output[0])
        e3 = int(run_program(
            barnes.source(bodies=10, steps=3, relinks=1)).output[0])
        assert e3 > e1 > 0

    def test_deterministic_across_runs(self):
        source = barnes.source(bodies=12, steps=3, relinks=2)
        a = run_program(source).output
        b = run_program(source).output
        assert a == b
