"""Section 2.3's second contribution: preventing the RTSJ priority
inversion.

"In the RTSJ, any thread entering a region waits if there are threads
exiting the region.  If a regular thread exiting a region is suspended by
the garbage collector, then a real-time thread entering the region might
have to wait for an unbounded amount of time. ... we impose the
restriction that real-time threads and regular threads cannot share
subregions."

These tests pin down both halves: the static restriction (RT and NoRT
subregions cannot be crossed) and the sanctioned alternative
(communication through top-level regions / separate subregions).
"""

import sys
from pathlib import Path

import pytest

from repro import RealtimeViolationError, RunOptions, analyze, run_source

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_rejected, assert_well_typed  # noqa: E402

KINDS = """
regionKind Mission extends SharedRegion {
    Work : LT(4096) RT rtside;
    Work : LT(4096) NoRT gcside;
}
regionKind Work extends SharedRegion { }
class Cell { int v; }
"""


class TestStaticSeparation:
    def test_regular_method_cannot_enter_rt_subregion(self):
        assert_rejected(
            KINDS +
            "class Regular<Mission m> {"
            "  void run(RHandle<m> h) accesses m, heap {"
            "    (RHandle<Work r2> h2 = h.rtside) { }"
            "  }"
            "}",
            rule="EXPR SUBREGION", fragment="RT effect")

    def test_rt_method_cannot_enter_nort_subregion(self):
        # entering a NoRT subregion demands the heap effect, which an
        # RT-forkable method can never carry
        assert_rejected(
            KINDS +
            "class Task<Mission : LT m> {"
            "  void run(RHandle<m> h) accesses m, RT {"
            "    (RHandle<Work r2> h2 = h.gcside) { }"
            "  }"
            "}",
            rule="EXPR SUBREGION")

    def test_method_with_rt_effect_cannot_be_plain_forked(self):
        assert_rejected(
            KINDS +
            "class Task<Mission : LT m> {"
            "  void run(RHandle<m> h) accesses m, RT {"
            "    (RHandle<Work r2> h2 = h.rtside) { int x = 1; }"
            "  }"
            "}\n"
            "(RHandle<Mission : LT(16384) r> h) {"
            "  fork (new Task<r>).run(h);"
            "}",
            rule="EXPR FORK")

    def test_method_with_heap_effect_cannot_be_rt_forked(self):
        assert_rejected(
            KINDS +
            "class Task<Mission : LT m> {"
            "  void run(RHandle<m> h) accesses m, heap {"
            "    (RHandle<Work r2> h2 = h.gcside) { int x = 1; }"
            "  }"
            "}\n"
            "(RHandle<Mission : LT(16384) r> h) {"
            "  RT fork (new Task<r>).run(h);"
            "}",
            rule="EXPR RTFORK")

    def test_separated_sides_coexist(self):
        assert_well_typed(
            KINDS +
            "class RTTask<Mission : LT m> {"
            "  void run(RHandle<m> h) accesses m, RT {"
            "    (RHandle<Work r2> h2 = h.rtside) {"
            "      Cell<r2> c = new Cell<r2>;"
            "      c.v = 1;"
            "    }"
            "  }"
            "}\n"
            "class GCTask<Mission m> {"
            "  void run(RHandle<m> h) accesses m, heap {"
            "    (RHandle<Work r2> h2 = h.gcside) {"
            "      Cell<r2> c = new Cell<r2>;"
            "      c.v = 2;"
            "    }"
            "  }"
            "}\n"
            "(RHandle<Mission : LT(16384) r> h) {"
            "  fork (new GCTask<r>).run(h);"
            "  RT fork (new RTTask<r>).run(h);"
            "}")


class TestRuntimeBackstop:
    """The simulator's validation catches violations even when a program
    bypasses the typechecker — showing the checks and the types guard the
    same property."""

    CROSSING = KINDS + """
class Sneaky<Mission m> {
    void run(RHandle<m> h) accesses m, heap, RT {
        (RHandle<Work r2> h2 = h.rtside) { int x = 1; }
    }
}
(RHandle<Mission : LT(16384) r> h) {
    fork (new Sneaky<r>).run(h);
}
"""

    def test_crossing_is_rejected_statically(self):
        analyzed = analyze(self.CROSSING)
        assert analyzed.errors  # fork target has the RT effect

    def test_crossing_caught_at_runtime_if_forced(self):
        analyzed = analyze(self.CROSSING)
        with pytest.raises(RealtimeViolationError):
            run_source(analyzed, RunOptions(checks_enabled=True),
                       require_well_typed=False)


class TestNoUnboundedWait:
    """With the separation in place, a real-time thread's dispatch
    latency is bounded by the scheduler quantum — never by a GC pause."""

    PROGRAM = KINDS + """
class RTTask<Mission : LT m> {
    void run(RHandle<m> h, int iters) accesses m, RT {
        int i = 0;
        while (i < iters) {
            (RHandle<Work r2> h2 = h.rtside) {
                Cell<r2> c = new Cell<r2>;
                c.v = i;
            }
            yieldnow();
            i = i + 1;
        }
        print(i);
    }
}
class Churner {
    void run(int n) accesses heap {
        int i = 0;
        while (i < n) {
            Cell<heap> c = new Cell<heap>;
            if (i % 10 == 0) { yieldnow(); }
            i = i + 1;
        }
    }
}
(RHandle<Mission : LT(16384) r> h) {
    fork (new Churner<heap>).run(400);
    RT fork (new RTTask<r>).run(h, 15);
}
"""

    def test_rt_latency_bounded_despite_gc(self):
        from repro.interp.machine import Machine
        analyzed = analyze(self.PROGRAM)
        assert not analyzed.errors, [str(e) for e in analyzed.errors]
        quantum = 500
        machine = Machine(analyzed, RunOptions(
            checks_enabled=False, validate=True,
            gc_trigger_bytes=5_000, quantum=quantum))
        result = machine.run()
        assert result.output == ["15"]
        assert result.stats.gc_runs > 0
        rt = [t for t in machine.scheduler.threads if t.realtime][0]
        # bounded by the other threads' slices, NOT by the GC pauses
        gc_pause = result.stats.gc_pause_cycles
        assert rt.max_dispatch_latency < gc_pause
        assert rt.max_dispatch_latency <= 3 * quantum + 200
