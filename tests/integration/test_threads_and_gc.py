"""Integration tests: threads, the scheduler, shared-region reference
counting, and GC interaction with real-time threads."""

import sys
from pathlib import Path

from repro import RunOptions, analyze, run_source
from repro.interp.machine import Machine

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import assert_well_typed  # noqa: E402


class TestSharedRegionLifetimes:
    SOURCE = """
regionKind Shared extends SharedRegion { }
class Cell { int v; }
class Worker<Shared r> {
    void run(RHandle<r> h, int n) accesses r {
        int i = 0;
        Cell<r> mine = new Cell<r>;
        while (i < n) {
            mine.v = mine.v + 1;
            yieldnow();
            i = i + 1;
        }
        print(mine.v);
    }
}
(RHandle<Shared r> h) {
    fork (new Worker<r>).run(h, 4);
    fork (new Worker<r>).run(h, 2);
}
"""

    def test_region_stays_alive_until_last_thread_exits(self):
        analyzed = assert_well_typed(self.SOURCE)
        machine = Machine(analyzed, RunOptions(quantum=150))
        result = machine.run()
        assert sorted(result.output) == ["2", "4"]
        shared = [a for a in machine.regions.areas
                  if a.kind_name == "Shared"][0]
        # main exits the block before the workers finish; the region must
        # have outlived all three threads and only then died
        assert not shared.live
        assert shared.thread_count == 0

    def test_threads_interleave(self):
        analyzed = assert_well_typed(self.SOURCE)
        result = run_source(analyzed, RunOptions(quantum=100))
        assert result.stats.threads_spawned == 3  # main + 2 workers


class TestGCAndRealtime:
    CHURN_AND_RT = """
regionKind Mission extends SharedRegion {
    Work : LT(4096) RT w;
}
regionKind Work extends SharedRegion { }
class Cell { int v; Cell next; }
class Churner {
    void run(int n) accesses heap {
        int i = 0;
        while (i < n) {
            Cell<heap> c = new Cell<heap>;
            c.v = i;
            if (i % 20 == 0) { yieldnow(); }
            i = i + 1;
        }
    }
}
class RTWorker<Mission : LT m> {
    void run(RHandle<m> h, int iters) accesses m, RT {
        int i = 0;
        while (i < iters) {
            (RHandle<Work r2> h2 = h.w) {
                Cell<r2> c = new Cell<r2>;
                c.v = i;
                check(c.v == i);
            }
            yieldnow();
            i = i + 1;
        }
        print(i);
    }
}
(RHandle<Mission : LT(8192) r> h) {
    fork (new Churner<heap>).run(500);
    RT fork (new RTWorker<r>).run(h, 10);
}
"""

    def test_gc_runs_while_rt_thread_progresses(self):
        analyzed = assert_well_typed(self.CHURN_AND_RT)
        machine = Machine(analyzed, RunOptions(
            checks_enabled=False, validate=True,
            gc_trigger_bytes=6_000, quantum=600))
        result = machine.run()
        assert result.output == ["10"]
        assert result.stats.gc_runs > 0

    def test_rt_thread_dispatch_latency_below_regular(self):
        analyzed = assert_well_typed(self.CHURN_AND_RT)
        machine = Machine(analyzed, RunOptions(
            checks_enabled=False, validate=True,
            gc_trigger_bytes=6_000, quantum=600))
        machine.run()
        rt = [t for t in machine.scheduler.threads if t.realtime][0]
        regular = [t for t in machine.scheduler.threads
                   if not t.realtime and t.name != "main"][0]
        assert rt.max_dispatch_latency < regular.max_dispatch_latency

    def test_rt_thread_work_identical_with_and_without_gc(self):
        analyzed = assert_well_typed(self.CHURN_AND_RT)
        gc_heavy = run_source(analyzed, RunOptions(
            gc_trigger_bytes=5_000, quantum=600))
        gc_free = run_source(analyzed, RunOptions(
            gc_trigger_bytes=1 << 30, quantum=600))
        assert gc_heavy.output == gc_free.output == ["10"]
        assert gc_heavy.stats.gc_runs > 0
        assert gc_free.stats.gc_runs == 0


class TestDeterminism:
    def test_same_program_same_cycles(self):
        source = """
class Cell { int v; }
(RHandle<r> h) {
    int i = 0;
    while (i < 50) {
        Cell<r> c = new Cell<r>;
        c.v = i;
        i = i + 1;
    }
    print(i);
}
"""
        analyzed = assert_well_typed(source)
        runs = [run_source(analyzed, RunOptions()) for _ in range(3)]
        assert len({r.cycles for r in runs}) == 1
        assert all(r.output == ["50"] for r in runs)

    def test_threaded_program_deterministic(self):
        analyzed = assert_well_typed(TestSharedRegionLifetimes.SOURCE)
        runs = [run_source(analyzed, RunOptions(quantum=150))
                for _ in range(3)]
        assert len({tuple(r.output) for r in runs}) == 1
        assert len({r.cycles for r in runs}) == 1
