"""Integration tests for the flight recorder + ``repro inspect``:
ledger exactness against ``Stats.summary()``, cycle neutrality of
recording, leak detection on a real program, the CLI surface, and the
chaos auto-dump + schedule join."""

import io
import json
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

import pytest

from repro.bench.suite import get_benchmark
from repro.chaos import run_chaos
from repro.cli import main
from repro.core.api import analyze
from repro.interp.machine import Machine, RunOptions
from repro.obs.analyze import build_report, join_faults
from repro.obs.flightrec import load_flight, validate_flight
from repro.rtsj.faults import load_schedule

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import PRODUCER_CONSUMER_SOURCE  # noqa: E402

LEAK_SOURCE = """
class Node {
    int v;
    Node<immortal> next;
}
class Main {
    int run(int n) accesses immortal {
        Node<immortal> head = null;
        int i = 0;
        while (i < n) {
            Node<immortal> node = new Node<immortal>;
            node.v = i;
            node.next = head;
            head = node;
            i = i + 1;
        }
        return head.v;
    }
}
{
    Main m = new Main;
    print(m.run(16));
}
"""


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


def _run_recorded(source, dynamic):
    machine = Machine(analyze(source).require_well_typed(),
                      RunOptions(checks_enabled=dynamic, record=True))
    machine.run()
    return machine


class TestLedgerExactness:
    @pytest.mark.parametrize("name", ["Array", "Tree"])
    @pytest.mark.parametrize("dynamic", [True, False])
    def test_ledger_matches_stats_summary_exactly(self, name, dynamic):
        source = get_benchmark(name).source(fast=True)
        machine = _run_recorded(source, dynamic)
        summary = machine.stats.summary()
        header = machine.recorder.header(
            meta={"mode": "dynamic" if dynamic else "static",
                  "summary": summary})
        report = build_report(header, machine.recorder.records())
        assert report.mismatches == []
        ledger = report.ledger
        if dynamic:
            assert ledger["performed"]["assign"] \
                == summary["assignment_checks"]
            assert ledger["performed"]["read"] == summary["read_checks"]
            assert ledger["check_cycles"]["total"] \
                == summary["check_cycles"]
        else:
            # static mode performs nothing; every check is credited as
            # elided with the exact cycles the dynamic build would pay
            assert ledger["performed"]["total"] == 0
            assert summary["assignment_checks"] == 0

    @pytest.mark.parametrize("name", ["Array", "Tree"])
    def test_static_elisions_mirror_dynamic_checks(self, name):
        source = get_benchmark(name).source(fast=True)
        dyn = _run_recorded(source, dynamic=True).recorder
        sta = _run_recorded(source, dynamic=False).recorder
        performed = dyn.check_totals.get("check-assign", [0, 0])
        elided = sta.check_totals.get("check-elide-assign", [0, 0])
        assert performed == elided
        performed_r = dyn.check_totals.get("check-read", [0, 0])
        elided_r = sta.check_totals.get("check-elide-read", [0, 0])
        assert performed_r == elided_r


class TestCycleNeutrality:
    @pytest.mark.parametrize("name", ["Array", "Tree"])
    @pytest.mark.parametrize("dynamic", [True, False])
    def test_recording_never_changes_cycles_or_output(self, name,
                                                      dynamic):
        source = get_benchmark(name).source(fast=True)
        analyzed = analyze(source).require_well_typed()
        plain = Machine(analyzed, RunOptions(checks_enabled=dynamic))
        recorded = Machine(analyzed, RunOptions(checks_enabled=dynamic,
                                                record=True))
        r_plain, r_rec = plain.run(), recorded.run()
        assert r_plain.cycles == r_rec.cycles
        assert r_plain.output == r_rec.output
        assert plain.recorder is None
        assert recorded.recorder.total > 0

    def test_threaded_program_is_cycle_neutral(self):
        analyzed = analyze(
            PRODUCER_CONSUMER_SOURCE).require_well_typed()
        plain = Machine(analyzed, RunOptions(checks_enabled=True))
        recorded = Machine(analyzed, RunOptions(checks_enabled=True,
                                                record=True))
        assert plain.run().cycles == recorded.run().cycles


class TestLeakDetection:
    def test_leaky_program_is_flagged(self):
        machine = _run_recorded(LEAK_SOURCE, dynamic=True)
        header = machine.recorder.header(
            meta={"mode": "dynamic", "summary": machine.stats.summary()})
        report = build_report(header, machine.recorder.records())
        assert [s.name for s in report.suspects] == ["immortal"]
        assert report.regions["immortal"].leak_suspect
        assert "LEAK SUSPECT" in report.format()

    def test_well_behaved_program_is_not_flagged(self):
        machine = _run_recorded(PRODUCER_CONSUMER_SOURCE, dynamic=True)
        header = machine.recorder.header(
            meta={"mode": "dynamic", "summary": machine.stats.summary()})
        report = build_report(header, machine.recorder.records())
        assert report.suspects == []


class TestInspectCLI:
    @pytest.fixture
    def dumps(self, tmp_path):
        program = tmp_path / "array.repro"
        program.write_text(get_benchmark("Array").source(fast=True))
        dyn = tmp_path / "dyn.flight.jsonl"
        sta = tmp_path / "static.flight.jsonl"
        code, _, _ = run_cli("run", str(program), "--dynamic-checks",
                             "--record-out", str(dyn))
        assert code == 0
        code, _, _ = run_cli("run", str(program),
                             "--record-out", str(sta))
        assert code == 0
        return dyn, sta

    def test_dump_is_valid_and_meta_carries_summary(self, dumps):
        dyn, _ = dumps
        header, records = load_flight(str(dyn))
        assert validate_flight(header, records) == []
        meta = header["meta"]
        assert meta["mode"] == "dynamic"
        assert meta["summary"]["assignment_checks"] > 0

    def test_text_report(self, dumps):
        dyn, _ = dumps
        code, out, err = run_cli("inspect", str(dyn))
        assert code == 0, err
        assert "check-elimination ledger" in out
        assert "regions (by peak live bytes)" in out

    def test_ledger_and_figure12_compare(self, dumps):
        dyn, sta = dumps
        code, out, err = run_cli("inspect", str(dyn),
                                 "--compare", str(sta), "--ledger")
        assert code == 0, err
        assert "figure-12 comparison" in out
        assert "overhead x" in out

    def test_json_report(self, dumps):
        dyn, _ = dumps
        code, out, _ = run_cli("inspect", str(dyn), "--json")
        assert code == 0
        data = json.loads(out)
        assert data["ledger"]["performed"]["total"] > 0
        assert data["ledger_mismatches"] == []
        assert data["regions"]

    def test_html_report(self, dumps, tmp_path):
        dyn, _ = dumps
        page = tmp_path / "report.html"
        code, _, err = run_cli("inspect", str(dyn), "--html", str(page))
        assert code == 0
        text = page.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "Check-elimination ledger" in text

    def test_invalid_dump_exits_1(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"schema": "not-a-flight-record/0"}\n')
        code, _, err = run_cli("inspect", str(bogus))
        assert code == 1
        assert "invalid flight record" in err

    def test_tampered_summary_exits_2(self, dumps, tmp_path):
        dyn, _ = dumps
        lines = dyn.read_text().splitlines()
        header = json.loads(lines[0])
        header["meta"]["summary"]["assignment_checks"] += 1
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join([json.dumps(header)] + lines[1:])
                            + "\n")
        code, _, err = run_cli("inspect", str(tampered))
        assert code == 2
        assert "mismatch" in err


class TestChaosFlightDump:
    def test_failed_run_dumps_flight_next_to_schedule(self, tmp_path):
        report = run_chaos(
            [("pc", PRODUCER_CONSUMER_SOURCE)], seeds=[0],
            rate=1.0, sites=("thread_spawn",), verify=False,
            schedule_dir=str(tmp_path))
        entry = report["results"][0]
        assert entry["status"] == "diagnosed"
        assert "flight" in entry, "failed run must auto-dump"
        flight = Path(entry["flight"])
        schedule = Path(entry["schedule"])
        assert flight.exists() and schedule.exists()
        assert flight.parent == schedule.parent
        header, records = load_flight(str(flight))
        assert validate_flight(header, records) == []
        assert header["meta"]["status"] == "diagnosed"
        assert header["meta"]["error"]["type"] == "ThreadSpawnError"

    def test_inspect_joins_schedule_to_flight(self, tmp_path):
        report = run_chaos(
            [("pc", PRODUCER_CONSUMER_SOURCE)], seeds=[0],
            rate=1.0, sites=("thread_spawn",), verify=False,
            schedule_dir=str(tmp_path))
        entry = report["results"][0]
        code, out, err = run_cli("inspect", entry["flight"],
                                 "--schedule", entry["schedule"])
        assert code == 0, err
        assert "injected faults (schedule join)" in out
        assert "thread_spawn#" in out
        # and through the library: every fault maps to a reaction
        header, records = load_flight(entry["flight"])
        _, schedule, _ = load_schedule(entry["schedule"])
        joins = join_faults(records, schedule)
        assert joins
        assert all(j["matched"] for j in joins)
        assert any(j["outcome"].startswith(("recovered", "crashed"))
                   for j in joins)

    def test_clean_run_dumps_no_flight(self, tmp_path):
        report = run_chaos(
            [("pc", PRODUCER_CONSUMER_SOURCE)], seeds=[0],
            rate=0.0, verify=False, schedule_dir=str(tmp_path))
        entry = report["results"][0]
        assert entry["status"] == "clean"
        assert "flight" not in entry
        assert list(Path(str(tmp_path)).glob("*.flight.jsonl")) == []
