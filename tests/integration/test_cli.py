"""Integration tests for the command-line front end."""

import io
import sys
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main

GOOD = """
class Cell<Owner o> { int v; Cell<o> next; }
(RHandle<r> h) {
    Cell<r> a = new Cell<r>;
    Cell b = new Cell;
    a.next = b;
    b.v = 42;
    print(b.v);
}
"""

BAD = """
class Cell<Owner o> { Cell<o> next; }
(RHandle<r1> h1) { (RHandle<r2> h2) {
    Cell<r1> outer = new Cell<r1>;
    Cell<r2> inner = new Cell<r2>;
    outer.next = inner;
} }
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.rtj"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.rtj"
    path.write_text(BAD)
    return str(path)


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TestCheck:
    def test_well_typed(self, good_file):
        code, out, _err = run_cli("check", good_file)
        assert code == 0
        assert "well-typed" in out

    def test_ill_typed(self, bad_file):
        code, _out, err = run_cli("check", bad_file)
        assert code == 1
        assert "SUBTYPE" in err


class TestRun:
    def test_static_mode(self, good_file):
        code, out, _err = run_cli("run", good_file)
        assert code == 0
        assert out.strip() == "42"

    def test_dynamic_mode_with_stats(self, good_file):
        code, out, err = run_cli("run", "--dynamic-checks", "--stats",
                                 good_file)
        assert code == 0
        assert out.strip() == "42"
        assert "assignment checks" in err

    def test_ill_typed_refuses_to_run(self, bad_file):
        code, _out, err = run_cli("run", bad_file)
        assert code == 1

    def test_runtime_failure_exit_code(self, tmp_path):
        path = tmp_path / "crash.rtj"
        path.write_text("{ int z = 0; print(1 / z); }")
        code, _out, err = run_cli("run", str(path))
        assert code == 2
        assert "runtime error" in err


class TestTranslate:
    def test_emits_java(self, good_file):
        code, out, _err = run_cli("translate", good_file)
        assert code == 0
        assert "class Cell" in out
        assert "MemoryArea" in out or "Memory" in out

    def test_strategies_flag(self, good_file):
        code, _out, err = run_cli("translate", "--strategies", good_file)
        assert code == 0
        assert "CURRENT_REGION" in err


class TestInferAndGraph:
    def test_infer_prints_annotated_program(self, good_file):
        code, out, _err = run_cli("infer", good_file)
        assert code == 0
        assert "Cell<r> b = new Cell<r>;" in out

    def test_graph_emits_dot(self, good_file):
        code, out, _err = run_cli("graph", good_file)
        assert code == 0
        assert out.startswith("digraph")
        assert "heap" in out


class TestLint:
    def test_lint_flags_redundant_heap(self, tmp_path):
        path = tmp_path / "sloppy.rtj"
        path.write_text(
            "class Cell<Owner o> { int v; Cell<o> next; }\n"
            "class M<Owner o> {\n"
            "  void go(Cell<o> c) accesses o, heap { c.next = null; }\n"
            "}\n")
        code, out, _err = run_cli("lint", str(path))
        assert code == 0
        assert "M.go" in out and "redundant" in out

    def test_lint_all_shows_clean_methods(self, good_file):
        code, out, _err = run_cli("lint", "--all", good_file)
        assert code == 0


class TestCompile:
    def test_compile_prints_erased_python(self, good_file):
        code, out, _err = run_cli("compile", good_file)
        assert code == 0
        assert "def run(rt):" in out
        assert "Owner" not in out

    def test_compile_execute_matches_run(self, good_file):
        code_c, out_c, _ = run_cli("compile", "--execute", good_file)
        code_r, out_r, _ = run_cli("run", good_file)
        assert code_c == code_r == 0
        assert out_c == out_r

    def test_compile_threaded_program_fails_cleanly(self, tmp_path):
        path = tmp_path / "threaded.rtj"
        path.write_text(
            "regionKind S extends SharedRegion { }\n"
            "class W<S r> { void go(RHandle<r> h) accesses r { } }\n"
            "(RHandle<S r> h) { fork (new W<r>).go(h); }")
        code, _out, err = run_cli("compile", str(path))
        assert code == 2
        assert "compile error" in err


class TestAnalysisCache:
    def test_run_with_cache_matches_plain_run(self, good_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code_a, out_a, _ = run_cli("run", "--analysis-cache", cache_dir,
                                   good_file)
        # second run replays from the saved disk cache
        code_b, out_b, _ = run_cli("run", "--analysis-cache", cache_dir,
                                   good_file)
        code_c, out_c, _ = run_cli("run", good_file)
        assert code_a == code_b == code_c == 0
        assert out_a == out_b == out_c
        assert (tmp_path / "cache" / "analysis-cache.json").exists()

    def test_ill_typed_diagnostics_unchanged_by_cache(self, bad_file,
                                                      tmp_path):
        cache_dir = str(tmp_path / "cache")
        code_a, _, err_a = run_cli("check", bad_file)
        code_b, _, err_b = run_cli("run", "--analysis-cache", cache_dir,
                                   bad_file)
        code_c, _, err_c = run_cli("run", "--analysis-cache", cache_dir,
                                   bad_file)
        assert code_a == 1 and code_b == 1 and code_c == 1
        # same error lines regardless of cache tier
        errors_a = [l for l in err_a.splitlines()
                    if l.startswith("error:")]
        errors_b = [l for l in err_b.splitlines()
                    if l.startswith("error:")]
        errors_c = [l for l in err_c.splitlines()
                    if l.startswith("error:")]
        assert errors_a == errors_b == errors_c

    def test_profile_accepts_cache_flag(self, good_file, tmp_path):
        code, out, _ = run_cli("profile", "--analysis-cache",
                               str(tmp_path / "c"), good_file)
        assert code == 0


class TestBenchFrontend:
    def test_frontend_suite_smoke(self, tmp_path):
        out_file = str(tmp_path / "bench.json")
        code, out, err = run_cli("bench", "--suite", "frontend",
                                 "--repeats", "1", "--out", out_file)
        assert code == 0
        assert "cold s" in out and "warm s" in out
        import json
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["schema"] == "repro-bench-frontend/1"
        assert set(payload["sizes"]) == {"5", "20", "40"}

    def test_frontend_suite_compare_detects_cold_regression(self,
                                                            tmp_path):
        from repro.bench import frontend
        payload = frontend.measure(sizes=[5], repeats=1)
        slower = {"schema": frontend.SCHEMA,
                  "sizes": {"5": dict(payload["sizes"]["5"])}}
        baseline = str(tmp_path / "base.json")
        # baseline claims we used to be 10x faster -> regression
        slower["sizes"]["5"]["cold_s"] = \
            payload["sizes"]["5"]["cold_s"] / 10.0
        frontend.save_payload(slower, baseline)
        code, _out, err = run_cli("bench", "--suite", "frontend",
                                  "--repeats", "1", "--compare", baseline)
        assert code == 3
        assert "regression" in err

    def test_only_flag_rejected_for_frontend(self):
        code, _out, err = run_cli("bench", "--suite", "frontend",
                                  "--only", "Array")
        assert code == 1
        assert "--only" in err


class TestBackendFlag:
    """--backend is shared by run/profile/bench/chaos (one parent
    parser); an explicit compiled backend implies the uninstrumented
    fast path unless an observability export needs live sinks."""

    def test_run_backend_py(self, good_file):
        code, out, err = run_cli("run", "--backend", "py", "--stats",
                                 good_file)
        assert code == 0
        assert out.strip() == "42"
        assert "(py-fused)" in err

    def test_run_backend_c_chains_and_says_why(self, good_file):
        # default runs validate checks, which the C backend erases
        code, out, err = run_cli("run", "--backend", "c", "--stats",
                                 good_file)
        assert code == 0
        assert out.strip() == "42"
        assert "c unavailable" in err

    def test_run_backend_keeps_obs_exports_live(self, good_file,
                                                tmp_path):
        trace = str(tmp_path / "trace.json")
        code, _out, err = run_cli("run", "--backend", "py",
                                  "--trace-out", trace, "--stats",
                                  good_file)
        assert code == 0
        assert "(interp [instrumented run])" in err

    def test_run_output_identical_across_backends(self, good_file):
        outputs = set()
        for backend in ("interp", "py", "py-fused", "py-faithful"):
            code, out, _err = run_cli("run", "--backend", backend,
                                      good_file)
            assert code == 0
            outputs.add(out)
        assert len(outputs) == 1

    def test_profile_accepts_backend(self, good_file):
        code, _out, _err = run_cli("profile", "--backend", "py",
                                   good_file)
        assert code == 0

    def test_bench_codegen_suite_and_gate(self, tmp_path):
        out_file = str(tmp_path / "bench.json")
        code, out, _err = run_cli("bench", "--suite", "codegen",
                                  "--only", "Array", "--backend", "py",
                                  "--repeats", "1",
                                  "--min-speedup", "0.01",
                                  "--out", out_file)
        assert code == 0
        assert "aggregate" in out
        import json
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["schema"] == "repro-bench-codegen/1"
        assert payload["divergences"] == []

    def test_bench_codegen_min_speedup_gate_fails_loud(self):
        code, _out, err = run_cli("bench", "--suite", "codegen",
                                  "--only", "Array", "--backend", "py",
                                  "--repeats", "1",
                                  "--min-speedup", "1000000")
        assert code == 3
        assert "codegen gate" in err

    def test_bench_codegen_rejects_interp_backend(self):
        code, _out, err = run_cli("bench", "--suite", "codegen",
                                  "--backend", "interp")
        assert code == 1
        assert "pick py or c" in err
