"""Equivalence of the compiled-dispatch interpreter with the seed.

``tests/data/seed_equivalence.json`` pins cycles, output hashes, and
run counters captured from the seed tree-walking interpreter across the
full benchmark registry in both check modes.  The closure-compiled
interpreter must reproduce every value exactly — the paper's numbers
are *simulated* cycles, so any drift in yield sequence, step count, or
GC behavior is a correctness bug, not a performance detail.

Also covers the ``instrument=False`` fast path (null observability
sinks must not change program behavior, and must record nothing) and
the ``repro bench`` wall-clock harness built on top of it.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.bench import wallclock
from repro.bench.suite import BENCHMARKS
from repro.core.api import analyze
from repro.interp.machine import RunOptions, run_source

FIXTURE_PATH = (pathlib.Path(__file__).parent.parent / "data"
                / "seed_equivalence.json")
FIXTURE = json.loads(FIXTURE_PATH.read_text())["fixture"]

MODES = {"dynamic": True, "static": False}


def _capture(result):
    return {
        "cycles": result.stats.cycles,
        "output_sha256": hashlib.sha256(
            "\n".join(result.output).encode()).hexdigest(),
        "output_lines": len(result.output),
        "assignment_checks": result.stats.assignment_checks,
        "read_checks": result.stats.read_checks,
        "allocations": result.stats.allocations,
        "objects_freed": result.stats.objects_freed,
        "steps": result.stats.steps,
    }


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("name", sorted(FIXTURE))
def test_matches_seed_interpreter(name, mode):
    analyzed = analyze(BENCHMARKS[name].source(fast=True))
    assert not analyzed.errors
    result = run_source(analyzed, RunOptions(
        checks_enabled=MODES[mode], validate=False))
    assert _capture(result) == FIXTURE[name][mode]


def test_fixture_covers_whole_registry():
    assert sorted(FIXTURE) == sorted(BENCHMARKS)


# ---------------------------------------------------------------------------
# instrument=False: the null-sink fast path
# ---------------------------------------------------------------------------

def test_uninstrumented_run_is_behavior_identical():
    analyzed = analyze(BENCHMARKS["Tree"].source(fast=True))
    base = run_source(analyzed, RunOptions(validate=False))
    fast = run_source(analyzed, RunOptions(validate=False,
                                           instrument=False))
    assert fast.output == base.output
    assert fast.stats.cycles == base.stats.cycles
    assert fast.stats.steps == base.stats.steps
    assert fast.stats.allocations == base.stats.allocations


def test_uninstrumented_run_records_nothing():
    analyzed = analyze(BENCHMARKS["Tree"].source(fast=True))
    result = run_source(analyzed, RunOptions(validate=False,
                                             instrument=False))
    stats = result.stats
    assert stats.tracer.null and stats.metrics.null and stats.profile.null
    assert stats.tracer.records == []
    assert stats.metrics.to_dict() == {}
    assert stats.profile.alloc_sites == {}
    assert stats.profile.check_sites == {}
    assert stats.profile.region_alloc == {}
    assert stats.profile.region_check_cycles == {}


def test_instrumented_run_still_records_by_default():
    analyzed = analyze(BENCHMARKS["Tree"].source(fast=True))
    result = run_source(analyzed, RunOptions(validate=False))
    assert not result.stats.tracer.null
    assert result.stats.tracer.records  # lifecycle events at minimum
    assert result.stats.metrics.to_dict()  # finalize published gauges


# ---------------------------------------------------------------------------
# the wall-clock bench harness
# ---------------------------------------------------------------------------

def test_measure_benchmark_row_shape():
    row = wallclock.measure_benchmark("Array", fast=True, repeats=1)
    for mode in ("dynamic", "static"):
        data = row[mode]
        assert data["wall_s"] > 0
        assert data["cycles"] == FIXTURE["Array"][mode]["cycles"]
        assert data["output_sha256"] == \
            FIXTURE["Array"][mode]["output_sha256"]
    assert row["cycle_overhead"] > 1.0  # dynamic checks cost cycles


def test_measure_payload_and_compare_roundtrip(tmp_path):
    payload = wallclock.measure(["Array"], fast=True, repeats=1)
    assert payload["schema"] == wallclock.SCHEMA
    path = tmp_path / "bench.json"
    wallclock.save_payload(payload, str(path))
    loaded = wallclock.load_payload(str(path))
    assert wallclock.compare(loaded, payload, threshold=10.0) == []


def test_compare_flags_cycle_drift_and_wall_regression():
    payload = wallclock.measure(["Array"], fast=True, repeats=1)
    drifted = json.loads(json.dumps(payload))
    drifted["benchmarks"]["Array"]["static"]["cycles"] += 1
    failures = wallclock.compare(drifted, payload)
    assert any("determinism break" in f for f in failures)

    slower = json.loads(json.dumps(payload))
    for mode in ("dynamic", "static"):
        slower["benchmarks"]["Array"][mode]["wall_s"] *= 10
    failures = wallclock.compare(slower, payload, threshold=0.30)
    assert any("wall-clock regression" in f for f in failures)

    missing = {"schema": wallclock.SCHEMA, "benchmarks": {}}
    failures = wallclock.compare(missing, payload)
    assert any("missing from current" in f for f in failures)


def test_committed_bench_payload_is_current():
    """BENCH_interp.json at the repo root must stay in sync with the
    interpreter: same simulated cycles, same output hashes."""
    root = pathlib.Path(__file__).parent.parent.parent
    committed = wallclock.load_payload(str(root / "BENCH_interp.json"))
    assert committed["schema"] == wallclock.SCHEMA
    for name, row in committed["benchmarks"].items():
        for mode in ("dynamic", "static"):
            assert row[mode]["cycles"] == FIXTURE[name][mode]["cycles"], \
                (name, mode)
            assert row[mode]["output_sha256"] == \
                FIXTURE[name][mode]["output_sha256"], (name, mode)
    # the embedded seed baseline records the before/after story: the
    # acceptance bar is >= 2x on the micro-benchmarks with static checks
    baseline = committed["baseline"]["benchmarks"]
    for name in ("Array", "Tree"):
        before = baseline[name]["static"]["wall_s"]
        after = committed["benchmarks"][name]["static"]["wall_s"]
        assert before / after >= 2.0, (name, before, after)
