"""Tests for the effects linter and the execution timeline."""

import pytest

from repro import OwnershipTypeError, RunOptions, analyze
from repro.interp.machine import Machine
from repro.tools import (event_counts, format_report, lint_effects,
                         render_timeline)
from repro.tools.timeline import events_between

CELL = "class Cell<Owner o> { int v; Cell<o> next; }\n"


class TestEffectsLint:
    def test_tight_clause_is_clean(self):
        reports = lint_effects(
            CELL +
            "class M<Owner o> {"
            "  void go(Cell<o> c) accesses o { c.next = null; }"
            "}")
        report = next(r for r in reports if r.method_name == "go")
        assert report.redundant == ()

    def test_unneeded_heap_flagged(self):
        from repro.core.owners import HEAP
        reports = lint_effects(
            CELL +
            "class M<Owner o> {"
            "  void go(Cell<o> c) accesses o, heap { c.next = null; }"
            "}")
        report = next(r for r in reports if r.method_name == "go")
        assert HEAP in report.redundant

    def test_needed_heap_not_flagged(self):
        from repro.core.owners import HEAP
        reports = lint_effects(
            CELL +
            "class M<Owner o> {"
            "  void go() accesses heap {"
            "    Cell<heap> c = new Cell<heap>;"
            "  }"
            "}")
        report = next(r for r in reports if r.method_name == "go")
        assert HEAP not in report.redundant

    def test_rt_effect_needed_when_entering_rt_subregion(self):
        from repro.core.owners import RT_EFFECT
        reports = lint_effects(
            "regionKind K extends SharedRegion {"
            "  Sub : LT(128) RT w;"
            "}\n"
            "regionKind Sub extends SharedRegion { }\n"
            "class M<K r> {"
            "  void go(RHandle<r> h) accesses r, RT {"
            "    (RHandle<Sub r2> h2 = h.w) { int x = 1; }"
            "  }"
            "}")
        report = next(r for r in reports if r.method_name == "go")
        assert RT_EFFECT not in report.redundant

    def test_greedy_keeps_a_sufficient_clause(self):
        # `accesses o, heap, immortal` with only an o-demand: heap and
        # immortal must go; o (or a survivor that covers it) must stay
        reports = lint_effects(
            CELL +
            "class M<Owner o> {"
            "  void go(Cell<o> c) accesses o, heap, immortal {"
            "    c.next = null;"
            "  }"
            "}")
        report = next(r for r in reports if r.method_name == "go")
        kept = set(report.declared) - set(report.redundant)
        assert kept, "at least one effect must survive to cover the demand"

    def test_format_report(self):
        reports = lint_effects(
            CELL +
            "class M<Owner o> {"
            "  void go(Cell<o> c) accesses o, heap { c.next = null; }"
            "}")
        text = format_report(reports)
        assert "M.go" in text
        assert "redundant" in text

    def test_ill_typed_input_raises(self):
        with pytest.raises(OwnershipTypeError):
            lint_effects(CELL + "{ Cell<zap> c = null; }")


class TestTimeline:
    PROGRAM = """
regionKind Buf extends SharedRegion {
    Sub : LT(512) NoRT s;
}
regionKind Sub extends SharedRegion { }
class Cell { int v; }
class Worker<Buf r> {
    void run(RHandle<r> h) accesses r, heap {
        int i = 0;
        while (i < 3) {
            (RHandle<Sub r2> h2 = h.s) {
                Cell<r2> c = new Cell<r2>;
                c.v = i;
            }
            yieldnow();
            i = i + 1;
        }
    }
}
(RHandle<Buf r> h) {
    fork (new Worker<r>).run(h);
}
"""

    @pytest.fixture
    def machine(self):
        m = Machine(analyze(self.PROGRAM).require_well_typed(),
                    RunOptions(quantum=300))
        m.run()
        return m

    def test_event_counts(self, machine):
        counts = event_counts(machine.stats)
        assert counts["region-created"] >= 2   # Buf + its LT subregion
        assert counts["region-flushed"] == 3   # one flush per iteration
        assert counts["thread-spawned"] == 1
        assert counts["thread-finished"] == 2  # main + worker
        assert counts["region-destroyed"] >= 1

    def test_events_are_time_ordered(self, machine):
        window = events_between(machine.stats, 0, machine.stats.cycles)
        cycles = [cycle for cycle, _k, _s in window]
        assert cycles == sorted(cycles)

    def test_render_contains_marks_and_legend(self, machine):
        text = render_timeline(machine.stats)
        assert "region-created" in text
        assert "region-flushed" in text
        assert "legend" in text

    def test_kind_filter(self, machine):
        text = render_timeline(machine.stats, kinds=["region-flushed"])
        assert "region-flushed" in text
        assert "thread-spawned" not in text

    def test_events_between(self, machine):
        window = events_between(machine.stats, 0, machine.stats.cycles)
        assert window == [(e.cycle, e.kind, e.subject)
                          for e in machine.stats.tracer.records]
        assert events_between(machine.stats, -1, -1) == []

    def test_empty_timeline(self):
        from repro.rtsj.stats import Stats
        assert render_timeline(Stats()) == "(no events)"
