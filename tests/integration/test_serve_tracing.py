"""End-to-end request tracing over a live ``repro serve`` instance.

The wire contracts pinned here, all over real sockets and real forked
workers:

* **every** response carries ``X-Repro-Trace-Id`` — successes, 4xx
  admission rejects, and early protocol rejects alike — and a caller
  supplied ``X-Repro-Trace`` context is adopted, not replaced;
* one request produces **one complete span tree spanning three
  processes** (frontend admission, pool queue/dispatch, worker
  analyze/execute), readable back via ``GET /traces/<id>`` with zero
  ``validate_trace`` complaints — the cross-fork propagation gate;
* a coalesced follower's trace contains a ``coalesce-wait`` span
  naming the leader's trace id instead of duplicated worker spans;
* a job requeued across a worker crash keeps its trace id, shows two
  ``dispatch`` spans, and is flagged + retained as ``faulted``;
* error traces always survive tail-based sampling, even at an
  absurd 1-in-1000 rate;
* the ``ResilientClient`` mints the context end to end: the server
  root's parent is the client's attempt span;
* ``--access-log`` emits one JSON line per request naming the trace.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.trace import validate_trace
from repro.serve import (ClientPolicy, ResilientClient, ServeConfig,
                         ServeService, ServiceFaultInjector,
                         ServiceFaultPlan, format_traceparent)
from repro.serve.protocol import TRACE_HEADER

from .test_serve import SOURCE, _get, _post, _variant


@pytest.fixture(scope="module")
def service():
    config = ServeConfig(workers=2, queue_depth=16, trace_sample=1)
    with ServeService(config).serve_background() as svc:
        yield svc


def _trace_record(service, trace_id):
    status, _headers, data = _get(service, f"/traces/{trace_id}")
    assert status == 200, f"trace {trace_id} not retained"
    return json.loads(data)


class TestTraceHeaders:

    def test_every_response_names_its_trace(self, service):
        cases = [
            ("run", {"program": _variant("hdr-ok")}, 200),
            ("run", {"program": "{ print( }"}, 422),
            ("run", {}, 400),
            ("nope", {"program": SOURCE}, 404),
        ]
        seen = set()
        for endpoint, payload, expect in cases:
            status, headers, _body = _post(service, endpoint, payload)
            assert status == expect, (endpoint, status)
            trace_id = headers.get("X-Repro-Trace-Id")
            assert trace_id and len(trace_id) == 32, \
                f"{endpoint} -> {expect} lost its trace id"
            seen.add(trace_id)
        assert len(seen) == len(cases)  # one fresh trace per request

    def test_a_supplied_context_is_adopted(self, service):
        import http.client
        trace_id = "ab" * 16
        parent = "cd" * 8
        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=60)
        try:
            conn.request(
                "POST", "/v1/run",
                body=json.dumps({"program": _variant("hdr-adopt")}),
                headers={TRACE_HEADER:
                         format_traceparent(trace_id, parent)})
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 200
            assert resp.getheader("X-Repro-Trace-Id") == trace_id
        finally:
            conn.close()
        record = _trace_record(service, trace_id)
        root = [s for s in record["spans"]
                if s["span"] == record["root"]][0]
        assert root["parent"] == parent  # the caller's span, external


class TestSpanTreeAcrossFork:

    def test_cold_miss_produces_a_complete_three_process_tree(
            self, service):
        status, headers, body = _post(service, "run", {
            "program": _variant("tree"), "mode": "static"})
        assert status == 200 and body["ok"]
        record = _trace_record(service,
                               headers["X-Repro-Trace-Id"])
        assert validate_trace(record) == []
        by_name = {}
        for span in record["spans"]:
            by_name.setdefault(span["name"], []).append(span)
        # the three processes each contributed their layer
        assert by_name["request"][0]["process"] == "frontend"
        assert by_name["admission"][0]["process"] == "frontend"
        assert by_name["queue-wait"][0]["process"] == "pool"
        assert by_name["dispatch"][0]["process"] == "pool"
        assert by_name["analyze"][0]["process"] == "worker"
        assert by_name["execute"][0]["process"] == "worker"
        # worker spans parent the dispatch span they rode
        dispatch = by_name["dispatch"][0]
        assert by_name["batch-wait"][0]["parent"] == dispatch["span"]
        # and the tree is temporally sane: monotonic clocks agree
        # across the fork, so the worker span nests inside dispatch
        analyze = by_name["analyze"][0]
        assert dispatch["start"] <= analyze["start"]
        assert analyze["end"] <= dispatch["end"] + 1e-3

    def test_hot_hit_traces_without_touching_the_pool(self, service):
        program = _variant("hot")
        _post(service, "run", {"program": program})
        status, headers, _body = _post(service, "run",
                                       {"program": program})
        assert status == 200
        record = _trace_record(service,
                               headers["X-Repro-Trace-Id"])
        names = {s["name"] for s in record["spans"]}
        assert "cache-hot" in names
        assert "dispatch" not in names  # answered at the frontend

    def test_error_trace_is_flagged_and_sound(self, service):
        status, headers, _body = _post(
            service, "run", {"program": "{ print( }"})
        assert status == 422
        record = _trace_record(service,
                               headers["X-Repro-Trace-Id"])
        assert record["status"] == 422
        assert record["retained"] == "error"
        assert validate_trace(record) == []


class TestCoalescedFollowers:

    def test_followers_reference_the_leaders_trace(self, service):
        program = _variant("coalesce-trace")
        barrier = threading.Barrier(6)
        results = []

        def fire():
            barrier.wait(timeout=10)
            status, headers, _ = _post(service, "run",
                                       {"program": program})
            results.append((status, headers["X-Repro-Trace-Id"]))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert [s for s, _ in results] == [200] * 6
        records = [_trace_record(service, tid) for _, tid in results]
        leaders = [r for r in records
                   if any(s["name"] == "dispatch"
                          for s in r["spans"])]
        followers = [r for r in records if "coalesced" in r["flags"]]
        hot = [r for r in records
               if any(s["name"] == "cache-hot" for s in r["spans"])]
        assert len(leaders) == 1
        assert len(followers) + len(hot) == 5
        leader_trace = leaders[0]["trace"]
        for record in followers:
            (wait,) = [s for s in record["spans"]
                       if s["name"] == "coalesce-wait"]
            assert wait["attrs"]["leader_trace"] == leader_trace
            # a follower rides the leader's work — no worker spans
            assert not any(s["process"] == "worker"
                           for s in record["spans"])


class TestRequeueAcrossCrash:

    def test_requeued_job_keeps_its_trace_and_shows_both_dispatches(
            self, tmp_path):
        injector = ServiceFaultInjector(ServiceFaultPlan(
            seed=0, rate=1.0, sites=("worker_crash",), max_faults=1))
        config = ServeConfig(workers=1, trace_sample=1000)
        with ServeService(config, fault_injector=injector) \
                .serve_background() as svc:
            status, headers, body = _post(svc, "run", {
                "program": _variant("crash"), "mode": "static"})
            assert status == 200 and body["ok"], body
            trace_id = headers["X-Repro-Trace-Id"]
            record = _trace_record(svc, trace_id)
        # survived sampling at 1-in-1000 because it is faulted
        assert record["retained"] == "faulted"
        assert "requeued" in record["flags"]
        assert "faulted" in record["flags"]
        dispatches = [s for s in record["spans"]
                      if s["name"] == "dispatch"]
        assert len(dispatches) == 2
        attempts = sorted(d["attrs"]["attempt"] for d in dispatches)
        assert attempts == [1, 2]
        # the second queue-wait is marked as the requeue
        requeues = [s for s in record["spans"]
                    if s["name"] == "queue-wait"
                    and s["attrs"].get("requeued")]
        assert len(requeues) == 1
        assert validate_trace(record) == []


class TestSamplingUnderLoad:

    def test_errors_survive_an_absurd_sampling_rate(self):
        config = ServeConfig(workers=1, trace_sample=1000)
        with ServeService(config).serve_background() as svc:
            for i in range(4):
                _post(svc, "run", {"program": _variant(f"spl{i}")})
            status, headers, _ = _post(svc, "run",
                                       {"program": "{ print( }"})
            assert status == 422
            error_trace = headers["X-Repro-Trace-Id"]
            status, _h, data = _get(svc, "/traces")
            payload = json.loads(data)
            stats = payload["stats"]
            assert stats["seen"] == 5
            assert stats["by_reason"].get("error") == 1
            retained = {r["trace"] for r in payload["traces"]}
            assert error_trace in retained

    def test_no_trace_mode_disables_the_whole_plane(self):
        config = ServeConfig(workers=1, tracing=False)
        with ServeService(config).serve_background() as svc:
            status, headers, _ = _post(svc, "run",
                                       {"program": _variant("off")})
            assert status == 200
            assert "X-Repro-Trace-Id" not in headers
            status, _h, _d = _get(svc, "/traces")
            assert status == 404


class TestClientPropagation:

    def test_client_context_parents_the_server_tree(self, service):
        client = ResilientClient(
            service.host, service.port,
            policy=ClientPolicy(max_retries=1))
        result = client.post("run",
                             {"program": _variant("client-prop")})
        assert result.status == 200
        assert result.trace_id
        assert result.headers.get("X-Repro-Trace-Id") == \
            result.trace_id
        record = _trace_record(service, result.trace_id)
        root = [s for s in record["spans"]
                if s["span"] == record["root"]][0]
        client_record = client.traces[-1]
        assert client_record["trace"] == result.trace_id
        attempt_ids = {s["span"] for s in client_record["spans"]
                       if s["name"] == "attempt"}
        assert root["parent"] in attempt_ids
        client_names = {s["name"] for s in client_record["spans"]}
        assert "client-request" in client_names


class TestAccessLog:

    def test_one_json_line_per_request_with_trace_ids(self, tmp_path):
        log_path = str(tmp_path / "access.jsonl")
        config = ServeConfig(workers=1, trace_sample=1,
                             access_log=log_path)
        with ServeService(config).serve_background() as svc:
            _post(svc, "run", {"program": _variant("log1"),
                               "tenant": "alice"})
            _post(svc, "run", {"program": "{ print( }",
                               "tenant": "bob"})
        # the writer thread is flushed by close(); read afterwards
        lines = [json.loads(line)
                 for line in open(log_path, encoding="utf-8")
                 if line.strip()]
        assert len(lines) == 2
        for entry in lines:
            assert len(entry["trace"]) == 32
            assert entry["endpoint"] == "run"
            assert {"status", "tenant", "rung", "queue_ms",
                    "compute_ms", "duration_ms"} <= set(entry)
        assert lines[0]["tenant"] == "alice"
        assert lines[0]["status"] == 200
        assert lines[1]["tenant"] == "bob"
        assert lines[1]["status"] == 422

    def test_logging_never_blocks_responses(self, tmp_path):
        # a directory path cannot be opened for append: the log is
        # disabled, the service still answers
        config = ServeConfig(workers=1, access_log=str(tmp_path))
        with ServeService(config).serve_background() as svc:
            status, headers, _ = _post(
                svc, "run", {"program": _variant("log-bad")})
            assert status == 200
            assert headers.get("X-Repro-Trace-Id")
