"""Integration tests over the eight benchmark programs of Section 3."""

import pytest

from repro import RunOptions, analyze, run_source
from repro.bench.overhead import count_annotations
from repro.bench.suite import BENCHMARKS, IMAGEREC_STAGES
from repro.bench.timing import measure_check_overhead

ALL = sorted(BENCHMARKS)


@pytest.mark.parametrize("name", ALL)
def test_benchmark_typechecks(name):
    bench = BENCHMARKS[name]
    analyzed = analyze(bench.source(fast=True))
    assert not analyzed.errors, [str(e) for e in analyzed.errors]


@pytest.mark.parametrize("name", ALL)
def test_benchmark_runs_identically_in_both_modes(name):
    bench = BENCHMARKS[name]
    row = measure_check_overhead(bench.source(fast=True), name,
                                 expected_output=bench.expected_output())
    assert row.dynamic_cycles > 0
    assert row.static_cycles > 0


@pytest.mark.parametrize("name", ALL)
def test_benchmark_validates_clean(name):
    """Theorems 3/4 on the benchmark suite: running a well-typed program
    with every check *verified* (but not charged) raises nothing."""
    bench = BENCHMARKS[name]
    analyzed = analyze(bench.source(fast=True))
    result = run_source(analyzed, RunOptions(checks_enabled=False,
                                             validate=True))
    assert result.stats.cycles > 0


@pytest.mark.parametrize("name", ALL)
def test_benchmark_checks_removed_in_static_mode(name):
    bench = BENCHMARKS[name]
    analyzed = analyze(bench.source(fast=True))
    result = run_source(analyzed, RunOptions(checks_enabled=False,
                                             validate=False))
    assert result.stats.assignment_checks == 0
    assert result.stats.read_checks == 0
    assert result.stats.check_cycles == 0


@pytest.mark.parametrize("stage", IMAGEREC_STAGES)
def test_imagerec_stages_run(stage):
    bench = BENCHMARKS["ImageRec"]
    row = measure_check_overhead(bench.source(fast=True, stage=stage),
                                 stage)
    assert row.overhead >= 0.999


class TestCheckOverheadShape:
    """Figure 12's qualitative shape on the fast parameters: micro ≫
    scientific > servers ≈ 1.  (The full-parameter numeric match is the
    benchmark harness's job.)"""

    @pytest.fixture(scope="class")
    def rows(self):
        return {name: measure_check_overhead(
            BENCHMARKS[name].source(fast=True), name)
            for name in ALL}

    def test_micro_benchmarks_dominate(self, rows):
        assert rows["Array"].overhead > 3.0
        assert rows["Tree"].overhead > 2.0
        assert rows["Array"].overhead > rows["Tree"].overhead

    def test_scientific_modest(self, rows):
        for name in ("Water", "Barnes"):
            assert 1.0 < rows[name].overhead < 1.6

    def test_servers_negligible(self, rows):
        for name in ("http", "game", "phone"):
            assert 1.0 <= rows[name].overhead < 1.1

    def test_ordering_matches_paper(self, rows):
        assert (rows["Array"].overhead > rows["Tree"].overhead
                > rows["Water"].overhead >= rows["Barnes"].overhead
                > rows["http"].overhead)


class TestAnnotationOverheadShape:
    """Figure 11's qualitative claim: only a small fraction of lines needs
    annotations, concentrated where regions are created."""

    @pytest.mark.parametrize("name", ALL)
    def test_annotated_fraction_small(self, name):
        bench = BENCHMARKS[name]
        report = count_annotations(bench.source(), name)
        assert report.annotated_lines < report.total_lines * 0.35
        assert report.annotated_lines >= 1  # regions must be created

    def test_imagerec_nearly_annotation_free(self):
        report = count_annotations(BENCHMARKS["ImageRec"].source(),
                                   "ImageRec")
        assert report.annotated_lines <= 3
