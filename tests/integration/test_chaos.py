"""Integration tests for the chaos campaign driver and the ``repro
chaos`` CLI: outcome taxonomy, deterministic replay, schedule
persistence, and exit codes."""

import io
import json
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

import pytest

from repro.chaos import (replay_schedule, run_chaos, run_one,
                         verify_replay)
from repro.cli import main
from repro.rtsj.faults import FaultPlan, load_schedule, save_schedule

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import (PRODUCER_CONSUMER_SOURCE, TSTACK_SOURCE,  # noqa: E402
                      assert_well_typed)


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TestRunOne:
    def test_no_faults_is_clean(self):
        outcome = run_one(TSTACK_SOURCE, FaultPlan(seed=0, rate=0.0),
                          label="tstack")
        assert outcome.status == "clean"
        assert outcome.ok
        assert outcome.faults == []
        assert outcome.cycles > 0

    def test_faulty_run_is_recovered_or_diagnosed(self):
        outcome = run_one(TSTACK_SOURCE, FaultPlan(seed=3, rate=0.5),
                          label="tstack")
        assert outcome.status in ("recovered", "diagnosed")
        assert outcome.ok
        if outcome.status == "diagnosed":
            assert outcome.error is not None
            assert outcome.error["type"]

    def test_fault_count_matches_stats(self):
        outcome = run_one(TSTACK_SOURCE, FaultPlan(seed=5, rate=0.3),
                          label="tstack")
        assert outcome.summary["faults_injected"] == len(outcome.faults)

    def test_same_plan_same_identity(self):
        plan = FaultPlan(seed=17, rate=0.25)
        first = run_one(TSTACK_SOURCE, plan, label="tstack")
        second = run_one(TSTACK_SOURCE, plan, label="tstack")
        assert first.identity() == second.identity()


class TestVerifyReplay:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_replay_matches_recording(self, seed):
        analyzed = assert_well_typed(TSTACK_SOURCE)
        plan = FaultPlan(seed=seed, rate=0.3)
        baseline = run_one(analyzed, plan, label="tstack")
        assert verify_replay(analyzed, plan, baseline) == []

    def test_replay_of_threaded_program_matches(self):
        analyzed = assert_well_typed(PRODUCER_CONSUMER_SOURCE)
        plan = FaultPlan(seed=2, rate=0.05)
        baseline = run_one(analyzed, plan, label="pc")
        assert verify_replay(analyzed, plan, baseline) == []


class TestCampaign:
    def test_campaign_report_and_schedules(self, tmp_path):
        schedule_dir = str(tmp_path / "schedules")
        import os
        os.makedirs(schedule_dir)
        report = run_chaos([("tstack", TSTACK_SOURCE)], seeds=[0, 1, 2],
                           rate=0.2, schedule_dir=schedule_dir)
        assert report["ok"], report["failures"]
        assert report["runs"] == 3
        assert sum(report["statuses"].values()) == 3
        for entry in report["results"]:
            assert entry["replay_ok"]
            assert Path(entry["schedule"]).exists()

    def test_persisted_schedule_replays_standalone(self, tmp_path):
        schedule_dir = str(tmp_path)
        report = run_chaos([("tstack", TSTACK_SOURCE)], seeds=[4],
                           rate=0.4, verify=False,
                           schedule_dir=schedule_dir)
        path = report["results"][0]["schedule"]
        result = replay_schedule(path)
        assert result["ok"], result["mismatches"]
        assert result["outcome"].status == \
            report["results"][0]["status"]

    def test_schedule_without_source_needs_explicit_program(
            self, tmp_path):
        path = str(tmp_path / "bare.schedule.jsonl")
        save_schedule(path, FaultPlan(seed=0, rate=0.0), [])
        with pytest.raises(ValueError, match="no program source"):
            replay_schedule(path)
        # an explicitly passed program fills the gap
        result = replay_schedule(path, source=TSTACK_SOURCE)
        assert result["ok"]

    def test_schedule_meta_identifies_the_run(self, tmp_path):
        report = run_chaos([("tstack", TSTACK_SOURCE)], seeds=[6],
                           rate=0.3, verify=False,
                           schedule_dir=str(tmp_path))
        plan, records, meta = load_schedule(
            report["results"][0]["schedule"])
        assert plan.seed == 6
        assert meta["program"] == "tstack"
        assert meta["source"] == TSTACK_SOURCE
        assert len(records) == report["results"][0]["faults"]


class TestChaosCli:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "prog.rtj"
        path.write_text(TSTACK_SOURCE)
        return str(path)

    def test_campaign_exit_zero(self, program_file):
        code, out, err = run_cli("chaos", program_file, "--seeds", "2",
                                 "--rate", "0.2")
        assert code == 0
        assert "2 runs:" in err

    def test_json_report(self, program_file):
        code, out, _err = run_cli("chaos", program_file, "--seeds", "1",
                                  "--rate", "0.1", "--json")
        assert code == 0
        report = json.loads(out)
        assert report["ok"]
        assert report["runs"] == 1

    def test_unknown_site_rejected(self, program_file):
        code, _out, err = run_cli("chaos", program_file, "--sites",
                                  "bogus")
        assert code == 1
        assert "unknown fault site" in err

    def test_schedule_out_and_replay(self, program_file, tmp_path):
        sched_dir = str(tmp_path / "schedules")
        code, _out, _err = run_cli(
            "chaos", program_file, "--seeds", "1", "--seed-base", "3",
            "--rate", "0.4", "--schedule-out", sched_dir)
        assert code == 0
        schedules = list(Path(sched_dir).glob("*.schedule.jsonl"))
        assert len(schedules) == 1
        code, out, _err = run_cli("chaos", "--replay",
                                  str(schedules[0]))
        assert code == 0
        assert "replayed" in out and "status=" in out

    def test_driver_script_without_embedded_program_is_skipped(
            self, tmp_path):
        script = tmp_path / "driver.py"
        script.write_text("print('no embedded program here')\n")
        code, _out, err = run_cli("chaos", str(script), "--seeds", "1")
        assert "skipping" in err
        assert code != 0  # empty corpus is an error, not a silent pass
