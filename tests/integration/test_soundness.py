"""The paper's headline claim (Theorems 3 and 4), tested empirically:

    "Our system guarantees that the RTSJ runtime checks will never fail
     for well-typed programs."

Three angles:

1. every well-typed program in the repo runs with full check validation
   and never trips a check;
2. conversely, programs the *checker rejects* for lifetime reasons, when
   executed anyway with the RTSJ dynamic checks on, *do* fail a check —
   i.e. the static system and the runtime checks agree on both sides;
3. without either protection, the same programs create dangling
   references that the interpreter's dangling detector observes.
"""

import sys
from pathlib import Path

import pytest

from repro import (IllegalAssignmentError, RunOptions, analyze,
                   run_source)
from repro.errors import InterpreterError

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from conftest import (PRODUCER_CONSUMER_SOURCE, REALTIME_SOURCE,  # noqa: E402
                      TSTACK_SOURCE)

#: a program that stores an inner-region reference into an outer-region
#: object and then follows it after the inner region dies — the classic
#: dangling-reference bug the type system exists to prevent
DANGLING = """
class Cell<Owner o> { int v; Cell<o> next; }
(RHandle<r1> h1) {
    Cell<r1> outer = new Cell<r1>;
    (RHandle<r2> h2) {
        Cell<r2> inner = new Cell<r2>;
        inner.v = 42;
        outer.next = inner;
    }
    Cell<r1> ghost = outer.next;
    print(ghost.v);
}
"""

#: a no-heap real-time thread receiving a heap reference
RT_HEAP_LEAK = """
regionKind Shared extends SharedRegion { }
class Cell<Owner o> { int v; }
class Task<Shared : LT s> {
    void run(Cell<heap> c) accesses s { print(c.v); }
}
(RHandle<Shared : LT(4096) r> h) {
    Cell<heap> leaked = new Cell<heap>;
    RT fork (new Task<r>).run(leaked);
}
"""

WELL_TYPED_CORPUS = [TSTACK_SOURCE, PRODUCER_CONSUMER_SOURCE,
                     REALTIME_SOURCE]


class TestWellTypedNeverFailChecks:
    @pytest.mark.parametrize("source", WELL_TYPED_CORPUS)
    def test_dynamic_checks_never_fire(self, source):
        analyzed = analyze(source)
        assert not analyzed.errors
        # checks performed *and* validated: any violation raises
        result = run_source(analyzed, RunOptions(checks_enabled=True,
                                                 validate=True))
        assert result.stats.cycles > 0

    @pytest.mark.parametrize("source", WELL_TYPED_CORPUS)
    def test_check_removal_preserves_behaviour(self, source):
        analyzed = analyze(source)
        dyn = run_source(analyzed, RunOptions(checks_enabled=True))
        sta = run_source(analyzed, RunOptions(checks_enabled=False))
        assert dyn.output == sta.output
        assert sta.cycles <= dyn.cycles


class TestCheckerAndChecksAgree:
    def test_dangling_program_rejected_statically(self):
        analyzed = analyze(DANGLING)
        assert analyzed.errors
        assert "SUBTYPE" in analyzed.error_rules()

    def test_dangling_program_fails_rtsj_check_at_runtime(self):
        # run the ill-typed program anyway, with the RTSJ checks on: the
        # store that the checker rejected is exactly the store the
        # dynamic check catches
        analyzed = analyze(DANGLING)
        with pytest.raises(IllegalAssignmentError):
            run_source(analyzed, RunOptions(checks_enabled=True),
                       require_well_typed=False)

    def test_validation_catches_the_bad_store_even_without_charging(self):
        # validate-only mode performs the same check for free
        analyzed = analyze(DANGLING)
        with pytest.raises(IllegalAssignmentError):
            run_source(analyzed,
                       RunOptions(checks_enabled=False, validate=True),
                       require_well_typed=False)

    def test_dangling_program_reads_dead_memory_without_protection(self):
        # with *neither* static types nor dynamic checks the program
        # silently reads through a dangling reference into a deleted
        # region — the unsafety both systems exist to prevent
        from repro.interp.machine import Machine
        analyzed = analyze(DANGLING)
        machine = Machine(analyzed, RunOptions(checks_enabled=False,
                                               validate=False))
        result = machine.run()
        assert result.output == ["42"]  # stale value from dead memory
        dead_regions = [a for a in machine.regions.areas
                        if a.name == "r2"]
        assert dead_regions and not dead_regions[0].live

    def test_rt_heap_leak_rejected_statically(self):
        analyzed = analyze(RT_HEAP_LEAK)
        assert analyzed.errors
        assert "EXPR RTFORK" in analyzed.error_rules()

    def test_rt_heap_leak_fails_rtsj_check_at_runtime(self):
        from repro import MemoryAccessError
        analyzed = analyze(RT_HEAP_LEAK)
        with pytest.raises(MemoryAccessError):
            run_source(analyzed, RunOptions(checks_enabled=True),
                       require_well_typed=False)


class TestMemorySafetyProperties:
    def test_r3_no_dangling_in_well_typed_program(self):
        # the legal direction: inner objects point outward; when the
        # inner region dies nothing dangles
        source = """
class Cell<Owner o> { int v; }
class Link<Owner a, Owner b> { Cell<b> out; }
(RHandle<r1> h1) {
    Cell<r1> longlived = new Cell<r1>;
    longlived.v = 9;
    (RHandle<r2> h2) {
        Link<r2, r1> link = new Link<r2, r1>;
        link.out = longlived;
        print(link.out.v);
    }
    print(longlived.v);
}
"""
        analyzed = analyze(source)
        assert not analyzed.errors
        result = run_source(analyzed, RunOptions(validate=True))
        assert result.output == ["9", "9"]

    def test_gc_never_collects_region_referenced_heap_objects(self):
        # heap objects referenced only from a region must survive GC
        source = """
class Cell<Owner o> { int v; Cell<heap> toHeap; }
(RHandle<r> h) {
    Cell<r> holder = new Cell<r>;
    holder.toHeap = new Cell<heap>;
    holder.toHeap.v = 77;
    int i = 0;
    while (i < 400) {
        Cell<heap> garbage = new Cell<heap>;
        i = i + 1;
    }
    print(holder.toHeap.v);
}
"""
        analyzed = analyze(source)
        assert not analyzed.errors
        result = run_source(analyzed, RunOptions(validate=True,
                                                 gc_trigger_bytes=4000))
        assert result.output == ["77"]
        assert result.stats.gc_runs > 0
