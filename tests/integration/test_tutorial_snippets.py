"""Every program in docs/TUTORIAL.md behaves exactly as the tutorial
claims — documentation that is tested stays true."""

import pytest

from repro import (IllegalAssignmentError, RunOptions, analyze,
                   run_source)

STEP1 = """
class Point { int x; int y; }
{
    Point p = new Point;
    p.x = 3; p.y = 4;
    print(p.x * p.x + p.y * p.y);
}
"""

STEP2 = """
class Point { int x; int y; }
(RHandle<r> h) {
    Point<r> p = new Point<r>;
    Point q = new Point;
    q = p;
    print(q.x);
}
"""

STEP2_BAD = """
class Cell { int v; Cell next; }
(RHandle<r1> h1) {
    Cell<r1> longLived = new Cell<r1>;
    (RHandle<r2> h2) {
        Cell<r2> shortLived = new Cell<r2>;
        shortLived.next = longLived;
        longLived.next = shortLived;
    }
}
"""

STEP3 = """
class Engine<Owner o> { int rpm; }
class Car<Owner o> {
    Engine<this> engine;
    void init() { engine = new Engine<this>; }
    int revs() { if (engine == null) { return 0; } return engine.rpm; }
}
(RHandle<r> h) {
    Car<r> car = new Car<r>;
    car.init();
    print(car.revs());
}
"""

STEP4 = """
regionKind Mailbox extends SharedRegion {
    Note<this> slot;
}
class Note { int body; }
class Writer<Mailbox r> {
    void run(RHandle<r> h) accesses r {
        Note n = new Note;
        n.body = 42;
        h.slot = n;
    }
}
(RHandle<Mailbox r> h) {
    fork (new Writer<r>).run(h);
    int spins = 0;
    while (h.slot == null) { yieldnow(); spins = spins + 1; }
    print(h.slot.body);
}
"""

STEP5 = """
regionKind Mission extends SharedRegion {
    Work : LT(8192) RT w;
}
regionKind Work extends SharedRegion { }
class Sample { int v; Sample next; }
class Sensor<Mission : LT m> {
    void run(RHandle<m> h, int iters) accesses m, RT {
        int i = 0;
        while (i < iters) {
            (RHandle<Work r2> h2 = h.w) {
                Sample<r2> s = new Sample<r2>;
                s.v = i;
            }
            yieldnow();
            i = i + 1;
        }
        print(i);
    }
}
(RHandle<Mission : LT(16384) r> h) {
    RT fork (new Sensor<r>).run(h, 100);
}
"""


def run_ok(source, **options):
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    return run_source(analyzed, RunOptions(**options))


class TestTutorialSteps:
    def test_step1_plain_objects(self):
        result = run_ok(STEP1)
        assert result.output == ["25"]
        # the paragraph claims heap allocation at main's top level
        from repro.lang import pretty_program
        analyzed = analyze(STEP1)
        assert "Point<initialRegion> p" in pretty_program(analyzed.program)

    def test_step2_region(self):
        result = run_ok(STEP2)
        assert result.output == ["0"]
        assert result.stats.gc_runs == 0
        assert result.stats.regions_created == 1

    def test_step2_bad_store_rejected_and_caught(self):
        analyzed = analyze(STEP2_BAD)
        assert "SUBTYPE" in analyzed.error_rules()
        with pytest.raises(IllegalAssignmentError):
            run_source(analyzed, RunOptions(checks_enabled=True),
                       require_well_typed=False)

    def test_step3_encapsulation(self):
        assert run_ok(STEP3).output == ["0"]
        stolen = STEP3.replace(
            "print(car.revs());",
            "Engine<r> stolen = car.engine; print(0);")
        analyzed = analyze(stolen)
        assert any("encapsulated" in str(e) for e in analyzed.errors)

    def test_step4_threads_and_portals(self):
        result = run_ok(STEP4, quantum=300)
        assert result.output == ["42"]

    def test_step5_realtime(self):
        result = run_ok(STEP5)
        assert result.output == ["100"]
        assert result.stats.region_flushes == 100

    @pytest.mark.parametrize("breakage,rule", [
        (("Sample<r2> s = new Sample<r2>;",
          "Sample<heap> s = new Sample<heap>;"), "EXPR NEW"),
        # dropping the LT policy fails even earlier: the Sensor's
        # formal demands Mission:LT, so the type itself is ill-formed
        (("(RHandle<Mission : LT(16384) r> h)",
          "(RHandle<Mission r> h)"), "TYPE C"),
        (("RT fork (new Sensor<r>).run(h, 100);",
          "fork (new Sensor<r>).run(h, 100);"), "EXPR FORK"),
        (("accesses m, RT {", "accesses m, RT, heap {"), "EXPR RTFORK"),
    ])
    def test_step5_breakages_rejected_as_documented(self, breakage, rule):
        old, new = breakage
        assert old in STEP5
        analyzed = analyze(STEP5.replace(old, new))
        assert rule in analyzed.error_rules(), (
            rule, analyzed.error_rules())
