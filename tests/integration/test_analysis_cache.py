"""Cold/warm equivalence of the incremental analysis cache.

The contract of ``analyze(..., cache=AnalysisCache(...))`` is strict:
identical errors (messages, rules, spans), identical semantic tables,
and — downstream — byte-identical interpreter behaviour, whether a
program is analyzed cold, replayed from the in-memory tier, replayed
from the disk tier, or re-analyzed after a one-class edit.  Malformed
input must fall back to the whole-program path so diagnostics never
change shape.
"""

import importlib.util
from pathlib import Path

import pytest

from repro import RunOptions, analyze, run_source
from repro.core.cache import AnalysisCache, signature_text, split_chunks
from repro.core.owners import Owner
from repro.core.types import ClassType, HandleType, PrimType
from repro.errors import LexError

# load the shared sources by path — a bare `import conftest` resolves
# to whichever conftest.py pytest put on sys.path first
_spec = importlib.util.spec_from_file_location(
    "_tests_conftest",
    Path(__file__).resolve().parent.parent / "conftest.py")
_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_conftest)
TSTACK_SOURCE = _conftest.TSTACK_SOURCE
PRODUCER_CONSUMER_SOURCE = _conftest.PRODUCER_CONSUMER_SOURCE
REALTIME_SOURCE = _conftest.REALTIME_SOURCE

#: Figure 5's illegal s6 assignment — a representative ill-typed
#: program: the inner region's object must not escape to the outer
#: stack (fails the outlives premise of the assignment rule).
ILL_TYPED_ESCAPE = TSTACK_SOURCE.replace(
    "T<r2> t = s1.pop();",
    "T<r2> t = s1.pop(); s2.push(new T<r1>); s3.push(t);")

#: several classes, several distinct errors, comments between decls —
#: exercises per-class error replay with spans past the first chunk
ILL_TYPED_MULTI = """
class A<Owner o> { int x; }
// a comment between declarations
class B<Owner o> {
    A<o> held;
    void bad(A<heap> a) { held = a; }   /* [ASSIGN] error */
}
class C<Owner o> {
    int also_bad() { return missing; }
}
(RHandle<r> h) {
    B<r> b = new B<r>;
    print(b.nope);
}
"""

CORPUS = [TSTACK_SOURCE, PRODUCER_CONSUMER_SOURCE, REALTIME_SOURCE,
          ILL_TYPED_ESCAPE, ILL_TYPED_MULTI]


def errors_key(analyzed):
    """Everything observable about the diagnostics."""
    return [(str(e), e.rule, str(e.span)) for e in analyzed.errors]


@pytest.mark.parametrize("source", CORPUS)
def test_cold_and_warm_agree(source):
    cold = analyze(source)
    cache = AnalysisCache()
    first = analyze(source, cache=cache)   # populates
    warm = analyze(source, cache=cache)    # replays everything
    for cached in (first, warm):
        assert errors_key(cached) == errors_key(cold)
        assert cached.program == cold.program
        assert cached.info == cold.info
    if warm.cache_stats is not None and "class" in source:
        assert warm.cache_stats["ast_hits"] > 0
        assert warm.cache_stats["ast_misses"] == 0


@pytest.mark.parametrize("source", CORPUS)
def test_disk_tier_round_trip(source, tmp_path):
    path = str(tmp_path / "cache.json")
    cold = analyze(source)
    cache = AnalysisCache(path)
    analyze(source, cache=cache)
    cache.save()

    fresh = AnalysisCache(path)            # new process, empty memory
    replayed = analyze(source, cache=fresh)
    assert errors_key(replayed) == errors_key(cold)
    assert replayed.info == cold.info
    if replayed.cache_stats is not None and "class" in source:
        # disk tier re-parses but replays inference + diagnostics
        assert replayed.cache_stats["ast_hits"] == 0
        assert replayed.cache_stats["replay_hits"] > 0
        assert replayed.cache_stats["check_misses"] == 0


def test_one_class_edit_rechecks_only_that_class():
    from repro.bench.frontend import edit_one_class, synth_program
    source = synth_program(8)
    edited = edit_one_class(source)
    cache = AnalysisCache()
    analyze(source, cache=cache)
    warm = analyze(edited, cache=cache)
    cold = analyze(edited)
    assert errors_key(warm) == errors_key(cold)
    assert warm.info == cold.info
    assert warm.cache_stats["ast_misses"] == 1
    assert warm.cache_stats["check_misses"] == 1
    assert warm.cache_stats["ast_hits"] == 8  # Cell + 8 workers − edited


def test_signature_edit_invalidates_dependents():
    source = ("class A<Owner o> { int f() { return 1; } }\n"
              "class B<Owner o> { A<o> a;"
              " int g() { return a.f(); } }\n"
              "class C<Owner o> { int x; }\n")
    cache = AnalysisCache()
    analyze(source, cache=cache)
    # body-only edit of A: only A re-checked
    warm = analyze(source.replace("return 1", "return 2"), cache=cache)
    assert warm.cache_stats["check_misses"] == 1
    # signature edit of A: dependent B re-checked too, C untouched
    cache = AnalysisCache()
    analyze(source, cache=cache)
    warm = analyze(source.replace("int f()", "int f(int z)"),
                   cache=cache)
    assert warm.errors  # a.f() now misses an argument
    assert warm.cache_stats["check_misses"] == 2
    assert warm.cache_stats["ast_hits"] == 1  # only C is untouched


def test_interpreter_equivalence_through_cache():
    """A cached analysis drives the interpreter byte-identically."""
    for source in (TSTACK_SOURCE, PRODUCER_CONSUMER_SOURCE,
                   REALTIME_SOURCE):
        cold = analyze(source)
        cache = AnalysisCache()
        analyze(source, cache=cache)
        warm = analyze(source, cache=cache)
        options = RunOptions(validate=False)
        a = run_source(cold, options)
        b = run_source(warm, options)
        assert a.output == b.output
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.steps == b.stats.steps


def test_malformed_input_falls_back_identically():
    cache = AnalysisCache()
    # unbalanced braces: split fails, plain path reports the parse error
    bad = "class A<Owner o> { int x; "
    with pytest.raises(Exception) as cached_err:
        analyze(bad, cache=cache)
    with pytest.raises(Exception) as cold_err:
        analyze(bad)
    assert str(cached_err.value) == str(cold_err.value)
    assert cache.stats.fallbacks >= 1
    # lex error inside a class: chunk parsing aborts, same fallback
    bad = "class A<Owner o> { int x; } class B<Owner o> { in€t y; }"
    with pytest.raises(LexError) as cached_err:
        analyze(bad, cache=cache)
    with pytest.raises(LexError) as cold_err:
        analyze(bad)
    assert str(cached_err.value) == str(cold_err.value)


def test_split_chunks_structure():
    chunks = split_chunks(TSTACK_SOURCE)
    assert chunks is not None
    kinds = [(c.kind, c.name) for c in chunks]
    assert ("class", "TStack") in kinds
    assert ("class", "TNode") in kinds
    assert kinds[-1][0] == "main"
    # chunk texts reassemble the class declarations verbatim
    for c in chunks:
        if c.kind == "class":
            assert c.text in TSTACK_SOURCE
    # braces inside comments and strings of unbalance return None
    assert split_chunks("class A<Owner o> { /* { */ int x; }") is not None
    assert split_chunks("class A { ") is None
    assert split_chunks("/* unterminated") is None


def test_signature_text_ignores_bodies():
    a = "class A<Owner o> { int f() { return 1; } int g; }"
    b = "class A<Owner o> { int f() { return 2 + 2; } int g; }"
    c = "class A<Owner o> { int f(int z) { return 1; } int g; }"
    assert signature_text(a) == signature_text(b)
    assert signature_text(a) != signature_text(c)


def test_interning_properties():
    """Hash-consed constructors return the same object for equal
    arguments, and equality/hash match structural equality."""
    assert Owner("alpha") is Owner("alpha")
    assert PrimType("int") is PrimType("int")
    o = Owner("alpha")
    assert ClassType("A", (o, Owner("beta"))) is \
        ClassType("A", (Owner("alpha"), Owner("beta")))
    assert HandleType(o) is HandleType(Owner("alpha"))
    assert ClassType("A", (o,)) != ClassType("B", (o,))
    assert hash(Owner("alpha")) == hash(Owner("alpha"))
    assert Owner("alpha") != Owner("beta")


def test_cached_analysis_matches_seed_fixture():
    """A cache-replayed analysis drives the interpreter to the exact
    seed-interpreter numbers pinned in ``seed_equivalence.json``."""
    import hashlib
    import json

    from repro.bench.suite import BENCHMARKS

    fixture_path = (Path(__file__).resolve().parent.parent / "data"
                    / "seed_equivalence.json")
    fixture = json.loads(fixture_path.read_text())["fixture"]
    for name in sorted(BENCHMARKS):
        cache = AnalysisCache()
        source = BENCHMARKS[name].source(fast=True)
        analyze(source, cache=cache)
        warm = analyze(source, cache=cache)   # fully replayed
        assert not warm.errors
        result = run_source(warm, RunOptions(checks_enabled=False,
                                             validate=False))
        pinned = fixture[name]["static"]
        assert result.stats.cycles == pinned["cycles"]
        assert result.stats.steps == pinned["steps"]
        assert hashlib.sha256("\n".join(result.output).encode()) \
            .hexdigest() == pinned["output_sha256"]


# ---------------------------------------------------------------------------
# multi-process disk tier: atomic writes, concurrent writers
# ---------------------------------------------------------------------------

def _hammer_cache(path, source, rounds, failures):
    """Writer+reader loop run in a child process: every observed file
    state must be a complete, schema-valid payload (atomic rename means
    torn JSON is impossible), and analysis through the shared path must
    stay correct throughout."""
    import json as _json
    import os as _os

    from repro import analyze as _analyze
    from repro.core.cache import SCHEMA as _SCHEMA
    from repro.core.cache import AnalysisCache as _Cache
    try:
        for _ in range(rounds):
            cache = _Cache(path)
            analyzed = _analyze(source, cache=cache)
            if analyzed.errors:
                failures.put("analysis through shared cache errored")
                return
            cache.save()
            raw = open(path, "r", encoding="utf-8").read()
            payload = _json.loads(raw)      # a torn write raises here
            if payload.get("schema") != _SCHEMA:
                failures.put(f"bad schema: {payload.get('schema')!r}")
                return
            for name in _os.listdir(_os.path.dirname(path) or "."):
                if name.endswith(".tmp"):
                    # benign transiently, but it must carry a pid tag so
                    # concurrent writers never share a temp file
                    stem = name[:-len(".tmp")]
                    if not stem.rpartition(".")[2].isdigit():
                        failures.put(f"untagged temp file: {name}")
                        return
    except Exception as exc:  # pragma: no cover - failure reporting
        failures.put(f"{type(exc).__name__}: {exc}")


def test_two_process_disk_tier_stress(tmp_path):
    import multiprocessing as mp

    path = str(tmp_path / "shared" / "cache.json")
    # different bodies, same class names: the processes overwrite each
    # other's entries (last-write-wins) while readers must never see a
    # torn file
    src_a = ("class A<Owner o> { int f() { return 1; } }\n"
             "{ A<heap> a = new A<heap>; print(a.f()); }")
    src_b = ("class A<Owner o> { int f() { return 2; } }\n"
             "{ A<heap> a = new A<heap>; print(a.f()); }")
    ctx = mp.get_context()
    failures = ctx.Queue()
    procs = [ctx.Process(target=_hammer_cache,
                         args=(path, src, 25, failures))
             for src in (src_a, src_b)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    assert failures.empty(), failures.get()
    # the survivor is a complete payload either process can warm from
    fresh = AnalysisCache(path)
    assert fresh.disk  # non-empty disk tier survived the stampede


def test_save_failure_leaves_no_temp_litter(tmp_path, monkeypatch):
    import json as _json

    path = str(tmp_path / "cache.json")
    cache = AnalysisCache(path)
    analyze("class A<Owner o> { int x; }\n{ print(1); }", cache=cache)

    real_dump = _json.dump

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr("repro.core.cache.json.dump", boom)
    with pytest.raises(OSError):
        cache.save()
    monkeypatch.setattr("repro.core.cache.json.dump", real_dump)
    assert [p.name for p in tmp_path.iterdir()] == []  # no .tmp left
    cache.save()
    assert (tmp_path / "cache.json").exists()


def test_shard_path_layout():
    from repro.core.cache import shard_path

    fp = "ABCDEF0123456789"
    p = shard_path("/var/cache", fp)
    assert p == "/var/cache/ab/abcdef0123456789.json"
    # shards for distinct fingerprints never collide on one file
    assert shard_path("r", "aa11") != shard_path("r", "aa12")
