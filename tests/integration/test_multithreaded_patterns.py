"""Integration tests: more demanding thread/region interaction patterns —
multiple producers, fresh subregions, handle fields across calls, nested
shared regions."""

import pytest

from repro import RunOptions, analyze, run_source
from repro.interp.machine import Machine


def run_ok(source: str, **options):
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    return run_source(analyzed, RunOptions(**options))


class TestMultipleProducers:
    def make_source(self, producers: int, per_producer: int) -> str:
        total = producers * per_producer
        forks = "\n    ".join(
            f"fork (new Producer<r>).run(h, {i * per_producer}, "
            f"{per_producer});"
            for i in range(producers))
        return f"""
regionKind Buf extends SharedRegion {{
    Sub : LT(1024) NoRT s;
}}
regionKind Sub extends SharedRegion {{
    Item<this> slot;
}}
class Item {{ int tag; }}
class Producer<Buf r> {{
    void run(RHandle<r> h, int base, int n) accesses r, heap {{
        int i = 0;
        while (i < n) {{
            boolean placed = false;
            while (!placed) {{
                (RHandle<Sub r2> h2 = h.s) {{
                    if (h2.slot == null) {{
                        Item item = new Item;
                        item.tag = base + i;
                        h2.slot = item;
                        placed = true;
                    }}
                }}
                yieldnow();
            }}
            i = i + 1;
        }}
    }}
}}
class Consumer<Buf r> {{
    void run(RHandle<r> h, int expect) accesses r, heap {{
        int got = 0;
        int sum = 0;
        while (got < expect) {{
            (RHandle<Sub r2> h2 = h.s) {{
                Item item = h2.slot;
                if (item != null) {{
                    sum = sum + item.tag;
                    h2.slot = null;
                    got = got + 1;
                }}
            }}
            yieldnow();
        }}
        print(got);
        print(sum);
    }}
}}
(RHandle<Buf r> h) {{
    {forks}
    fork (new Consumer<r>).run(h, {total});
}}
"""

    @pytest.mark.parametrize("producers,per", [(2, 3), (3, 4)])
    def test_all_items_delivered_exactly_once(self, producers, per):
        total = producers * per
        expected_sum = sum(range(total))
        result = run_ok(self.make_source(producers, per), quantum=350,
                        max_cycles=20_000_000)
        assert result.output == [str(total), str(expected_sum)]

    def test_identical_across_check_modes(self):
        source = self.make_source(2, 3)
        analyzed = analyze(source)
        dyn = run_source(analyzed, RunOptions(checks_enabled=True,
                                              quantum=350))
        sta = run_source(analyzed, RunOptions(checks_enabled=False,
                                              quantum=350))
        assert dyn.output == sta.output


class TestFreshSubregions:
    SOURCE = """
regionKind Buf extends SharedRegion {
    Sub : VT NoRT s;
}
regionKind Sub extends SharedRegion { }
class Cell { int v; }
(RHandle<Buf r> h) {
    int i = 0;
    while (i < 3) {
        (RHandle<Sub r2> h2 = new h.s) {
            Cell<r2> c = new Cell<r2>;
            c.v = i;
            print(c.v);
        }
        i = i + 1;
    }
}
"""

    def test_new_creates_distinct_instances(self):
        analyzed = analyze(self.SOURCE)
        assert not analyzed.errors
        machine = Machine(analyzed, RunOptions())
        result = machine.run()
        assert result.output == ["0", "1", "2"]
        instances = [a for a in machine.regions.areas
                     if a.kind_name == "Sub"]
        assert len(instances) == 3, \
            "`new h.s` replaces the subregion instance each time"


class TestNestedSharedRegions:
    # the worker lives in the inner (shorter-lived) region and reaches
    # outward into the outer one — the direction TYPE C allows
    SOURCE = """
regionKind Outer extends SharedRegion { }
regionKind Inner extends SharedRegion { }
class Cell { int v; }
class Worker<Inner b, Outer a> {
    void run(RHandle<b> hb, RHandle<a> ha) accesses a, b {
        Cell<a> longer = new Cell<a>;
        Cell<b> shorter = new Cell<b>;
        longer.v = 1;
        shorter.v = 2;
        print(longer.v + shorter.v);
    }
}
(RHandle<Outer ra> hOuter) {
    (RHandle<Inner rb> hInner) {
        fork (new Worker<rb, ra>).run(hInner, hOuter);
    }
}
"""

    def test_nested_shared_regions_with_fork(self):
        result = run_ok(self.SOURCE, quantum=500)
        assert result.output == ["3"]

    def test_inverted_lifetimes_rejected(self):
        # an outer-region worker cannot be parameterized by the inner
        # region: rb does not outlive ra (TYPE C)
        bad = self.SOURCE.replace("fork (new Worker<rb, ra>)"
                                  ".run(hInner, hOuter);",
                                  "Worker<ra, rb> bad = null;")
        analyzed = analyze(bad)
        assert "TYPE C" in analyzed.error_rules()
