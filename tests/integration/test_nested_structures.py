"""Integration tests for deeper region structures: nested subregions,
scalar portals, inference through subtyping."""

import pytest

from repro import RunOptions, analyze, run_source
from repro.interp.machine import Machine


def run_ok(source: str, **options):
    analyzed = analyze(source)
    assert not analyzed.errors, [str(e) for e in analyzed.errors]
    return run_source(analyzed, RunOptions(**options))


class TestNestedSubregions:
    """A subregion kind that itself declares subregions — the paper's
    grammar allows arbitrary finite nesting, and the LT preallocation
    must recurse ('allocates memory for all its (transitive) LT
    (sub)regions')."""

    SOURCE = """
regionKind Top extends SharedRegion {
    Mid : LT(2048) NoRT mid;
}
regionKind Mid extends SharedRegion {
    Leaf : LT(512) NoRT leaf;
}
regionKind Leaf extends SharedRegion { }
class Cell { int v; }
(RHandle<Top r> h) {
    (RHandle<Mid r2> h2 = h.mid) {
        Cell<r2> inMid = new Cell<r2>;
        inMid.v = 1;
        (RHandle<Leaf r3> h3 = h2.leaf) {
            Cell<r3> inLeaf = new Cell<r3>;
            inLeaf.v = 2;
            print(inMid.v + inLeaf.v);
        }
    }
}
"""

    def test_two_level_entry(self):
        assert run_ok(self.SOURCE).output == ["3"]

    def test_transitive_lt_preallocation(self):
        analyzed = analyze(self.SOURCE)
        machine = Machine(analyzed, RunOptions())
        machine.run()
        kinds = [a.kind_name for a in machine.regions.areas]
        # all three levels were instantiated, the LT ones eagerly at
        # top-level region creation
        assert kinds.count("Mid") == 1
        assert kinds.count("Leaf") == 1
        leaf = [a for a in machine.regions.areas
                if a.kind_name == "Leaf"][0]
        assert leaf.policy == "LT"
        assert leaf.lt_budget == 512

    def test_inner_pointing_outward_ok(self):
        source = self.SOURCE.replace(
            "print(inMid.v + inLeaf.v);",
            "Link<r3, r2> l = new Link<r3, r2>; l.out = inMid; print(3);"
        ).replace(
            "class Cell { int v; }",
            "class Cell { int v; }\n"
            "class Link<Owner a, Owner b> { Cell<b> out; }")
        assert run_ok(source).output == ["3"]

    def test_outer_pointing_inward_rejected(self):
        source = self.SOURCE.replace(
            "print(inMid.v + inLeaf.v);",
            "Link<r2, r3> bad = null; print(0);"
        ).replace(
            "class Cell { int v; }",
            "class Cell { int v; }\n"
            "class Link<Owner a, Owner b> { Cell<b> out; }")
        analyzed = analyze(source)
        assert "TYPE C" in analyzed.error_rules()

    def test_flush_cascades_from_the_leaves(self):
        # exiting mid flushes mid only once leaf has been flushed
        analyzed = analyze(self.SOURCE)
        machine = Machine(analyzed, RunOptions())
        result = machine.run()
        assert result.stats.region_flushes >= 2
        mid = [a for a in machine.regions.areas
               if a.kind_name == "Mid"][0]
        assert mid.is_flushed


class TestScalarPortals:
    SOURCE = """
regionKind Counter extends SharedRegion {
    int hits;
    float load;
    boolean open;
}
(RHandle<Counter r> h) {
    h.hits = 3;
    h.hits = h.hits + 1;
    h.load = 0.5;
    h.open = true;
    print(h.hits);
    print(h.load);
    print(h.open);
}
"""

    def test_scalar_portal_fields(self):
        assert run_ok(self.SOURCE).output == ["4", "0.5", "true"]

    def test_scalar_portals_never_block_flush(self):
        # the flush rule only considers *reference* portals; scalar
        # portal values are data, not liveness roots.  Our portals store
        # scalars too — a non-null scalar is a value, not a reference,
        # and can_flush must treat it as such.
        analyzed = analyze(self.SOURCE)
        machine = Machine(analyzed, RunOptions())
        machine.run()
        counter = [a for a in machine.regions.areas
                   if a.kind_name == "Counter"][0]
        assert not counter.live  # destroyed when main exited


class TestInferenceThroughSubtyping:
    def test_local_inferred_via_upcast(self):
        from repro.lang import pretty_program
        analyzed = analyze(
            "class Animal<Owner o> { int legs; }\n"
            "class Dog<Owner o> extends Animal<o> { }\n"
            "(RHandle<r> h) {"
            "  Animal<r> a = new Animal<r>;"
            "  Animal mixed = new Dog;"
            "  mixed = a;"
            "}")
        assert not analyzed.errors
        text = pretty_program(analyzed.program)
        assert "Animal<r> mixed = new Dog<r>;" in text

    def test_field_of_superclass_type(self):
        assert run_ok(
            "class Animal<Owner o> { int legs; }\n"
            "class Dog<Owner o> extends Animal<o> { }\n"
            "class Kennel<Owner o> {"
            "  Animal<o> resident;"
            "}\n"
            "(RHandle<r> h) {"
            "  Kennel<r> k = new Kennel<r>;"
            "  Dog pup = new Dog;"       # inferred Dog<r> via the store
            "  k.resident = pup;"
            "  print(k.resident == pup);"
            "}").output == ["true"]


class TestScalarPortalsOnSubregions:
    SOURCE = """
regionKind Top extends SharedRegion {
    Stats : LT(256) NoRT stats;
}
regionKind Stats extends SharedRegion {
    int count;
}
class Cell { int v; }
(RHandle<Top r> h) {
    int i = 0;
    while (i < 3) {
        (RHandle<Stats r2> h2 = h.stats) {
            Cell<r2> c = new Cell<r2>;
            h2.count = h2.count + 1;
        }
        i = i + 1;
    }
    (RHandle<Stats r2> h2 = h.stats) {
        print(h2.count);
    }
}
"""

    def test_scalar_portal_does_not_block_flush(self):
        analyzed = analyze(self.SOURCE)
        assert not analyzed.errors, [str(e) for e in analyzed.errors]
        machine = Machine(analyzed, RunOptions())
        result = machine.run()
        # flushed on every exit despite the non-zero scalar portal ...
        assert result.stats.region_flushes >= 3
        # ... but note the flush clears the region's *objects*, not the
        # portal scalars, which live in the region header (w2 wrapper)
        assert result.output == ["3"]
