"""Every example script must run clean (they assert their own claims)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent.parent / "examples")
    .glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "producer_consumer.py",
            "realtime_pipeline.py", "check_elimination.py",
            "ownership_graph.py"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=180)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip(), "examples narrate what they demonstrate"
