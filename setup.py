"""Legacy setup shim so `pip install -e .` works without the `wheel`
package (offline environment)."""

from setuptools import setup

setup()
