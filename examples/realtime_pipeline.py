#!/usr/bin/env python3
"""Real-time threads next to a garbage-collected workload (Section 2.3).

A no-heap real-time thread processes sensor frames in an LT subregion of
a shared mission region — entering, allocating, and flushing without ever
allocating memory — while a regular thread churns the garbage-collected
heap hard enough to trigger collections.

The demonstration: the GC runs (pausing the regular thread), yet the
real-time thread never touches the heap, never waits on the collector,
and every one of its allocations is linear-time in an already-reserved LT
area.  The static type system is what makes removing the runtime checks
safe: we run with ``checks_enabled=False`` and validation on, and nothing
goes wrong.
"""

from repro import RunOptions, analyze
from repro.interp.machine import Machine

PROGRAM = """
regionKind MissionRegion extends SharedRegion {
    FrameSubRegion : LT(8192) RT frames;
}
regionKind FrameSubRegion extends SharedRegion { }

class Sample { int value; Sample next; }

class SensorTask<MissionRegion r> {
    void run(RHandle<r> h, int iterations) accesses r, RT {
        int i = 0;
        while (i < iterations) {
            // enter the preallocated LT subregion: constant-time, no
            // memory allocation, no GC interaction
            (RHandle<FrameSubRegion r2> h2 = h.frames) {
                Sample<r2> head = null;   // anchor: samples live in r2
                int j = 0;
                while (j < 16) {
                    Sample s = new Sample;   // linear-time LT allocation
                    s.value = i * 100 + j;
                    s.next = head;
                    head = s;
                    j = j + 1;
                }
                int sum = 0;
                Sample w = head;
                while (w != null) {
                    sum = sum + w.value;
                    w = w.next;
                }
                check(sum > 0);
            }   // exit: count hits zero, portals empty -> flushed, memory kept
            yieldnow();
            i = i + 1;
        }
        print(i);
    }
}

class HeapChurner {
    void run(int allocations) accesses heap {
        int i = 0;
        Sample<heap> keep = null;
        while (i < allocations) {
            Sample<heap> garbage = new Sample<heap>;
            garbage.value = i;
            if (i % 50 == 0) {
                garbage.next = keep;    // a few survivors
                keep = garbage;
            }
            i = i + 1;
            if (i % 25 == 0) { yieldnow(); }
        }
    }
}

(RHandle<MissionRegion : LT(16384) r> h) {
    fork (new HeapChurner<heap>).run(600);
    RT fork (new SensorTask<r>).run(h, 12);
}
"""


def main() -> None:
    analyzed = analyze(PROGRAM).require_well_typed()
    # small heap so the churner forces collections mid-run
    machine = Machine(analyzed, RunOptions(
        checks_enabled=False,     # the type system replaced the checks
        validate=True,            # ... and we verify that claim
        gc_trigger_bytes=8_000,
        quantum=800,
    ))
    result = machine.run()

    rt_threads = [t for t in machine.scheduler.threads if t.realtime]
    regular = [t for t in machine.scheduler.threads
               if not t.realtime and t.name != "main"]
    assert len(rt_threads) == 1
    rt = rt_threads[0]

    print(f"real-time iterations completed : {result.output}")
    print(f"garbage collections            : {result.stats.gc_runs}")
    print(f"total GC pause cycles          : {result.stats.gc_pause_cycles}")
    print(f"RT thread max dispatch latency : {rt.max_dispatch_latency} cycles")
    for t in regular:
        print(f"regular thread '{t.name}' max dispatch latency: "
              f"{t.max_dispatch_latency} cycles")
    print(f"RT-thread heap accesses        : 0 (validated — no "
          "MemoryAccessError was raised)")

    assert result.stats.gc_runs > 0, "the churner must trigger the GC"
    # the collector pauses regular threads, never the real-time thread
    assert all(rt.max_dispatch_latency < t.max_dispatch_latency
               for t in regular), \
        "the RT thread must be dispatched more promptly than regular ones"
    print("\nreal-time thread ran beside the collector without ever "
          "waiting for it.")


if __name__ == "__main__":
    main()
