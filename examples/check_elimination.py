#!/usr/bin/env python3
"""Check elimination and the RTSJ translation (Sections 2.6 and 3).

Takes the Array micro-benchmark, shows:

1. the Figure 12 measurement for one program — cycles with the RTSJ
   dynamic checks vs cycles with the checks statically discharged;
2. the Section 2.6 translation: for every allocation site, *how* the
   erased RTSJ program obtains the region handle the typechecker proved
   available, plus a pseudo-Java rendering of the erased program.
"""

from repro import AllocStrategy, RunOptions, analyze, run_source, translate
from repro.bench.programs import array_bench


def main() -> None:
    source = array_bench.source(n=200)
    analyzed = analyze(source).require_well_typed()

    print("=== Figure 12, one row ===")
    dynamic = run_source(analyzed, RunOptions(checks_enabled=True,
                                              validate=False))
    static = run_source(analyzed, RunOptions(checks_enabled=False,
                                             validate=False))
    assert dynamic.output == static.output
    print(f"dynamic checks : {dynamic.cycles:>9} cycles "
          f"({dynamic.stats.assignment_checks} assignment checks)")
    print(f"static checks  : {static.cycles:>9} cycles (0 checks)")
    print(f"speedup        : {dynamic.cycles / static.cycles:.2f}x "
          "(paper: 7.23x)")

    print("\n=== Section 2.6: allocation-site strategies ===")
    translation = translate(analyzed)
    for site in translation.sites:
        how = site.strategy.name
        if site.handle:
            how += f" (handle '{site.handle}')"
        print(f"  line {site.line:>3}: new {site.class_name:<12} "
              f"owner '{site.owner}' -> {how}")
    histogram = translation.strategy_histogram()
    assert AllocStrategy.HANDLE_VAR in histogram \
        or AllocStrategy.CURRENT_REGION in histogram

    print("\n=== pseudo-RTSJ Java (erased program, first 40 lines) ===")
    for line in translation.java.splitlines()[:40]:
        print("  " + line)


if __name__ == "__main__":
    main()
