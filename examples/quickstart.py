#!/usr/bin/env python3
"""Quickstart: the paper's TStack example (Figure 5), end to end.

* writes the TStack program in the core language,
* typechecks it (with Section 2.5 inference filling in local owners),
* shows the two illegal types from Figure 5 being rejected,
* runs it on the simulated RTSJ platform with and without dynamic checks.
"""

from repro import OwnershipTypeError, RunOptions, analyze, run_source

TSTACK = """
class T<Owner o> { int x; }

class TStack<Owner stackOwner, Owner TOwner> {
    TNode<this, TOwner> head = null;

    void push(T<TOwner> value) {
        TNode newNode = new TNode;          // owners inferred
        newNode.init(value, head);
        head = newNode;
    }

    T<TOwner> pop() {
        if (head == null) { return null; }
        T<TOwner> value = head.value;
        head = head.next;
        return value;
    }
}

class TNode<Owner nodeOwner, Owner TOwner> {
    T<TOwner> value;
    TNode<nodeOwner, TOwner> next;

    void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
        this.value = v;
        this.next = n;
    }
}

(RHandle<r1> h1) {
    (RHandle<r2> h2) {
        TStack<r2, r2> s1 = new TStack<r2, r2>;          // Figure 5's s1
        TStack<r2, r1> s2 = new TStack<r2, r1>;          // ... s2
        TStack<r1, immortal> s3 = new TStack<r1, immortal>;
        TStack<heap, immortal> s4 = new TStack<heap, immortal>;
        TStack<immortal, heap> s5 = new TStack<immortal, heap>;

        int i = 0;
        while (i < 5) {
            T<r2> t = new T<r2>;
            t.x = i * i;
            s1.push(t);
            i = i + 1;
        }
        while (i > 0) {
            T<r2> popped = s1.pop();
            print(popped.x);
            i = i - 1;
        }
    }
}
"""


def main() -> None:
    print("=== typechecking TStack (Figure 5) ===")
    analyzed = analyze(TSTACK).require_well_typed()
    print("well-typed.")

    print("\n=== the paper's illegal types are rejected ===")
    for bad_decl in ("TStack<r1, r2> s6 = null;",     # r2 does not outlive r1
                     "TStack<heap, r1> s7 = null;"):  # r1 does not outlive heap
        bad = TSTACK.replace("int i = 0;", bad_decl + " int i = 0;")
        try:
            analyze(bad).require_well_typed()
            raise AssertionError("should have been rejected")
        except OwnershipTypeError as err:
            print(f"  rejected: {err.message}")

    print("\n=== running on the simulated RTSJ platform ===")
    with_checks = run_source(analyzed, RunOptions(checks_enabled=True))
    without = run_source(analyzed, RunOptions(checks_enabled=False))
    assert with_checks.output == without.output
    print(f"  output: {with_checks.output}")
    print(f"  cycles with RTSJ dynamic checks : {with_checks.cycles}")
    print(f"  cycles with static checks only  : {without.cycles}")
    print(f"  checks eliminated               : "
          f"{with_checks.stats.assignment_checks} assignment checks")
    print(f"  speedup                         : "
          f"{with_checks.cycles / without.cycles:.2f}x")


if __name__ == "__main__":
    main()
