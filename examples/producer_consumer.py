#!/usr/bin/env python3
"""The paper's producer/consumer example (Figure 8): two long-lived
threads share frames through a *subregion* with a typed *portal field*.

The point of Section 2.2: with only top-level shared regions the frames
would accumulate until both threads die (a leak); with a subregion, the
region is flushed after every handoff.  This script runs the program and
prints the flush count and the peak memory of the buffer subregion to
demonstrate exactly that.
"""

from repro import RunOptions, analyze
from repro.interp.machine import Machine

PROGRAM = """
regionKind BufferRegion extends SharedRegion {
    BufferSubRegion : LT(4096) NoRT b;
}
regionKind BufferSubRegion extends SharedRegion {
    Frame<this> f;
}

class Frame { int data; }

class Producer<BufferRegion r> {
    void run(RHandle<r> h, int frames) accesses r, heap {
        int i = 0;
        while (i < frames) {
            boolean placed = false;
            while (!placed) {
                (RHandle<BufferSubRegion r2> h2 = h.b) {
                    if (h2.f == null) {
                        Frame frame = new Frame;   // owner inferred: r2
                        frame.data = i * 10;
                        h2.f = frame;              // typed portal write
                        placed = true;
                    }
                }
                yieldnow();
            }
            i = i + 1;
        }
    }
}

class Consumer<BufferRegion r> {
    void run(RHandle<r> h, int frames) accesses r, heap {
        int got = 0;
        while (got < frames) {
            (RHandle<BufferSubRegion r2> h2 = h.b) {
                Frame frame = h2.f;                // typed portal read —
                if (frame != null) {               // no downcast needed
                    h2.f = null;
                    print(frame.data);
                    got = got + 1;
                }
            }
            yieldnow();
        }
    }
}

(RHandle<BufferRegion r> h) {
    fork (new Producer<r>).run(h, 8);
    fork (new Consumer<r>).run(h, 8);
}
"""


def main() -> None:
    analyzed = analyze(PROGRAM).require_well_typed()
    machine = Machine(analyzed, RunOptions(quantum=400))
    result = machine.run()

    print(f"frames received by consumer: {result.output}")
    print(f"subregion flushes          : {result.stats.region_flushes}")

    buffer_areas = [a for a in machine.regions.areas
                    if a.kind_name == "BufferSubRegion"]
    assert len(buffer_areas) == 1, "one LT subregion, reused throughout"
    sub = buffer_areas[0]
    print(f"buffer subregion peak bytes: {sub.peak_bytes} "
          f"(one frame at a time — no leak across {len(result.output)} "
          "handoffs)")
    print(f"buffer subregion is flushed: {sub.is_flushed}")
    assert result.stats.region_flushes >= 8
    assert sub.peak_bytes <= 64, "frames do not accumulate"


if __name__ == "__main__":
    main()
