#!/usr/bin/env python3
"""Tuning a region program with the developer tools.

The paper (Section 4) names the two costs of region-based memory
management: "grouping objects into regions and determining the maximum
size of LT regions".  This example takes a deliberately mis-tuned
pipeline and walks the three tools over it:

1. the **advisor** sizes the LT subregion from an instrumented run
   (the declared budget is 16x too large) and flags a VT region that
   should be preallocated;
2. the **effects linter** catches a spurious ``heap`` effect that would
   lock real-time threads out of a perfectly RT-safe method;
3. the **timeline** shows the subregion flushing after every frame — the
   leak-freedom the paper's subregions exist for.
"""

from repro import RunOptions, analyze
from repro.interp.machine import Machine
from repro.tools import advise, format_report, lint_effects
from repro.tools.timeline import events_between, render_timeline

PROGRAM = """
regionKind Camera extends SharedRegion {
    FrameArea : LT(8192) NoRT frames;      // deliberately over-sized
}
regionKind FrameArea extends SharedRegion { }

class Pixel { int value; Pixel next; }

class Analyzer<Owner o> {
    // the spurious `heap` effect: this method only reads pixels
    int checksum<Owner p>(Pixel<p> head) accesses p, heap {
        int total = 0;
        Pixel<p> walk = head;
        while (walk != null) {
            total = total + walk.value;
            walk = walk.next;
        }
        return total;
    }
}

class Grabber<Camera r> {
    // `heap` is genuinely needed here: entering a NoRT subregion may
    // allocate (the paper's [EXPR SUBREGION] premise)
    void grab(RHandle<r> h, int frames) accesses r, heap {
        int i = 0;
        while (i < frames) {
            (RHandle<FrameArea r2> h2 = h.frames) {
                Pixel<r2> head = null;
                int p = 0;
                while (p < 8) {
                    Pixel<r2> px = new Pixel<r2>;
                    px.value = i * 8 + p;
                    px.next = head;
                    head = px;
                    p = p + 1;
                }
                check(head != null);
            }
            i = i + 1;
        }
    }
}

(RHandle<Camera r> h) {
    Grabber<r> g = new Grabber<r>;
    g.grab(h, 5);
}
"""


def main() -> None:
    analyzed = analyze(PROGRAM).require_well_typed()

    print("=== 1. region sizing (repro.tools.advisor) ===")
    report = advise(analyzed)
    print(report.format())
    frame_advice = next(a for a in report.regions
                        if a.kind_name == "FrameArea")
    print(f"\n  -> declared LT({frame_advice.declared_budget}), peak "
          f"{frame_advice.peak_bytes} bytes/frame; suggested "
          f"LT({frame_advice.suggested_budget})")
    assert "over-provisioned" in frame_advice.note

    print("\n=== 2. effects lint (repro.tools.effects_lint) ===")
    lint = lint_effects(analyzed)
    print(format_report(lint))
    checksum = next(r for r in lint if r.method_name == "checksum")
    assert any(o.name == "heap" for o in checksum.redundant), \
        "the spurious heap effect on checksum() is flagged"
    grab = next(r for r in lint if r.method_name == "grab")
    assert not any(o.name == "heap" for o in grab.redundant), \
        "grab() genuinely needs heap (it enters a NoRT subregion)"
    print("  -> checksum(): dropping 'heap' makes it callable from "
          "real-time threads")
    print("  -> grab(): 'heap' correctly kept (NoRT subregion entry "
          "may allocate)")

    print("\n=== 3. execution timeline (repro.tools.timeline) ===")
    machine = Machine(analyzed, RunOptions())
    machine.run()
    print(render_timeline(machine.stats,
                          kinds=["region-created", "region-flushed",
                                 "region-destroyed"]))
    flushes = [e for e in events_between(machine.stats, 0,
                                          machine.stats.cycles)
               if e[1] == "region-flushed"]
    assert len(flushes) == 5, "one flush per frame — no leak"
    print(f"\n  -> {len(flushes)} flushes for 5 frames: the LT area is "
          "reused, never re-allocated")


if __name__ == "__main__":
    main()
