#!/usr/bin/env python3
"""Figure 6: the ownership and outlives relations of the TStack example.

Runs the Figure 5 program with two stacks of two elements each and
extracts the runtime ownership forest (solid arrows in the paper's
figure) and the outlives relation between regions (dashed arrows), then
verifies the paper's structural properties O1 and O2 on it and prints a
Graphviz rendering.
"""

from repro import RunOptions, analyze
from repro.interp.machine import Machine

PROGRAM = """
class T<Owner o> { int x; }
class TStack<Owner stackOwner, Owner TOwner> {
    TNode<this, TOwner> head = null;
    void push(T<TOwner> value) {
        TNode newNode = new TNode;
        newNode.init(value, head);
        head = newNode;
    }
}
class TNode<Owner nodeOwner, Owner TOwner> {
    T<TOwner> value;
    TNode<nodeOwner, TOwner> next;
    void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
        this.value = v;
        this.next = n;
    }
}
(RHandle<r1> h1) {
    (RHandle<r2> h2) {
        TStack<r2, r2> s1 = new TStack<r2, r2>;
        TStack<r2, r1> s2 = new TStack<r2, r1>;
        s1.push(new T<r2>);
        s1.push(new T<r2>);
        s2.push(new T<r1>);
        s2.push(new T<r1>);
        print(0);
    }
}
"""


def main() -> None:
    analyzed = analyze(PROGRAM).require_well_typed()
    machine = Machine(analyzed, RunOptions())

    # capture the graph while the regions are still alive: snapshot on
    # the program's final print
    snapshots = []

    class CapturingOutput(list):
        def append(self, text):
            snapshots.append(machine.ownership_graph())
            super().append(text)

    machine.output = CapturingOutput()
    machine.interpreter.machine = machine
    machine.run()
    graph = snapshots[0]

    print("=== ownership forest (Figure 6, solid arrows) ===")
    for owner, owned in sorted(graph.owns):
        print(f"  {graph.labels[owner]:<14} owns  {graph.labels[owned]}")

    print("\n=== outlives relation between regions (dashed arrows) ===")
    region_edges = [(a, b) for a, b in graph.outlives
                    if graph.labels[a] in ("heap", "immortal", "r1", "r2")
                    and graph.labels[b] in ("r1", "r2")]
    for a, b in sorted(region_edges,
                       key=lambda e: (graph.labels[e[0]],
                                      graph.labels[e[1]])):
        print(f"  {graph.labels[a]:<10} outlives  {graph.labels[b]}")

    print("\n=== paper properties, checked on the live heap ===")
    print(f"  O1 (ownership is a forest)      : {graph.is_forest()}")
    assert graph.is_forest()
    # O2: every object owned (transitively) by a region is allocated in it
    object_nodes = [n for n, kind in graph.node_kinds.items()
                    if kind == "object"]
    for node in object_nodes:
        region = graph.region_of(node)
        assert graph.node_kinds[region] == "region"
    print(f"  O2 (objects live in the owning region's area) : True "
          f"({len(object_nodes)} objects checked)")

    print("\n=== Graphviz (paste into dot) ===")
    print(graph.to_dot())


if __name__ == "__main__":
    main()
