"""The introduction's tooling claim: "its typechecking is fast and
scalable".

Generates programs of growing size (classes with fields, methods, and
region-using bodies) and benchmarks the full pipeline
(parse → defaults/inference → typecheck), asserting roughly linear
scaling: 8x the program must not cost more than ~16x the time.

The program generator lives in :mod:`repro.bench.frontend`, which also
drives the committed ``BENCH_frontend.json`` regression gate (``repro
bench --suite frontend``).
"""

import time

import pytest

from repro import analyze
from repro.bench.frontend import synth_program


SIZES = [5, 20, 40]


@pytest.mark.parametrize("size", SIZES)
def test_typechecking_speed(benchmark, size):
    source = synth_program(size)
    result = benchmark(analyze, source)
    assert result.well_typed, [str(e) for e in result.errors][:3]


def test_scaling_is_roughly_linear(benchmark):
    def measure(size: int) -> float:
        source = synth_program(size)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            analyzed = analyze(source)
            best = min(best, time.perf_counter() - start)
            assert analyzed.well_typed
        return best

    small = measure(5)
    large = measure(40)
    benchmark(lambda: None)
    print(f"\ntypecheck 5 classes: {small * 1000:.1f} ms, "
          f"40 classes: {large * 1000:.1f} ms "
          f"(x{large / small:.1f} for x8 size)")
    assert large / small < 16, \
        "typechecking must scale roughly linearly in program size"


def test_separate_compilation_scaling(benchmark):
    """Adding an unrelated class must not slow down checking the rest by
    more than its own cost (no global analysis)."""
    base = synth_program(10)
    extended = base + "\nclass Unrelated<Owner o> { int x; }"

    def best_of(source):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            analyze(source)
            best = min(best, time.perf_counter() - start)
        return best

    t_base = best_of(base)
    t_ext = best_of(extended)
    benchmark(lambda: None)
    assert t_ext < t_base * 1.6
