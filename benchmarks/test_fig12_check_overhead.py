"""Figure 12 — dynamic checking overhead.

Regenerates the paper's table: for every benchmark (and every ImageRec
pipeline stage) the execution cost with the RTSJ dynamic checks vs with
static checks only, next to the paper's measured overheads.  Asserts that
the *shape* holds: who wins, by roughly what factor, and the ordering
micro ≫ scientific > servers.

Each row is also wall-clock-benchmarked (pytest-benchmark) in both modes
on the fast parameters.
"""

import pytest

from repro import RunOptions, run_source
from repro.bench.suite import BENCHMARKS, IMAGEREC_STAGES
from repro.bench.timing import figure12, format_figure12

ALL = sorted(BENCHMARKS)

#: acceptance bands around the paper's overheads (ratio must land inside)
PAPER_BANDS = {
    "Array": (5.5, 9.0),       # paper: 7.23
    "Tree": (3.8, 6.0),        # paper: 4.83
    "Water": (1.10, 1.40),     # paper: 1.24
    "Barnes": (1.05, 1.25),    # paper: 1.13
    "ImageRec": (1.10, 1.35),  # paper: 1.21
    "http": (1.0, 1.08),       # paper: ~1.0
    "game": (1.0, 1.08),       # paper: ~1.0
    "phone": (1.0, 1.08),      # paper: ~1.0
}

STAGE_BANDS = {
    "load": (1.10, 1.40),        # paper: 1.25
    "cross": (1.0, 1.03),        # paper: 1.0
    "threshold": (1.0, 1.03),    # paper: 1.0
    "hysteresis": (1.08, 1.30),  # paper: 1.2
    "thinning": (1.03, 1.20),    # paper: 1.1
    "save": (1.08, 1.30),        # paper: 1.18
}


@pytest.fixture(scope="module")
def fig12_rows():
    return figure12(fast=False)


def _row(rows, name):
    for row in rows:
        if row.name.strip() == name:
            return row
    raise KeyError(name)


def test_fig12_table(fig12_rows, benchmark):
    """Print the regenerated Figure 12 (run with -s to see it)."""
    table = benchmark(format_figure12, fig12_rows)
    print("\n=== Figure 12 — dynamic checking overhead ===")
    print(table)
    assert len(fig12_rows) == len(ALL) + len(IMAGEREC_STAGES)


@pytest.mark.parametrize("name", ALL)
def test_fig12_overhead_band(fig12_rows, name, benchmark):
    row = _row(fig12_rows, name)
    lo, hi = PAPER_BANDS[name]
    benchmark(lambda: row.overhead)
    assert lo <= row.overhead <= hi, (
        f"{name}: measured {row.overhead:.2f}, paper "
        f"{row.paper_overhead}, accepted band [{lo}, {hi}]")


@pytest.mark.parametrize("stage", IMAGEREC_STAGES)
def test_fig12_stage_band(fig12_rows, stage, benchmark):
    row = _row(fig12_rows, stage)
    lo, hi = STAGE_BANDS[stage]
    benchmark(lambda: row.overhead)
    assert lo <= row.overhead <= hi, (
        f"{stage}: measured {row.overhead:.2f}, band [{lo}, {hi}]")


def test_fig12_ordering(fig12_rows, benchmark):
    """The qualitative shape: micro ≫ scientific > servers ≈ 1."""
    rows = {name: _row(fig12_rows, name) for name in ALL}
    benchmark(lambda: None)
    assert rows["Array"].overhead > rows["Tree"].overhead
    assert rows["Tree"].overhead > rows["Water"].overhead
    assert rows["Water"].overhead > rows["Barnes"].overhead > 1.0
    for server in ("http", "game", "phone"):
        assert rows[server].overhead < rows["Barnes"].overhead


# ---------------------------------------------------------------------------
# wall-clock benchmarks per program and mode (fast parameters)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_wallclock_dynamic_checks(benchmark, analyzed_fast, name):
    analyzed = analyzed_fast[name]
    options = RunOptions(checks_enabled=True, validate=False)
    benchmark(run_source, analyzed, options)


@pytest.mark.parametrize("name", ALL)
def test_wallclock_static_checks(benchmark, analyzed_fast, name):
    analyzed = analyzed_fast[name]
    options = RunOptions(checks_enabled=False, validate=False)
    benchmark(run_source, analyzed, options)
