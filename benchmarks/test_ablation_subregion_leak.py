"""Ablation — the Section 2.2 motivation for subregions.

"However, programs in a system with only shared regions (e.g., [33])
will have memory leaks if two long-lived threads communicate by creating
objects in a shared region.  This is because the objects will not be
deleted until both threads exit the shared region."

Two variants of the producer/consumer pipeline:

* **with subregions** (the paper's design): frames go through an LT
  subregion flushed after every handoff → peak memory is one frame;
* **shared-region only** (the [33] baseline the paper improves on):
  frames are allocated directly in the shared region → memory grows
  linearly with the number of frames.
"""

import pytest

from repro import RunOptions, analyze
from repro.interp.machine import Machine

FRAMES = 12

WITH_SUBREGIONS = f"""
regionKind Buf extends SharedRegion {{
    Sub : LT(4096) NoRT s;
}}
regionKind Sub extends SharedRegion {{
    Frame<this> f;
}}
class Frame {{ int data; int pad1; int pad2; }}
class Producer<Buf r> {{
    void run(RHandle<r> h, int n) accesses r, heap {{
        int i = 0;
        while (i < n) {{
            boolean placed = false;
            while (!placed) {{
                (RHandle<Sub r2> h2 = h.s) {{
                    if (h2.f == null) {{
                        Frame frame = new Frame;
                        frame.data = i;
                        h2.f = frame;
                        placed = true;
                    }}
                }}
                yieldnow();
            }}
            i = i + 1;
        }}
    }}
}}
class Consumer<Buf r> {{
    void run(RHandle<r> h, int n) accesses r, heap {{
        int got = 0;
        while (got < n) {{
            (RHandle<Sub r2> h2 = h.s) {{
                Frame frame = h2.f;
                if (frame != null) {{
                    h2.f = null;
                    got = got + 1;
                }}
            }}
            yieldnow();
        }}
        print(got);
    }}
}}
(RHandle<Buf r> h) {{
    fork (new Producer<r>).run(h, {FRAMES});
    fork (new Consumer<r>).run(h, {FRAMES});
}}
"""

SHARED_ONLY = f"""
regionKind Buf extends SharedRegion {{
    Frame<this> f;
}}
class Frame {{ int data; int pad1; int pad2; }}
class Producer<Buf r> {{
    void run(RHandle<r> h, int n) accesses r {{
        int i = 0;
        while (i < n) {{
            boolean placed = false;
            while (!placed) {{
                if (h.f == null) {{
                    Frame<r> frame = new Frame<r>;   // into the shared
                    frame.data = i;                  // region itself:
                    h.f = frame;                     // never reclaimed
                    placed = true;
                }}
                yieldnow();
            }}
            i = i + 1;
        }}
    }}
}}
class Consumer<Buf r> {{
    void run(RHandle<r> h, int n) accesses r {{
        int got = 0;
        while (got < n) {{
            Frame frame = h.f;
            if (frame != null) {{
                h.f = null;
                got = got + 1;
            }}
            yieldnow();
        }}
        print(got);
    }}
}}
(RHandle<Buf r> h) {{
    fork (new Producer<r>).run(h, {FRAMES});
    fork (new Consumer<r>).run(h, {FRAMES});
}}
"""

FRAME_BYTES = 16 + 3 * 8


def peak_buffer_bytes(source: str, kind_names) -> int:
    machine = Machine(analyze(source).require_well_typed(),
                      RunOptions(quantum=400))
    result = machine.run()
    assert result.output == [str(FRAMES)]
    return max(a.peak_bytes for a in machine.regions.areas
               if a.kind_name in kind_names)


@pytest.fixture(scope="module")
def peaks():
    return {
        "subregions": peak_buffer_bytes(WITH_SUBREGIONS, {"Sub"}),
        "shared_only": peak_buffer_bytes(SHARED_ONLY, {"Buf"}),
    }


def test_subregions_hold_one_frame(peaks, benchmark):
    benchmark(lambda: peaks)
    assert peaks["subregions"] == FRAME_BYTES, \
        "the subregion is flushed after every handoff"


def test_shared_only_leaks_every_frame(peaks, benchmark):
    # every frame stays in the shared region until both threads exit;
    # the Producer/Consumer objects themselves (2 x 16 bytes) also live
    # there, hence >=
    benchmark(lambda: peaks)
    assert peaks["shared_only"] >= FRAMES * FRAME_BYTES, \
        "without subregions every frame stays until both threads exit"
    assert peaks["shared_only"] <= FRAMES * FRAME_BYTES + 64


def test_leak_ratio_scales_with_frames(peaks, benchmark):
    benchmark(lambda: peaks)
    assert peaks["shared_only"] / peaks["subregions"] >= FRAMES
