"""Ablation — the paper's core motivation (Section 1).

"Real-time threads use region-based memory management to avoid unbounded
pauses caused by interference from the garbage collector."

A periodic task allocates a burst of scratch objects per iteration next
to a heap-churning background thread, in two builds:

* **heap build** — the task allocates its scratch objects on the
  garbage-collected heap.  Its own allocations feed the collector, and
  its dispatch is entangled with GC pauses (it is an ordinary thread —
  the RTSJ forbids exactly this for real-time work);
* **region build** (the paper's discipline) — the task is a no-heap
  real-time thread allocating in a preallocated LT subregion.  The
  collector still runs (the churner sees to that), but the task never
  waits for it.

Asserted: the region build's task suffers lower worst-case dispatch
latency, triggers no GC from its own allocations, and its per-iteration
allocation cost is constant.
"""

import pytest

from repro import RunOptions, analyze
from repro.interp.machine import Machine

ITERS = 10

CHURNER = """
class Junk { int a; int b; Junk link; }
class Churner {
    void run(int n) accesses heap {
        int i = 0;
        while (i < n) {
            Junk<heap> j = new Junk<heap>;
            j.a = i;
            if (i % 10 == 0) { yieldnow(); }
            i = i + 1;
        }
    }
}
"""

HEAP_BUILD = CHURNER + f"""
class Task {{
    void run(int iters) accesses heap {{
        int i = 0;
        while (i < iters) {{
            Junk<heap> head = null;
            int j = 0;
            while (j < 8) {{
                Junk<heap> s = new Junk<heap>;
                s.a = j;
                s.link = head;
                head = s;
                j = j + 1;
            }}
            check(head != null);
            yieldnow();
            i = i + 1;
        }}
        print(i);
    }}
}}
{{
    fork (new Churner<heap>).run(600);
    fork (new Task<heap>).run({ITERS});
}}
"""

REGION_BUILD = CHURNER + f"""
regionKind Mission extends SharedRegion {{
    Scratch : LT(2048) RT s;
}}
regionKind Scratch extends SharedRegion {{ }}
class RTTask<Mission : LT m> {{
    void run(RHandle<m> h, int iters) accesses m, RT {{
        int i = 0;
        while (i < iters) {{
            (RHandle<Scratch r2> h2 = h.s) {{
                Junk<r2> head = null;
                int j = 0;
                while (j < 8) {{
                    Junk<r2> s = new Junk<r2>;
                    s.a = j;
                    s.link = head;
                    head = s;
                    j = j + 1;
                }}
                check(head != null);
            }}
            yieldnow();
            i = i + 1;
        }}
        print(i);
    }}
}}
(RHandle<Mission : LT(8192) r> h) {{
    fork (new Churner<heap>).run(600);
    RT fork (new RTTask<r>).run(h, {ITERS});
}}
"""


def run_build(source: str):
    machine = Machine(analyze(source).require_well_typed(),
                      RunOptions(checks_enabled=False, validate=True,
                                 gc_trigger_bytes=6_000, quantum=500))
    result = machine.run()
    assert str(ITERS) in result.output
    task = machine.scheduler.threads[-1]  # the last-spawned thread
    return machine, result, task


@pytest.fixture(scope="module")
def builds():
    return {"heap": run_build(HEAP_BUILD),
            "region": run_build(REGION_BUILD)}


def test_collector_runs_in_both_builds(builds, benchmark):
    benchmark(lambda: None)
    for name, (_m, result, _t) in builds.items():
        assert result.stats.gc_runs > 0, name


def test_region_task_has_lower_worst_case_latency(builds, benchmark):
    benchmark(lambda: None)
    _m1, _r1, heap_task = builds["heap"]
    _m2, _r2, region_task = builds["region"]
    assert region_task.realtime and not heap_task.realtime
    assert region_task.max_dispatch_latency \
        < heap_task.max_dispatch_latency, (
            region_task.max_dispatch_latency,
            heap_task.max_dispatch_latency)


def test_region_task_never_grows_memory(builds, benchmark):
    benchmark(lambda: None)
    machine, _result, _task = builds["region"]
    scratch = [a for a in machine.regions.areas
               if a.kind_name == "Scratch"][0]
    # 8 Junk objects of 40 bytes: the LT area never exceeds one burst
    assert scratch.peak_bytes == 8 * 40
    assert scratch.is_flushed


def test_heap_build_boosts_gc_load(builds, benchmark):
    benchmark(lambda: None)
    _m1, heap_result, _t1 = builds["heap"]
    _m2, region_result, _t2 = builds["region"]
    # the heap build's task feeds the collector; the region build's does
    # not, so it collects no more garbage than the churner alone makes
    assert heap_result.stats.gc_objects_collected \
        >= region_result.stats.gc_objects_collected
