"""Companion to Figure 11: how much work the Section 2.5 inference does.

"We use a combination of type inference and well-chosen defaults to
significantly reduce the number of annotations needed in practice."

For every benchmark we count owner atoms written by the programmer vs
owner atoms present after the completion pass; the difference is what
defaults+inference supplied.  Asserted: across the suite, the machinery
supplies the large majority of the ownership structure.
"""

import pytest

from repro.bench.overhead import inference_stats
from repro.bench.suite import BENCHMARKS

ALL = sorted(BENCHMARKS)


@pytest.fixture(scope="module")
def stats():
    return {name: inference_stats(BENCHMARKS[name].source(), name)
            for name in ALL}


def test_inference_table(stats, benchmark):
    benchmark(lambda: stats)
    print("\n=== owner atoms: written vs supplied by inference ===")
    header = (f"{'Program':<10} {'written':>8} {'total':>7} "
              f"{'supplied':>9} {'fraction':>9}")
    print(header)
    print("-" * len(header))
    for name in ALL:
        row = stats[name]
        print(f"{name:<10} {row['written_owner_atoms']:>8} "
              f"{row['total_owner_atoms']:>7} "
              f"{row['supplied_by_inference']:>9} "
              f"{row['supplied_fraction']:>9.2f}")


@pytest.mark.parametrize("name", ALL)
def test_inference_supplies_most_owners(stats, name, benchmark):
    row = stats[name]
    benchmark(lambda: row)
    assert row["supplied_by_inference"] > 0
    # the communication-heavy servers legitimately write more (region
    # kinds, portals, handles are not inferable); everything else is
    # mostly inferred
    floor = 0.25 if BENCHMARKS[name].kind == "server" else 0.5
    assert row["supplied_fraction"] >= floor, (
        f"{name}: inference supplied only "
        f"{row['supplied_fraction']:.0%} of the owner atoms")


def test_suite_wide_reduction(stats, benchmark):
    benchmark(lambda: None)
    written = sum(r["written_owner_atoms"] for r in stats.values())
    total = sum(r["total_owner_atoms"] for r in stats.values())
    # "significantly reduce the number of annotations": across the whole
    # suite at least 70% of the ownership structure is supplied
    assert (total - written) / total >= 0.7
