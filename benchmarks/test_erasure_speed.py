"""Wall-clock comparison of the two execution paths.

The interpreter pays for its deterministic cycle accounting and
preemption machinery; the erasure backend compiles to plain Python.
This bench documents the gap (and that both produce identical output) —
it is the practical payoff of the Section 2.6 erasure design: the typed
front end costs nothing at run time.
"""

import pytest

from repro import RunOptions, analyze, run_source
from repro.bench.suite import BENCHMARKS
from repro.interp.compile_py import compile_to_python

NAMES = ["Array", "Tree", "Water"]


@pytest.fixture(scope="module")
def prepared():
    out = {}
    for name in NAMES:
        analyzed = analyze(
            BENCHMARKS[name].source(fast=True)).require_well_typed()
        compiled = compile_to_python(analyzed)
        # parity before timing
        assert compiled.run() == run_source(analyzed,
                                            RunOptions()).output
        out[name] = (analyzed, compiled)
    return out


@pytest.mark.parametrize("name", NAMES)
def test_interpreted(benchmark, prepared, name):
    analyzed, _compiled = prepared[name]
    options = RunOptions(checks_enabled=False, validate=False)
    benchmark(run_source, analyzed, options)


@pytest.mark.parametrize("name", NAMES)
def test_compiled(benchmark, prepared, name):
    _analyzed, compiled = prepared[name]
    benchmark(compiled.run)


def test_compiled_is_faster(prepared, benchmark):
    import time

    def best(fn, repeats=5):
        out = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            out = min(out, time.perf_counter() - start)
        return out

    analyzed, compiled = prepared["Array"]
    interp = best(lambda: run_source(
        analyzed, RunOptions(checks_enabled=False, validate=False)))
    comp = best(compiled.run)
    benchmark(lambda: None)
    print(f"\nArray: interpreted {interp * 1000:.2f} ms, "
          f"compiled {comp * 1000:.2f} ms ({interp / comp:.1f}x)")
    assert comp < interp
