"""Shared fixtures for the benchmark harness."""

import pytest

from repro import analyze
from repro.bench.suite import BENCHMARKS


@pytest.fixture(scope="session")
def analyzed_fast():
    """All eight benchmark programs, analyzed once (fast parameters)."""
    return {name: analyze(bench.source(fast=True)).require_well_typed()
            for name, bench in BENCHMARKS.items()}


@pytest.fixture(scope="session")
def analyzed_full():
    """All eight benchmark programs, analyzed once (paper-calibrated
    parameters)."""
    return {name: analyze(bench.source()).require_well_typed()
            for name, bench in BENCHMARKS.items()}
