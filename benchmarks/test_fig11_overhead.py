"""Figure 11 — programming overhead.

Regenerates the paper's table: lines of code vs lines that carry explicit
ownership/region annotations, for all eight benchmarks.  The paper's
claim, which we assert, is structural: annotations are a small fraction
of the program, concentrated where regions are created; everything else
is supplied by the Section 2.5 defaults and inference.
"""

import pytest

from repro.bench.overhead import (count_annotations, figure11,
                                  format_figure11)
from repro.bench.suite import BENCHMARKS

ALL = sorted(BENCHMARKS)


@pytest.fixture(scope="module")
def fig11_rows():
    return figure11(fast=False)


def test_fig11_table(fig11_rows, benchmark):
    table = benchmark(format_figure11, fig11_rows)
    print("\n=== Figure 11 — programming overhead ===")
    print(table)
    assert len(fig11_rows) == len(ALL)


@pytest.mark.parametrize("name", ALL)
def test_fig11_fraction_small(fig11_rows, name, benchmark):
    row = next(r for r in fig11_rows if r["program"] == name)
    benchmark(lambda: row)
    # the paper's fractions range from 0.9% (Barnes) to 10.3% (game);
    # ours must stay in the same "small fraction" regime
    assert 0 < row["lines_changed"] < row["loc"]
    assert row["fraction"] <= 0.30, row


@pytest.mark.parametrize("name", ALL)
def test_fig11_counts_annotation_bearing_lines_only(name, benchmark):
    bench = BENCHMARKS[name]
    report = benchmark(count_annotations, bench.source(), name)
    # every counted line really exists in the program
    assert all(1 <= line <= report.total_lines + 40
               for line in report.lines)
    assert report.annotated_lines == len(report.lines)


def test_fig11_imagerec_matches_paper_fraction(benchmark):
    """ImageRec is the paper's best case (8/567 ≈ 1.4%); ours lands in
    the same regime (≤ 2%)."""
    report = benchmark(count_annotations,
                       BENCHMARKS["ImageRec"].source(), "ImageRec")
    assert report.fraction <= 0.02


def test_fig11_servers_need_communication_annotations(benchmark):
    """The paper's servers have the *highest* fractions (game 10.3%,
    phone 9.8%) because region kinds, portals, and forks must be spelled
    out; the same holds here."""
    game = count_annotations(BENCHMARKS["game"].source(), "game")
    imagerec = count_annotations(BENCHMARKS["ImageRec"].source(),
                                 "ImageRec")
    benchmark(lambda: None)
    assert game.fraction > imagerec.fraction
