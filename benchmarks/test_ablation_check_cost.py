"""Ablation — sensitivity of Figure 12 to the cost-model calibration.

DESIGN.md calls out the check-cost constants as the one free parameter of
the substitution "authors' testbed → cycle-accurate simulator".  This
bench sweeps ``check_assign_base`` and verifies that

* the micro-benchmark overhead responds monotonically (it is genuinely
  check-bound), while
* the server overhead barely moves (it is genuinely I/O-bound),

i.e. the *shape* of Figure 12 is a property of the programs, not of the
calibration point.
"""

import dataclasses

import pytest

from repro import CostModel, RunOptions, analyze, run_source
from repro.bench.suite import BENCHMARKS

SWEEP = [7, 14, 28, 56]


def overhead_with_base(analyzed, base: int) -> float:
    model = dataclasses.replace(CostModel(), check_assign_base=base)
    dyn = run_source(analyzed, RunOptions(checks_enabled=True,
                                          validate=False,
                                          cost_model=model))
    sta = run_source(analyzed, RunOptions(checks_enabled=False,
                                          validate=False,
                                          cost_model=model))
    assert dyn.output == sta.output
    return dyn.cycles / sta.cycles


@pytest.fixture(scope="module")
def sweep_results(request):
    out = {}
    for name in ("Array", "http"):
        analyzed = analyze(
            BENCHMARKS[name].source(fast=True)).require_well_typed()
        out[name] = [overhead_with_base(analyzed, base) for base in SWEEP]
    return out


def test_ablation_micro_is_check_bound(sweep_results, benchmark):
    ratios = sweep_results["Array"]
    benchmark(lambda: ratios)
    print("\nArray overhead vs check_assign_base "
          f"{SWEEP}: {[round(r, 2) for r in ratios]}")
    # strictly increasing in the check cost
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    # halving/doubling the calibration point keeps the micro ≫ 1 story
    assert ratios[0] > 1.8
    assert ratios[-1] > ratios[0] * 1.5


def test_ablation_server_is_io_bound(sweep_results, benchmark):
    ratios = sweep_results["http"]
    benchmark(lambda: ratios)
    print("\nhttp overhead vs check_assign_base "
          f"{SWEEP}: {[round(r, 2) for r in ratios]}")
    # the server's ratio barely responds to the calibration
    assert max(ratios) - min(ratios) < 0.05
    assert all(r < 1.1 for r in ratios)


def test_ablation_shape_stable_across_sweep(sweep_results, benchmark):
    benchmark(lambda: None)
    for micro, server in zip(sweep_results["Array"],
                             sweep_results["http"]):
        assert micro > server, "micro ≫ server at every calibration"


def test_check_distance_term(benchmark):
    """The per-ancestry-level term: storing across more region levels
    costs more cycles per check."""
    shallow_src = """
class Cell<Owner o> { Cell<o> f; }
(RHandle<r> h) {
    Cell<r> a = new Cell<r>; Cell<r> b = new Cell<r>;
    int i = 0;
    while (i < 200) { a.f = b; i = i + 1; }
}
"""
    deep_src = """
class Cell<Owner o> { int pad; }
class Slot<Owner a, Owner b> { Cell<b> f; }
(RHandle<r1> h1) { (RHandle<r2> h2) { (RHandle<r3> h3) {
    Cell<r1> far = new Cell<r1>;
    Slot<r3, r1> slot = new Slot<r3, r1>;
    int i = 0;
    while (i < 200) { slot.f = far; i = i + 1; }
} } }
"""

    def check_cycles(src):
        result = run_source(analyze(src).require_well_typed(),
                            RunOptions(checks_enabled=True,
                                       validate=False))
        return result.stats.check_cycles, result.stats.assignment_checks

    shallow, n1 = check_cycles(shallow_src)
    deep, n2 = check_cycles(deep_src)
    benchmark(lambda: None)
    assert n1 == n2 == 200
    assert deep > shallow, "ancestry walks must cost more when deeper"
