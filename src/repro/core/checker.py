"""The typing judgments of Appendix B.

``Checker`` validates a whole program: well-formedness predicates, one
[CLASS DEF]/[REGION KIND DEF] pass per declaration, one [METHOD] pass per
method, and the expression/statement rules.  Each ``OwnershipTypeError``
carries the name of the violated judgment so failures can be audited
against the paper.

Two deliberate, documented strengthenings over the (OCR-damaged) appendix:

* ``heap`` as an *effect* is covered only by ``heap`` itself, never via
  ``immortal ≽ heap`` — otherwise an ``accesses immortal`` clause would
  let a real-time thread reach the garbage-collected heap.  (The outlives
  relation used for memory safety still has both specials outliving
  everything, exactly as in Figure 2 R1.)
* [EXPR RTFORK] checks the spawned method's renamed effects *directly*:
  every effect must be ``RT`` or an owner whose ``RKind`` is
  ``≤ SharedRegion:LT`` — the paper's statement "the effects clause of the
  method evaluated in the new thread does not contain the heap region or
  any object allocated in the heap region", extended to VT regions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import OwnershipTypeError
from ..lang import ast
from ..lang.parser import BUILTIN_CLASSES
from .env import Effects, Env
from .kinds import (K_GC_REGION, K_LOCAL_REGION, K_REGION,
                    K_SHARED_REGION, Kind, LOCAL_REGION, OBJ_OWNER, OWNER,
                    SHARED_REGION)
from .owners import (HEAP, IMMORTAL, INITIAL_REGION, Owner, RT_EFFECT,
                     THIS, make_subst)
from .program import (ClassInfo, Constraint, MethodInfo, Policy,
                      ProgramInfo, SubregionInfo, convert_constraint,
                      convert_kind, convert_owner, convert_type)
from .types import (BOOLEAN, FLOAT, INT, NULL, VOID, ClassType, HandleType,
                    NullType, PrimType, Type)

_K_SHARED_LT = Kind(SHARED_REGION, lt=True)

#: Built-in function signatures: name -> (param types, return type).
BUILTIN_SIGNATURES: Dict[str, Tuple[Tuple[Type, ...], Type]] = {
    "print": ((), VOID),          # polymorphic over scalars; special-cased
    "io": ((INT,), INT),
    "yieldnow": ((), VOID),
    "sqrt": ((FLOAT,), FLOAT),
    "itof": ((INT,), FLOAT),
    "ftoi": ((FLOAT,), INT),
    "check": ((BOOLEAN,), VOID),
}


class Checker:
    """Typechecks one program against the rules of Appendix B."""

    def __init__(self, program: ProgramInfo):
        self.program = program
        self.errors: List[OwnershipTypeError] = []
        self._current_return: Type = VOID
        #: optional observer called as (env, new_expr, rcr) after each
        #: successful [EXPR NEW]; the Section 2.6 translator uses it to
        #: derive allocation strategies from the av-RH derivation
        self.new_site_hook = None
        #: wall-clock seconds per checking phase, filled by check();
        #: emitted as ``checker-phase`` trace events when a tracer is
        #: attached (the ``repro run --trace-out`` path)
        self.phase_seconds: Dict[str, float] = {}
        self.tracer = None

    # ------------------------------------------------------------------
    # entry point — [PROG]
    # ------------------------------------------------------------------

    def check(self, clock=None, replay_errors=None,
              per_class_errors=None) -> List[OwnershipTypeError]:
        """Check the whole program; returns the collected errors (empty
        means well-typed).  Each phase's wall time lands in
        ``phase_seconds``.

        ``clock`` is an optional shared :class:`~repro.core.phases.
        PhaseClock` (``analyze`` passes its own so frontend and checker
        phases land in one dict); without one a private clock is built
        from ``self.tracer``.  ``replay_errors`` maps class names to
        recorded diagnostics from a prior run: those classes are not
        re-checked, their errors are spliced in at the position live
        checking would have produced them.  ``per_class_errors`` (an
        out-dict) receives each class's error slice, which the analysis
        cache records.  The wellformed, region-kind, and main-block
        phases always run live — they are whole-program judgments."""
        from .phases import PhaseClock
        from .wellformed import check_wellformed
        if clock is None:
            clock = PhaseClock(self.tracer)
        self.phase_seconds = clock.seconds
        try:
            check_wellformed(self.program)
        except OwnershipTypeError as err:
            self.errors.append(err)
            clock.lap("wellformed", errors=len(self.errors))
            return self.errors
        clock.lap("wellformed", errors=len(self.errors))

        for info in self.program.region_kinds.values():
            try:
                self._check_region_kind(info)
            except OwnershipTypeError as err:
                self.errors.append(err)
        clock.lap("region-kinds", errors=len(self.errors))
        for info in self.program.classes.values():
            if info.builtin:
                continue
            if replay_errors is not None and info.name in replay_errors:
                errs = replay_errors[info.name]
                self.errors.extend(errs)
                if per_class_errors is not None:
                    per_class_errors[info.name] = list(errs)
                continue
            before = len(self.errors)
            self._check_class(info)
            if per_class_errors is not None:
                per_class_errors[info.name] = self.errors[before:]
        clock.lap("classes", errors=len(self.errors))
        main = self.program.ast_program.main
        if main is not None:
            env = Env.initial(self.program)
            # the runtime provides the initial thread's region handle
            # (= heap) just as it provides hfresh inside methods
            env = env.with_handle(INITIAL_REGION)
            self._current_return = VOID
            try:
                # [PROG]: P; E; world; heap ⊢ e : t
                self.check_block(env, main, None, HEAP)
            except OwnershipTypeError as err:
                self.errors.append(err)
            clock.lap("main-block", errors=len(self.errors))
        return self.errors

    # ------------------------------------------------------------------
    # declarations — [CLASS DEF], [REGION KIND DEF], [METHOD]
    # ------------------------------------------------------------------

    def _declare_formals(self, env: Env,
                         formals: List[Tuple[str, Kind]],
                         span) -> Env:
        for fn, kind in formals:
            self.check_kind_wf(env, kind, span)
            env = env.with_owner(fn, kind)
        return env

    def _class_env(self, info: ClassInfo) -> Env:
        """The environment of [CLASS DEF]: formals, constraints, ``this``
        bound at type ``cn<fn1..n>``, and ``fni ≽ fn1`` for i ≥ 2."""
        span = info.decl.span if info.decl else None
        env = Env.initial(self.program)
        env = self._declare_formals(env, info.formals, span)
        env = env.with_constraints(info.constraints)
        this_type = ClassType(info.name,
                              tuple(Owner(fn) for fn, _ in info.formals))
        env = env.with_this(this_type)
        first = info.first_formal
        for fn, _ in info.formals[1:]:
            env = env.with_outlives(Owner(fn), first)
        return env

    def _check_class(self, info: ClassInfo) -> None:
        span = info.decl.span if info.decl else None
        try:
            env = self._class_env(info)
            if info.superclass is not None:
                self.check_type_wf(env, info.superclass, span)
            for fi in info.fields.values():
                fspan = fi.decl.span if fi.decl else span
                if fi.static:
                    self._check_static_field(env, fi, fspan)
                else:
                    self.check_type_wf(env, fi.type, fspan)
                if fi.decl is not None and fi.decl.init is not None:
                    if not isinstance(fi.decl.init,
                                      (ast.NullLit, ast.IntLit,
                                       ast.FloatLit, ast.BoolLit)):
                        raise OwnershipTypeError(
                            "field initializers must be literals "
                            "(use an init method)", fspan)
        except OwnershipTypeError as err:
            self.errors.append(err)
            return
        for mi in info.methods.values():
            try:
                self._check_method(env, info, mi)
            except OwnershipTypeError as err:
                self.errors.append(err)

    def _check_static_field(self, env: Env, fi, span) -> None:
        """Static fields live outside any instance; their owners must be
        the always-available ``heap``/``immortal`` regions (Section 2.5
        defaults static owners to ``immortal``)."""
        if isinstance(fi.type, ClassType):
            for o in fi.type.owners:
                if o not in (HEAP, IMMORTAL):
                    raise OwnershipTypeError(
                        f"static field '{fi.name}' may only use owners "
                        f"heap/immortal, found '{o}'", span,
                        rule="STATIC FIELD")
        elif isinstance(fi.type, HandleType):
            raise OwnershipTypeError(
                f"static field '{fi.name}' cannot store a region handle",
                span, rule="STATIC FIELD")

    def _check_region_kind(self, info) -> None:
        """[REGION KIND DEF]: formals, constraints, ``this`` bound as the
        region itself; portal types and subregion kinds well-formed."""
        span = info.decl.span if info.decl else None
        env = Env.initial(self.program)
        env = self._declare_formals(env, info.formals, span)
        env = env.with_constraints(info.constraints)
        # inside a region kind, `this` denotes the region; model it as an
        # owner of the kind being declared so portal types like
        # ``Frame<this> f`` check.  We cannot use with_this (that is for
        # objects), so register a synthetic region owner under the name
        # 'this' is substituted for at use sites; for wf purposes portal
        # types are checked with `this` of this kind.
        self_kind = Kind(info.name,
                         tuple(Owner(fn) for fn in info.formal_names))
        env_this = env.with_owner("__rk_this__", self_kind)
        rename = {THIS: Owner("__rk_this__")}
        for portal in info.portals.values():
            ptype = portal.type.substitute(rename)
            self.check_type_wf(env_this, ptype,
                               portal.decl.span if portal.decl else span)
        for sub in info.subregions.values():
            sub_kind = sub.kind.substitute(rename)
            self.check_kind_wf(env_this, sub_kind,
                               sub.decl.span if sub.decl else span)
            if not self.program.kind_table.is_shared_kind(sub_kind):
                raise OwnershipTypeError(
                    f"subregion '{sub.name}' must have a shared region "
                    f"kind, found '{sub.kind}'", span,
                    rule="REGION KIND DEF")

    def _check_method(self, class_env: Env, info: ClassInfo,
                      mi: MethodInfo) -> None:
        """[METHOD]."""
        span = mi.decl.span if mi.decl else None
        env = self._declare_formals(class_env, mi.formals, span)
        env = env.with_constraints(mi.constraints)
        env = env.with_handle(INITIAL_REGION)  # RHandle(initialRegion) hfresh
        self.check_type_wf(env, mi.return_type, span)
        for ptype, pname in mi.params:
            self.check_type_wf(env, ptype, span)
            env = env.with_var(pname, ptype)
        if mi.effects is None:
            raise OwnershipTypeError(
                f"method '{info.name}.{mi.name}' has no effects clause; "
                "run inference/defaults first", span, rule="METHOD")
        for eff in mi.effects:
            if eff == RT_EFFECT:
                continue
            env.kind_of(eff)  # raises if the owner is unknown
        permitted: Effects = frozenset(mi.effects)
        self._current_return = mi.return_type
        self.check_block(env, mi.decl.body, permitted, INITIAL_REGION)

    # ------------------------------------------------------------------
    # types and kinds — [TYPE ...], [USER DECLARED SHARED REGION]
    # ------------------------------------------------------------------


    def _owner_kind(self, env: Env, owner: Owner, span) -> Kind:
        """``E ⊢k o : k`` with the use-site span attached to failures."""
        try:
            return env.kind_of(owner)
        except OwnershipTypeError as err:
            raise OwnershipTypeError(err.message, span,
                                     rule="OWNER") from None

    def check_kind_wf(self, env: Env, kind: Kind, span) -> None:
        """``P; E ⊢okind k``."""
        if kind.is_builtin:
            if kind.args:
                raise OwnershipTypeError(
                    f"built-in kind '{kind.name}' takes no owner "
                    "arguments", span, rule="OKIND")
            return
        info = self.program.region_kinds.get(kind.name)
        if info is None:
            raise OwnershipTypeError(
                f"unknown owner kind '{kind.name}'", span, rule="OKIND")
        if len(kind.args) != len(info.formals):
            raise OwnershipTypeError(
                f"region kind '{kind.name}' expects "
                f"{len(info.formals)} owner arguments, got "
                f"{len(kind.args)}", span, rule="OKIND")
        subst = make_subst(info.formal_names, kind.args)
        for actual, (fn, declared) in zip(kind.args, info.formals):
            actual_kind = self._owner_kind(env, actual, span)
            wanted = declared.substitute(subst)
            if not self.program.kind_table.is_subkind(actual_kind, wanted):
                raise OwnershipTypeError(
                    f"owner '{actual}' has kind '{actual_kind}', not a "
                    f"subkind of '{wanted}' required by '{kind.name}'",
                    span, rule="USER DECLARED SHARED REGION")
        for c in info.constraints:
            inst = c.substitute(subst)
            if not env.entails(inst):
                raise OwnershipTypeError(
                    f"constraint '{inst}' of region kind '{kind.name}' "
                    "is not satisfied", span,
                    rule="USER DECLARED SHARED REGION")

    def check_type_wf(self, env: Env, t: Type, span) -> None:
        """``P; E ⊢type t`` — [TYPE INT], [TYPE REGION HANDLE], [TYPE C]."""
        if isinstance(t, (PrimType, NullType)):
            return
        if isinstance(t, HandleType):
            kind = self._owner_kind(env, t.region, span)
            if not self.program.kind_table.is_region_kind(kind):
                raise OwnershipTypeError(
                    f"RHandle requires a region, but '{t.region}' has "
                    f"kind '{kind}'", span, rule="TYPE REGION HANDLE")
            return
        assert isinstance(t, ClassType)
        info = self.program.classes.get(t.name)
        if info is None:
            raise OwnershipTypeError(f"unknown class '{t.name}'", span,
                                     rule="TYPE C")
        if len(t.owners) != len(info.formals):
            raise OwnershipTypeError(
                f"class '{t.name}' expects {len(info.formals)} owners, "
                f"got {len(t.owners)}", span, rule="TYPE C")
        subst = make_subst(info.formal_names, t.owners)
        first = t.owners[0]
        for i, (actual, (fn, declared)) in enumerate(
                zip(t.owners, info.formals)):
            actual_kind = self._owner_kind(env, actual, span)
            wanted = declared.substitute(subst)
            if not self.program.kind_table.is_subkind(actual_kind, wanted):
                raise OwnershipTypeError(
                    f"owner '{actual}' has kind '{actual_kind}', not a "
                    f"subkind of '{wanted}' required by '{t.name}'",
                    span, rule="TYPE C")
            if i > 0 and not env.outlives(actual, first):
                raise OwnershipTypeError(
                    f"illegal type '{t}': owner '{actual}' does not "
                    f"outlive the first owner '{first}'", span,
                    rule="TYPE C")
        for c in info.constraints:
            inst = c.substitute(subst)
            if not env.entails(inst):
                raise OwnershipTypeError(
                    f"constraint '{inst}' of class '{t.name}' is not "
                    f"satisfied by type '{t}'", span, rule="TYPE C")

    # ------------------------------------------------------------------
    # subtyping — [SUBTYPE ...]
    # ------------------------------------------------------------------

    def is_subtype(self, sub: Type, sup: Type) -> bool:
        if sub == sup:
            return True
        if isinstance(sub, NullType):
            return isinstance(sup, (ClassType, HandleType, NullType))
        if isinstance(sub, ClassType) and isinstance(sup, ClassType):
            current: Optional[ClassType] = sub
            while current is not None:
                if current == sup:
                    return True
                current = self.program.superclass_of(current)
        return False

    def _require_subtype(self, sub: Type, sup: Type, span,
                         what: str) -> None:
        if not self.is_subtype(sub, sup):
            raise OwnershipTypeError(
                f"{what}: '{sub}' is not a subtype of '{sup}'", span,
                rule="SUBTYPE")

    # ------------------------------------------------------------------
    # effects
    # ------------------------------------------------------------------

    def _covers(self, env: Env, permitted: Effects, owner: Owner) -> bool:
        """``E ⊢ X ≽ {owner}`` with the heap-only-by-heap strengthening."""
        if owner == HEAP:
            if permitted is None:
                return True
            return HEAP in permitted
        return env.effect_covers(permitted, owner)

    def _require_effect(self, env: Env, permitted: Effects, owner: Owner,
                        span, what: str, rule: str) -> None:
        if not self._covers(env, permitted, owner):
            shown = ("world" if permitted is None
                     else "{" + ", ".join(sorted(str(o) for o in permitted))
                     + "}")
            raise OwnershipTypeError(
                f"{what} accesses '{owner}', which the effects {shown} "
                "do not cover", span, rule=rule)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def check_block(self, env: Env, block: ast.Block, permitted: Effects,
                    rcr: Owner) -> None:
        inner = env
        for stmt in block.stmts:
            inner = self.check_stmt(inner, stmt, permitted, rcr)

    def check_stmt(self, env: Env, stmt: ast.Stmt, permitted: Effects,
                   rcr: Owner) -> Env:
        """Check one statement; returns the (possibly extended)
        environment for subsequent statements."""
        if isinstance(stmt, ast.Block):
            self.check_block(env, stmt, permitted, rcr)
            return env
        if isinstance(stmt, ast.LocalDecl):
            return self._check_local_decl(env, stmt, permitted, rcr)
        if isinstance(stmt, ast.AssignLocal):
            self._check_assign_local(env, stmt, permitted, rcr)
            return env
        if isinstance(stmt, ast.AssignField):
            self._check_assign_field(env, stmt, permitted, rcr)
            return env
        if isinstance(stmt, ast.ExprStmt):
            self.check_expr(env, stmt.expr, permitted, rcr)
            return env
        if isinstance(stmt, ast.If):
            cond = self.check_expr(env, stmt.cond, permitted, rcr)
            self._require_subtype(cond, BOOLEAN, stmt.span, "if condition")
            self.check_block(env, stmt.then_body, permitted, rcr)
            if stmt.else_body is not None:
                self.check_block(env, stmt.else_body, permitted, rcr)
            return env
        if isinstance(stmt, ast.While):
            cond = self.check_expr(env, stmt.cond, permitted, rcr)
            self._require_subtype(cond, BOOLEAN, stmt.span,
                                  "while condition")
            self.check_block(env, stmt.body, permitted, rcr)
            return env
        if isinstance(stmt, ast.Return):
            self._check_return(env, stmt, permitted, rcr)
            return env
        if isinstance(stmt, ast.Fork):
            self._check_fork(env, stmt, permitted, rcr)
            return env
        if isinstance(stmt, ast.RegionStmt):
            self._check_region_stmt(env, stmt, permitted, rcr)
            return env
        if isinstance(stmt, ast.SubregionStmt):
            self._check_subregion_stmt(env, stmt, permitted, rcr)
            return env
        raise OwnershipTypeError(f"unknown statement {stmt!r}", stmt.span)

    def _check_local_decl(self, env: Env, stmt: ast.LocalDecl,
                          permitted: Effects, rcr: Owner) -> Env:
        """[EXPR LET]."""
        if stmt.name in env.vars:
            raise OwnershipTypeError(
                f"variable '{stmt.name}' is already defined", stmt.span)
        declared = convert_type(stmt.declared_type)
        if isinstance(declared, ClassType) and not declared.owners:
            raise OwnershipTypeError(
                f"local '{stmt.name}' has no owner annotations; run "
                "inference first", stmt.span, rule="EXPR LET")
        if declared == VOID:
            raise OwnershipTypeError("variables cannot have type void",
                                     stmt.span)
        self.check_type_wf(env, declared, stmt.span)
        if stmt.init is not None:
            actual = self.check_expr(env, stmt.init, permitted, rcr)
            self._require_subtype(actual, declared, stmt.span,
                                  f"initializer of '{stmt.name}'")
        return env.with_var(stmt.name, declared)

    def _check_assign_local(self, env: Env, stmt: ast.AssignLocal,
                            permitted: Effects, rcr: Owner) -> None:
        value = self.check_expr(env, stmt.value, permitted, rcr)
        if stmt.name in env.vars:
            self._require_subtype(value, env.vars[stmt.name], stmt.span,
                                  f"assignment to '{stmt.name}'")
            return
        # Unqualified field write: `head = newNode;` means
        # `this.head = newNode;`.
        if env.this_type is not None:
            fi = self.program.lookup_field(env.this_type.name, stmt.name)
            if fi is not None:
                self._check_field_write_on(env, ast.ThisRef(stmt.span),
                                           stmt.name, value, stmt.span,
                                           permitted, rcr)
                return
        raise OwnershipTypeError(f"unknown variable '{stmt.name}'",
                                 stmt.span)

    def _check_assign_field(self, env: Env, stmt: ast.AssignField,
                            permitted: Effects, rcr: Owner) -> None:
        value = self.check_expr(env, stmt.value, permitted, rcr)
        self._check_field_write_on(env, stmt.target, stmt.field_name,
                                   value, stmt.span, permitted, rcr)

    def _check_field_write_on(self, env: Env, target: ast.Expr,
                              field_name: str, value_type: Type, span,
                              permitted: Effects, rcr: Owner) -> None:
        """[EXPR REF WRITE] / [EXPR SET REGION FIELD] / static write."""
        static = self._try_static_field(env, target, field_name)
        if static is not None:
            self._require_subtype(value_type, static.type, span,
                                  f"static field '{field_name}'")
            if isinstance(static.type, ClassType):
                self._require_effect(env, permitted, static.type.owner,
                                     span, f"writing '{field_name}'",
                                     "EXPR REF WRITE")
            return
        ttype = self.check_expr(env, target, permitted, rcr)
        if isinstance(ttype, HandleType):
            declared = self._portal_field_type(env, ttype, field_name, span)
            self._require_subtype(value_type, declared, span,
                                  f"portal field '{field_name}'")
            if isinstance(declared, ClassType):
                self._require_effect(env, permitted, declared.owner, span,
                                     f"writing portal '{field_name}'",
                                     "EXPR SET REGION FIELD")
            return
        if not isinstance(ttype, ClassType):
            raise OwnershipTypeError(
                f"cannot assign field of non-object type '{ttype}'", span,
                rule="EXPR REF WRITE")
        declared = self._instance_field_type(env, ttype, target,
                                             field_name, span)
        self._require_subtype(value_type, declared, span,
                              f"field '{field_name}'")
        if isinstance(declared, ClassType):
            self._require_effect(env, permitted, declared.owner, span,
                                 f"writing field '{field_name}'",
                                 "EXPR REF WRITE")

    def _check_return(self, env: Env, stmt: ast.Return,
                      permitted: Effects, rcr: Owner) -> None:
        expected = self._current_return
        if stmt.value is None:
            if expected != VOID:
                raise OwnershipTypeError(
                    f"missing return value (expected '{expected}')",
                    stmt.span)
            return
        if expected == VOID:
            raise OwnershipTypeError("void method returns a value",
                                     stmt.span)
        actual = self.check_expr(env, stmt.value, permitted, rcr)
        self._require_subtype(actual, expected, stmt.span, "return value")

    # ------------------------------------------------------------------
    # regions — [EXPR REGION], [EXPR LOCALREGION], [EXPR SUBREGION]
    # ------------------------------------------------------------------

    def _check_region_stmt(self, env: Env, stmt: ast.RegionStmt,
                           permitted: Effects, rcr: Owner) -> None:
        if stmt.kind is None:
            kind = K_LOCAL_REGION  # [EXPR LOCALREGION]
        else:
            kind = convert_kind(stmt.kind)
            self.check_kind_wf(env, kind, stmt.span)
            table = self.program.kind_table
            if not (table.is_subkind(kind, K_LOCAL_REGION)
                    or table.is_shared_kind(kind)):
                raise OwnershipTypeError(
                    f"cannot create a region of kind '{kind}'", stmt.span,
                    rule="EXPR REGION")
        policy = (Policy(stmt.policy.kind, stmt.policy.size)
                  if stmt.policy is not None else Policy("VT"))
        kr = kind.with_lt() if policy.kind == "LT" else kind
        # Creating a region allocates memory: X ≽ heap.
        self._require_effect(env, permitted, HEAP, stmt.span,
                             "creating a region", "EXPR REGION")
        region = Owner(stmt.region_name)
        env2 = env.with_owner(stmt.region_name, kr)
        env2 = env2.with_handle(region)
        env2 = env2.with_var(stmt.handle_name, HandleType(region))
        for existing in env.regions_in_scope():
            env2 = env2.with_outlives(existing, region)
        inner = None if permitted is None else permitted | {region}
        self.check_block(env2, stmt.body, inner, region)

    def _check_subregion_stmt(self, env: Env, stmt: ast.SubregionStmt,
                              permitted: Effects, rcr: Owner) -> None:
        parent_type = self.check_expr(env, stmt.parent_handle, permitted,
                                      rcr)
        if not isinstance(parent_type, HandleType):
            raise OwnershipTypeError(
                "subregion entry requires a region handle, found "
                f"'{parent_type}'", stmt.span, rule="EXPR SUBREGION")
        parent_region = parent_type.region
        parent_kind = env.kind_of(parent_region)
        sub = self.program.lookup_subregion(parent_kind,
                                            stmt.subregion_name)
        if sub is None:
            raise OwnershipTypeError(
                f"region kind '{parent_kind}' has no subregion "
                f"'{stmt.subregion_name}'", stmt.span,
                rule="EXPR SUBREGION")
        # rkind = rkind3[o/fn][r2/this]
        rkind = sub.kind.substitute({THIS: parent_region})
        if stmt.declared_kind is not None:
            annotated = convert_kind(stmt.declared_kind)
            if annotated.name != rkind.name:
                raise OwnershipTypeError(
                    f"subregion '{stmt.subregion_name}' has kind "
                    f"'{rkind}', not '{annotated}'", stmt.span,
                    rule="EXPR SUBREGION")
        kr = rkind.with_lt() if sub.policy.kind == "LT" else rkind
        if stmt.fresh or sub.policy.kind == "VT" or not sub.realtime:
            self._require_effect(
                env, permitted, HEAP, stmt.span,
                "entering a NoRT/VT/fresh subregion", "EXPR SUBREGION")
        if sub.realtime:
            # literal membership, not coverage: only methods that declare
            # the RT marker (and hence can only run on real-time threads)
            # may enter an RT subregion — the program's initial expression
            # runs on a regular thread and is excluded even though its
            # effects are `world`
            self._covers(env, permitted, RT_EFFECT)  # demand observation
            if permitted is None or RT_EFFECT not in permitted:
                raise OwnershipTypeError(
                    "entering an RT subregion requires the RT effect in "
                    "the enclosing method's accesses clause", stmt.span,
                    rule="EXPR SUBREGION")
        region = Owner(stmt.region_name)
        env2 = env.with_owner(stmt.region_name, kr)
        env2 = env2.with_handle(region)
        env2 = env2.with_var(stmt.handle_name, HandleType(region))
        env2 = env2.with_outlives(parent_region, region)
        inner = None if permitted is None else permitted | {region}
        self.check_block(env2, stmt.body, inner, region)

    # ------------------------------------------------------------------
    # fork — [EXPR FORK], [EXPR RTFORK]
    # ------------------------------------------------------------------

    def _fork_site_owners(self, env: Env, call: ast.Invoke,
                          rcr: Owner) -> List[Owner]:
        """The owners whose region kinds [EXPR FORK] inspects: the
        receiver type's owners, the explicitly supplied method owner
        arguments, and every owner appearing in the (renamed) parameter
        types — "references to heap objects are not passed as arguments
        to the new thread"."""
        receiver_type = self.check_expr(env, call.target, None, HEAP)
        owners: List[Owner] = []
        if isinstance(receiver_type, ClassType):
            owners.extend(receiver_type.owners)
        owners.extend(convert_owner(o) for o in call.owner_args)
        if isinstance(receiver_type, ClassType):
            mi = self.program.lookup_method(receiver_type.name,
                                            call.method_name)
            if mi is not None and len(call.owner_args) == len(mi.formals):
                _, sig, _ = self._invoke_parts(env, call, None, rcr)
                for renamed in sig.param_types:
                    if isinstance(renamed, ClassType):
                        owners.extend(renamed.owners)
                    elif isinstance(renamed, HandleType):
                        owners.append(renamed.region)
        return owners

    def _check_fork(self, env: Env, stmt: ast.Fork, permitted: Effects,
                    rcr: Owner) -> None:
        table = self.program.kind_table

        def non_local(kind: Optional[Kind]) -> bool:
            return kind is not None and (
                table.is_shared_kind(kind)
                or table.is_subkind(kind, K_GC_REGION))

        if not stmt.realtime:
            # [EXPR FORK]
            inner = (None if permitted is None
                     else permitted - {RT_EFFECT})
            self.check_expr(env, stmt.call, inner, rcr)
            # mn cannot have the RT effect: the spawned thread is regular
            # (explicit check so `world` effects cannot smuggle it in)
            if RT_EFFECT in self._renamed_invoke_effects(env, stmt.call,
                                                         rcr):
                raise OwnershipTypeError(
                    "fork target has the RT effect; a regular thread "
                    "cannot enter RT subregions", stmt.span,
                    rule="EXPR FORK")
            kcr = env.rkind_of(rcr)
            if not non_local(kcr):
                raise OwnershipTypeError(
                    "fork requires the current region to be shared or "
                    f"garbage-collected, found '{kcr}'", stmt.span,
                    rule="EXPR FORK")
            for owner in self._fork_site_owners(env, stmt.call, rcr):
                k = env.rkind_of(owner)
                if not non_local(k):
                    raise OwnershipTypeError(
                        f"fork passes owner '{owner}' whose region kind "
                        f"'{k}' is local (objects in local regions cannot "
                        "escape to another thread)", stmt.span,
                        rule="EXPR FORK")
            return

        # [EXPR RTFORK].  In the paper's A-normal core the fork's
        # receiver/arguments are variables; in our generalized syntax they
        # are expressions evaluated by the *parent* thread, so the call is
        # checked against the parent's full effects.  The real-time
        # restriction is the direct kind check on the spawned method's
        # renamed effects below.
        self.check_expr(env, stmt.call, permitted, rcr)
        kcr = env.rkind_of(rcr)
        if kcr is None or not table.is_shared_kind(kcr):
            raise OwnershipTypeError(
                "RT fork requires the current region to be shared, found "
                f"'{kcr}'", stmt.span, rule="EXPR RTFORK")
        for owner in self._fork_site_owners(env, stmt.call, rcr):
            k = env.rkind_of(owner)
            if k is None or not table.is_shared_kind(k):
                raise OwnershipTypeError(
                    f"RT fork passes owner '{owner}' whose region kind "
                    f"'{k}' is not shared (heap references cannot reach a "
                    "real-time thread)", stmt.span, rule="EXPR RTFORK")
        # Direct check on the spawned method's effects: nothing the
        # real-time thread touches may be heap- or VT-allocated.
        effects = self._renamed_invoke_effects(env, stmt.call, rcr)
        for eff in effects:
            if eff == RT_EFFECT:
                continue
            k = env.rkind_of(eff)
            if k is None or not table.is_subkind(k, _K_SHARED_LT):
                raise OwnershipTypeError(
                    f"RT fork target accesses '{eff}' whose region kind "
                    f"'{k}' is not an LT shared region", stmt.span,
                    rule="EXPR RTFORK")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def check_expr(self, env: Env, expr: ast.Expr, permitted: Effects,
                   rcr: Owner) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.NullLit):
            return NULL
        if isinstance(expr, ast.ThisRef):
            if env.this_type is None:
                raise OwnershipTypeError("'this' used outside a class",
                                         expr.span)
            return env.this_type
        if isinstance(expr, ast.VarRef):
            return self._check_var(env, expr, permitted, rcr)
        if isinstance(expr, ast.NewExpr):
            return self._check_new(env, expr, permitted, rcr)
        if isinstance(expr, ast.FieldRead):
            return self._check_field_read(env, expr, permitted, rcr)
        if isinstance(expr, ast.Invoke):
            return self._check_invoke(env, expr, permitted, rcr)
        if isinstance(expr, ast.Binary):
            return self._check_binary(env, expr, permitted, rcr)
        if isinstance(expr, ast.Unary):
            return self._check_unary(env, expr, permitted, rcr)
        if isinstance(expr, ast.BuiltinCall):
            return self._check_builtin(env, expr, permitted, rcr)
        raise OwnershipTypeError(f"unknown expression {expr!r}", expr.span)

    def _check_var(self, env: Env, expr: ast.VarRef, permitted: Effects,
                   rcr: Owner) -> Type:
        if expr.name in env.vars:
            return env.vars[expr.name]
        # Unqualified instance field read.
        if env.this_type is not None:
            fi = self.program.lookup_field(env.this_type.name, expr.name)
            if fi is not None and not fi.static:
                read = ast.FieldRead(ast.ThisRef(expr.span), expr.name,
                                     expr.span)
                return self._check_field_read(env, read, permitted, rcr)
        if expr.name in self.program.classes:
            raise OwnershipTypeError(
                f"class name '{expr.name}' used as a value (only "
                "'ClassName.staticField' is allowed)", expr.span)
        raise OwnershipTypeError(f"unknown variable '{expr.name}'",
                                 expr.span)

    def _check_new(self, env: Env, expr: ast.NewExpr, permitted: Effects,
                   rcr: Owner) -> Type:
        """[EXPR NEW]."""
        info = self.program.classes.get(expr.class_name)
        if info is None:
            raise OwnershipTypeError(
                f"unknown class '{expr.class_name}'", expr.span,
                rule="EXPR NEW")
        ctype = ClassType(expr.class_name,
                          tuple(convert_owner(o) for o in expr.owners))
        self.check_type_wf(env, ctype, expr.span)
        owner = ctype.owner
        self._require_effect(env, permitted, owner, expr.span,
                             f"allocating '{ctype}'", "EXPR NEW")
        if not env.av_rh(owner):
            raise OwnershipTypeError(
                f"no region handle is available for owner '{owner}' "
                f"(cannot allocate '{ctype}')", expr.span, rule="AV RH")
        if info.ctor_params:
            if len(expr.args) != len(info.ctor_params):
                raise OwnershipTypeError(
                    f"'{expr.class_name}' takes "
                    f"{len(info.ctor_params)} constructor arguments",
                    expr.span, rule="EXPR NEW")
            for arg, want in zip(expr.args, info.ctor_params):
                got = self.check_expr(env, arg, permitted, rcr)
                self._require_subtype(got, want, expr.span,
                                      "constructor argument")
        elif expr.args:
            raise OwnershipTypeError(
                "user classes take no constructor arguments (call an "
                "init method)", expr.span, rule="EXPR NEW")
        if self.new_site_hook is not None:
            self.new_site_hook(env, expr, rcr)
        return ctype

    # -- field reads -----------------------------------------------------

    def _try_static_field(self, env: Env, target: ast.Expr,
                          field_name: str):
        """If ``target`` is a class name (not a variable), resolve the
        static field; returns the FieldInfo or None."""
        if not isinstance(target, ast.VarRef):
            return None
        if target.name in env.vars:
            return None
        info = self.program.classes.get(target.name)
        if info is None:
            return None
        fi = self.program.lookup_field(target.name, field_name)
        if fi is None or not fi.static:
            raise OwnershipTypeError(
                f"class '{target.name}' has no static field "
                f"'{field_name}'", target.span)
        return fi

    def _instance_field_type(self, env: Env, ttype: ClassType,
                             target: ast.Expr, field_name: str,
                             span) -> Type:
        fi = self.program.lookup_field(ttype.name, field_name)
        if fi is None or fi.static:
            raise OwnershipTypeError(
                f"class '{ttype.name}' has no field '{field_name}'",
                span, rule="EXPR REF READ")
        if fi.type.mentions(THIS) and not isinstance(target, ast.ThisRef):
            raise OwnershipTypeError(
                f"field '{field_name}' has a type owned by its object "
                "and is encapsulated (property O3); it is only "
                "accessible through 'this'", span, rule="EXPR REF READ")
        subst = make_subst(
            self.program.class_info(ttype.name).formal_names,
            ttype.owners)
        return fi.type.substitute(subst)

    def _portal_field_type(self, env: Env, htype: HandleType,
                           field_name: str, span) -> Type:
        region = htype.region
        kind = env.kind_of(region)
        if kind.name not in self.program.region_kinds:
            raise OwnershipTypeError(
                f"region '{region}' of kind '{kind}' has no portal "
                "fields", span, rule="EXPR GET REGION FIELD")
        portal = self.program.lookup_portal(kind.strip_lt(), field_name)
        if portal is None:
            raise OwnershipTypeError(
                f"region kind '{kind}' has no portal field "
                f"'{field_name}'", span, rule="EXPR GET REGION FIELD")
        return portal.type.substitute({THIS: region})

    def _check_field_read(self, env: Env, expr: ast.FieldRead,
                          permitted: Effects, rcr: Owner) -> Type:
        """[EXPR REF READ] / [EXPR GET REGION FIELD] / static read."""
        static = self._try_static_field(env, expr.target, expr.field_name)
        if static is not None:
            if isinstance(static.type, ClassType):
                self._require_effect(env, permitted, static.type.owner,
                                     expr.span,
                                     f"reading '{expr.field_name}'",
                                     "EXPR REF READ")
            return static.type
        ttype = self.check_expr(env, expr.target, permitted, rcr)
        if isinstance(ttype, HandleType):
            declared = self._portal_field_type(env, ttype,
                                               expr.field_name, expr.span)
            if isinstance(declared, ClassType):
                self._require_effect(env, permitted, declared.owner,
                                     expr.span,
                                     f"reading portal '{expr.field_name}'",
                                     "EXPR GET REGION FIELD")
            return declared
        if not isinstance(ttype, ClassType):
            raise OwnershipTypeError(
                f"cannot read field of non-object type '{ttype}'",
                expr.span, rule="EXPR REF READ")
        declared = self._instance_field_type(env, ttype, expr.target,
                                             expr.field_name, expr.span)
        if isinstance(declared, ClassType):
            self._require_effect(env, permitted, declared.owner, expr.span,
                                 f"reading field '{expr.field_name}'",
                                 "EXPR REF READ")
        return declared

    # -- invocation --------------------------------------------------------

    def _invoke_parts(self, env: Env, expr: ast.Invoke, permitted: Effects,
                      rcr: Owner):
        """Shared receiver/method resolution and renaming for
        [EXPR INVOKE]; returns (receiver type, renamed signature,
        actuals).  The renaming itself is memoized per call shape in
        :meth:`ProgramInfo.invoke_signature`."""
        ttype = self.check_expr(env, expr.target, permitted, rcr)
        if not isinstance(ttype, ClassType):
            raise OwnershipTypeError(
                f"cannot invoke method on non-object type '{ttype}'",
                expr.span, rule="EXPR INVOKE")
        actuals = tuple(convert_owner(o) for o in expr.owner_args)
        sig = self.program.invoke_signature(ttype, expr.method_name,
                                            actuals, rcr)
        if sig is None:
            mi = self.program.lookup_method(ttype.name, expr.method_name)
            if mi is None:
                raise OwnershipTypeError(
                    f"class '{ttype.name}' has no method "
                    f"'{expr.method_name}'", expr.span,
                    rule="EXPR INVOKE")
            raise OwnershipTypeError(
                f"method '{ttype.name}.{expr.method_name}' expects "
                f"{len(mi.formals)} owner arguments, got "
                f"{len(expr.owner_args)}", expr.span, rule="EXPR INVOKE")
        return ttype, sig, actuals

    def _renamed_invoke_effects(self, env: Env, expr: ast.Invoke,
                                rcr: Owner) -> Tuple[Owner, ...]:
        ttype, sig, _ = self._invoke_parts(env, expr, None, rcr)
        this_owner = ttype.owner
        out = []
        for renamed in sig.effects:
            if renamed == THIS and not isinstance(expr.target,
                                                  ast.ThisRef):
                renamed = this_owner  # covering the owner covers the object
            out.append(renamed)
        return tuple(out)

    def _check_invoke(self, env: Env, expr: ast.Invoke,
                      permitted: Effects, rcr: Owner) -> Type:
        """[EXPR INVOKE]."""
        ttype, sig, actuals = self._invoke_parts(
            env, expr, permitted, rcr)
        mi, rename = sig.method, sig.rename
        span = expr.span
        receiver_is_this = isinstance(expr.target, ast.ThisRef)
        first_owner = ttype.owner

        # owner-argument kinds: ki' ≤ Rename(ki)
        for wanted, actual in zip(sig.formal_kinds, actuals):
            actual_kind = self._owner_kind(env, actual, span)
            if not self.program.kind_table.is_subkind(actual_kind, wanted):
                raise OwnershipTypeError(
                    f"owner argument '{actual}' has kind "
                    f"'{actual_kind}', not a subkind of '{wanted}'",
                    span, rule="EXPR INVOKE")
            # Section 2.1 / Theorem 4: a method owner argument that is an
            # *object* must (transitively) own the receiver object.  For
            # a `this` receiver that is the object itself; for any other
            # receiver we only have its owner, so we require owning that
            # (which implies owning the object, since the first owner
            # owns it).
            if env.is_object_owner(actual):
                target = THIS if receiver_is_this else first_owner
                if not env.owns(actual, target):
                    raise OwnershipTypeError(
                        f"object owner argument '{actual}' must "
                        f"(transitively) own the receiver", span,
                        rule="EXPR INVOKE")

        def reject_this_mention(what: str) -> None:
            raise OwnershipTypeError(
                f"{what} of '{ttype.name}.{mi.name}' mentions 'this' "
                "and is only usable through 'this' (property O3)",
                span, rule="EXPR INVOKE")

        if len(expr.args) != len(mi.params):
            raise OwnershipTypeError(
                f"method '{ttype.name}.{mi.name}' expects "
                f"{len(mi.params)} arguments, got {len(expr.args)}",
                span, rule="EXPR INVOKE")
        for i, (arg, (_, pname)) in enumerate(zip(expr.args, mi.params)):
            if sig.param_mentions_this[i] and not receiver_is_this:
                reject_this_mention(f"parameter '{pname}'")
            want = sig.param_types[i]
            got = self.check_expr(env, arg, permitted, rcr)
            self._require_subtype(got, want, span,
                                  f"argument for '{pname}'")

        for c in mi.constraints:
            if c.left == THIS and not receiver_is_this:
                raise OwnershipTypeError(
                    f"constraint '{c}' of '{ttype.name}.{mi.name}' "
                    "mentions 'this' on the left and cannot be checked "
                    "for a non-this receiver", span, rule="EXPR INVOKE")
            inst = Constraint(
                c.relation,
                rename.get(c.left, c.left),
                first_owner if (c.right == THIS and not receiver_is_this)
                else rename.get(c.right, c.right))
            if not env.entails(inst):
                raise OwnershipTypeError(
                    f"constraint '{inst}' of method "
                    f"'{ttype.name}.{mi.name}' is not satisfied", span,
                    rule="EXPR INVOKE")

        for renamed in sig.effects:
            if renamed == THIS and not receiver_is_this:
                renamed = first_owner
            self._require_effect(env, permitted, renamed, span,
                                 f"calling '{ttype.name}.{mi.name}'",
                                 "EXPR INVOKE")
        if sig.return_mentions_this and not receiver_is_this:
            reject_this_mention("return type")
        return sig.return_type

    # -- operators and builtins ------------------------------------------

    def _check_binary(self, env: Env, expr: ast.Binary,
                      permitted: Effects, rcr: Owner) -> Type:
        left = self.check_expr(env, expr.left, permitted, rcr)
        right = self.check_expr(env, expr.right, permitted, rcr)
        op = expr.op
        if op in ("&&", "||"):
            if left == BOOLEAN and right == BOOLEAN:
                return BOOLEAN
        elif op in ("==", "!="):
            if left == right and left in (INT, FLOAT, BOOLEAN):
                return BOOLEAN
            if left.is_reference and right.is_reference:
                return BOOLEAN
        elif op in ("<", "<=", ">", ">="):
            if left == right and left in (INT, FLOAT):
                return BOOLEAN
        elif op == "%":
            if left == INT and right == INT:
                return INT
        elif op in ("+", "-", "*", "/"):
            if left == right and left in (INT, FLOAT):
                return left
        raise OwnershipTypeError(
            f"operator '{op}' cannot be applied to '{left}' and "
            f"'{right}'", expr.span)

    def _check_unary(self, env: Env, expr: ast.Unary, permitted: Effects,
                     rcr: Owner) -> Type:
        operand = self.check_expr(env, expr.operand, permitted, rcr)
        if expr.op == "!" and operand == BOOLEAN:
            return BOOLEAN
        if expr.op == "-" and operand in (INT, FLOAT):
            return operand
        raise OwnershipTypeError(
            f"operator '{expr.op}' cannot be applied to '{operand}'",
            expr.span)

    def _check_builtin(self, env: Env, expr: ast.BuiltinCall,
                       permitted: Effects, rcr: Owner) -> Type:
        sig = BUILTIN_SIGNATURES.get(expr.name)
        if sig is None:
            raise OwnershipTypeError(f"unknown builtin '{expr.name}'",
                                     expr.span)
        if expr.name == "print":
            if len(expr.args) != 1:
                raise OwnershipTypeError("print takes one argument",
                                         expr.span)
            got = self.check_expr(env, expr.args[0], permitted, rcr)
            if got not in (INT, FLOAT, BOOLEAN):
                raise OwnershipTypeError(
                    f"print takes a scalar, found '{got}'", expr.span)
            return VOID
        params, ret = sig
        if len(expr.args) != len(params):
            raise OwnershipTypeError(
                f"builtin '{expr.name}' takes {len(params)} arguments",
                expr.span)
        for arg, want in zip(expr.args, params):
            got = self.check_expr(env, arg, permitted, rcr)
            self._require_subtype(got, want, expr.span,
                                  f"argument of '{expr.name}'")
        return ret
