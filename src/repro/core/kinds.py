"""The owner-kind hierarchy of Figure 4 and the subkinding judgment
``P ⊢ k1 ≤k k2`` of Appendix B.

Built-in kinds::

                      Owner
                    /       \\
              ObjOwner      Region
                           /      \\
                    GCRegion      NoGCRegion
                                 /         \\
                         LocalRegion     SharedRegion
                                          /   ...   \\
                                     user-defined region kinds

User-defined shared region kinds (``regionKind srkn<formals> extends ...``)
hang below ``SharedRegion``.  Any kind may additionally carry the ``:LT``
refinement (Figure 9, ``k ::= ... | rkind : LT``), with:

* [DELETE LT]  ``rkind:LT ≤ rkind``
* [ADD LT]     ``rkind1 ≤ rkind2  ⇒  rkind1:LT ≤ rkind2:LT``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .owners import Owner, Subst, substitute_all

OWNER = "Owner"
OBJ_OWNER = "ObjOwner"
REGION = "Region"
GC_REGION = "GCRegion"
NO_GC_REGION = "NoGCRegion"
LOCAL_REGION = "LocalRegion"
SHARED_REGION = "SharedRegion"

BUILTIN_KINDS = (OWNER, OBJ_OWNER, REGION, GC_REGION, NO_GC_REGION,
                 LOCAL_REGION, SHARED_REGION)

#: Direct super-kind of each built-in kind (Figure 4).
_BUILTIN_SUPER: Dict[str, Optional[str]] = {
    OWNER: None,
    OBJ_OWNER: OWNER,
    REGION: OWNER,
    GC_REGION: REGION,
    NO_GC_REGION: REGION,
    LOCAL_REGION: NO_GC_REGION,
    SHARED_REGION: NO_GC_REGION,
}


@dataclass(frozen=True)
class Kind:
    """A (possibly refined, possibly user-defined) owner kind."""

    name: str
    args: Tuple[Owner, ...] = ()
    lt: bool = False

    def __str__(self) -> str:
        base = self.name
        if self.args:
            base += "<" + ", ".join(map(str, self.args)) + ">"
        return base + (":LT" if self.lt else "")

    def with_lt(self, lt: bool = True) -> "Kind":
        return Kind(self.name, self.args, lt)

    def strip_lt(self) -> "Kind":
        return Kind(self.name, self.args, False)

    def substitute(self, subst: Subst) -> "Kind":
        if not self.args:
            return self
        return Kind(self.name, substitute_all(self.args, subst), self.lt)

    @property
    def is_builtin(self) -> bool:
        return self.name in _BUILTIN_SUPER


K_OWNER = Kind(OWNER)
K_OBJ_OWNER = Kind(OBJ_OWNER)
K_REGION = Kind(REGION)
K_GC_REGION = Kind(GC_REGION)
K_NO_GC_REGION = Kind(NO_GC_REGION)
K_LOCAL_REGION = Kind(LOCAL_REGION)
K_SHARED_REGION = Kind(SHARED_REGION)
#: Kind of ``immortal`` ([PROG]: ``SharedRegion:LT immortal``) — immortal
#: memory behaves like a preallocated LT shared region.
K_IMMORTAL = Kind(SHARED_REGION, lt=True)


@dataclass
class KindTable:
    """Resolves user region kinds to their parents for subkinding.

    ``supers`` maps a user kind name to ``(formal_names, super_kind)``
    where ``super_kind`` is expressed over the formals.
    """

    supers: Dict[str, Tuple[Tuple[str, ...], Kind]] = field(
        default_factory=dict)

    def is_user_kind(self, name: str) -> bool:
        return name in self.supers

    def direct_super(self, kind: Kind) -> Optional[Kind]:
        """The direct super-kind with owner arguments substituted
        ([SUBKIND SHARED REGION KIND]); preserves the ``:LT`` refinement
        via [ADD LT]."""
        if kind.name in _BUILTIN_SUPER:
            sup = _BUILTIN_SUPER[kind.name]
            if sup is None:
                return None
            return Kind(sup, lt=kind.lt)
        if kind.name not in self.supers:
            return None
        formals, super_kind = self.supers[kind.name]
        subst = {Owner(fn): actual
                 for fn, actual in zip(formals, kind.args)}
        return super_kind.substitute(subst).with_lt(kind.lt)

    def is_subkind(self, k1: Kind, k2: Kind) -> bool:
        """``P ⊢ k1 ≤k k2`` — reflexivity, transitivity up the hierarchy,
        [DELETE LT], [ADD LT]."""
        # [DELETE LT]: k:LT ≤ k, so an un-refined goal accepts refined
        # subjects; a refined goal requires a refined subject ([ADD LT]).
        if k2.lt and not k1.lt:
            return False
        current: Optional[Kind] = k1.with_lt(k2.lt)
        goal = k2
        while current is not None:
            if current.name == goal.name and current.args == goal.args:
                return True
            current = self.direct_super(current)
        return False

    def is_region_kind(self, kind: Kind) -> bool:
        return self.is_subkind(kind, K_REGION)

    def is_shared_kind(self, kind: Kind) -> bool:
        return self.is_subkind(kind, K_SHARED_REGION)

    def is_object_kind(self, kind: Kind) -> bool:
        """True for kinds that can only denote objects (ObjOwner)."""
        return kind.name == OBJ_OWNER

    def lineage(self, kind: Kind) -> Tuple[Kind, ...]:
        """The chain ``kind, super(kind), ...`` up to ``Owner``."""
        chain = []
        current: Optional[Kind] = kind
        while current is not None:
            chain.append(current)
            current = self.direct_super(current)
        return tuple(chain)
