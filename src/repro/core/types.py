"""Semantic types (grammar: ``t ::= c | int | RHandle(r)``) plus the
``float``/``boolean``/``void`` scalars and the null bottom type used by the
statement sugar."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .owners import Owner, Subst, substitute, substitute_all


class Type:
    """Base class of semantic types."""

    def substitute(self, subst: Subst) -> "Type":
        return self

    def mentions(self, owner: Owner) -> bool:
        return False

    @property
    def is_reference(self) -> bool:
        """True for types whose values are object references (class types
        and null); scalar and handle values need no RTSJ assignment
        checks."""
        return False


@dataclass(frozen=True)
class PrimType(Type):
    name: str  # 'int' | 'float' | 'boolean' | 'void'

    def __str__(self) -> str:
        return self.name


INT = PrimType("int")
FLOAT = PrimType("float")
BOOLEAN = PrimType("boolean")
VOID = PrimType("void")


@dataclass(frozen=True)
class NullType(Type):
    """Type of the ``null`` literal; subtype of every class/handle type."""

    def __str__(self) -> str:
        return "null"

    @property
    def is_reference(self) -> bool:
        return True


NULL = NullType()


@dataclass(frozen=True)
class ClassType(Type):
    """``cn<o1..n>``; ``owners[0]`` owns (and thus places) the object."""

    name: str
    owners: Tuple[Owner, ...]

    def __str__(self) -> str:
        return self.name + "<" + ", ".join(map(str, self.owners)) + ">"

    @property
    def owner(self) -> Owner:
        return self.owners[0]

    def substitute(self, subst: Subst) -> "ClassType":
        return ClassType(self.name, substitute_all(self.owners, subst))

    def mentions(self, owner: Owner) -> bool:
        return owner in self.owners

    @property
    def is_reference(self) -> bool:
        return True


@dataclass(frozen=True)
class HandleType(Type):
    """``RHandle(r)`` — the runtime handle of region ``r``."""

    region: Owner

    def __str__(self) -> str:
        return f"RHandle<{self.region}>"

    def substitute(self, subst: Subst) -> "HandleType":
        return HandleType(substitute(self.region, subst))

    def mentions(self, owner: Owner) -> bool:
        return self.region == owner
