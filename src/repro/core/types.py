"""Semantic types (grammar: ``t ::= c | int | RHandle(r)``) plus the
``float``/``boolean``/``void`` scalars and the null bottom type used by the
statement sugar.

Class and handle types are *interned* (hash-consed) like
:class:`repro.core.owners.Owner`: constructing ``ClassType(n, os)`` twice
yields the same object, which makes the checker's substitution-heavy hot
path allocate nothing for repeated types and turns deep equality into a
pointer check in the common case.  Equality/hashing remain structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from .owners import Owner, Subst, substitute, substitute_all


class Type:
    """Base class of semantic types."""

    def substitute(self, subst: Subst) -> "Type":
        return self

    def mentions(self, owner: Owner) -> bool:
        return False

    @property
    def is_reference(self) -> bool:
        """True for types whose values are object references (class types
        and null); scalar and handle values need no RTSJ assignment
        checks."""
        return False


@dataclass(frozen=True)
class PrimType(Type):
    name: str  # 'int' | 'float' | 'boolean' | 'void'

    _interned: ClassVar[Dict[str, "PrimType"]] = {}

    def __new__(cls, name: Optional[str] = None) -> "PrimType":
        if name is None:
            return super().__new__(cls)
        cached = cls._interned.get(name)
        if cached is None:
            cached = super().__new__(cls)
            cls._interned[name] = cached
        return cached

    def __hash__(self) -> int:
        return hash(self.name)

    def __str__(self) -> str:
        return self.name


INT = PrimType("int")
FLOAT = PrimType("float")
BOOLEAN = PrimType("boolean")
VOID = PrimType("void")


@dataclass(frozen=True)
class NullType(Type):
    """Type of the ``null`` literal; subtype of every class/handle type."""

    def __str__(self) -> str:
        return "null"

    @property
    def is_reference(self) -> bool:
        return True


NULL = NullType()


@dataclass(frozen=True)
class ClassType(Type):
    """``cn<o1..n>``; ``owners[0]`` owns (and thus places) the object."""

    name: str
    owners: Tuple[Owner, ...]

    _interned: ClassVar[Dict[Tuple[str, Tuple[Owner, ...]],
                             "ClassType"]] = {}

    def __new__(cls, name: Optional[str] = None,
                owners: Tuple[Owner, ...] = ()) -> "ClassType":
        if name is None:
            return super().__new__(cls)
        owners = owners if isinstance(owners, tuple) else tuple(owners)
        key = (name, owners)
        cached = cls._interned.get(key)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "_hash", hash(key))
            cls._interned[key] = cached
        return cached

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((self.name, self.owners))
            object.__setattr__(self, "_hash", h)
            return h

    def __str__(self) -> str:
        return self.name + "<" + ", ".join(map(str, self.owners)) + ">"

    @property
    def owner(self) -> Owner:
        return self.owners[0]

    def substitute(self, subst: Subst) -> "ClassType":
        renamed = substitute_all(self.owners, subst)
        # substitute_all preserves identity when nothing changes, and the
        # interner returns ``self`` for an identical key.
        return self if renamed is self.owners \
            else ClassType(self.name, renamed)

    def mentions(self, owner: Owner) -> bool:
        return owner in self.owners

    @property
    def is_reference(self) -> bool:
        return True


@dataclass(frozen=True)
class HandleType(Type):
    """``RHandle(r)`` — the runtime handle of region ``r``."""

    region: Owner

    _interned: ClassVar[Dict[Owner, "HandleType"]] = {}

    def __new__(cls, region: Optional[Owner] = None) -> "HandleType":
        if region is None:
            return super().__new__(cls)
        cached = cls._interned.get(region)
        if cached is None:
            cached = super().__new__(cls)
            cls._interned[region] = cached
        return cached

    def __hash__(self) -> int:
        return hash(self.region)

    def __str__(self) -> str:
        return f"RHandle<{self.region}>"

    def substitute(self, subst: Subst) -> "HandleType":
        renamed = substitute(self.region, subst)
        return self if renamed is self.region else HandleType(renamed)

    def mentions(self, owner: Owner) -> bool:
        return self.region == owner
