"""Extraction of the ownership and outlives relations (Figure 6).

The paper's Figure 6 draws, for the TStack example, the runtime ownership
forest (solid arrows) and the outlives relation between regions (dashed
arrows).  :func:`ownership_graph` rebuilds exactly that picture from a
finished simulation: nodes are live objects and regions, ``owns`` edges
follow each object's owner, and ``outlives`` edges follow region ancestry.

The graph is a plain dict-of-lists structure so the core has no third-party
dependencies; :func:`to_networkx` converts it when networkx is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass
class RelationGraph:
    """Ownership forest + outlives DAG over a heap snapshot."""

    #: node id -> human-readable label ("r2", "s1 (TStack)", ...)
    labels: Dict[str, str] = field(default_factory=dict)
    #: node id -> 'object' | 'region'
    node_kinds: Dict[str, str] = field(default_factory=dict)
    owns: List[Tuple[str, str]] = field(default_factory=list)
    outlives: List[Tuple[str, str]] = field(default_factory=list)
    #: adjacency indexes maintained by add_owns so owner_of/owned_by are
    #: O(1)/O(degree) instead of scanning every edge (region_of walks —
    #: one owner_of per ancestor — were quadratic on deep forests)
    _first_owner: Dict[str, str] = field(default_factory=dict,
                                         repr=False, compare=False)
    _owned: Dict[str, List[str]] = field(default_factory=dict,
                                         repr=False, compare=False)

    def add_node(self, node_id: str, label: str, kind: str) -> None:
        self.labels[node_id] = label
        self.node_kinds[node_id] = kind

    def add_owns(self, owner_id: str, owned_id: str) -> None:
        self.owns.append((owner_id, owned_id))
        # first edge wins, matching the old first-match linear scan even
        # on (ill-formed) multi-owner graphs
        self._first_owner.setdefault(owned_id, owner_id)
        self._owned.setdefault(owner_id, []).append(owned_id)

    def add_outlives(self, longer_id: str, shorter_id: str) -> None:
        self.outlives.append((longer_id, shorter_id))

    # -- queries used by tests and the Figure-6 example -----------------

    def owner_of(self, node_id: str) -> str:
        try:
            return self._first_owner[node_id]
        except KeyError:
            raise KeyError(node_id) from None

    def owned_by(self, owner_id: str) -> List[str]:
        return list(self._owned.get(owner_id, ()))

    def is_forest(self) -> bool:
        """Ownership property O1: every node has at most one owner and
        there are no cycles."""
        owners: Dict[str, str] = {}
        for owner, owned in self.owns:
            if owned in owners:
                return False
            owners[owned] = owner
        for start in owners:
            seen: Set[str] = set()
            node = start
            while node in owners:
                if node in seen:
                    return False
                seen.add(node)
                node = owners[node]
        return True

    def region_of(self, node_id: str) -> str:
        """Ownership property O2: walk up the forest to the owning
        region."""
        node = node_id
        while self.node_kinds.get(node) == "object":
            node = self.owner_of(node)
        return node

    def outlives_closure(self) -> Set[Tuple[str, str]]:
        adjacency: Dict[str, Set[str]] = {}
        for a, b in self.outlives:
            adjacency.setdefault(a, set()).add(b)
        closure: Set[Tuple[str, str]] = set()
        for start in list(adjacency):
            frontier = [start]
            seen: Set[str] = set()
            while frontier:
                node = frontier.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        closure.add((start, nxt))
                        frontier.append(nxt)
        return closure

    def to_dot(self) -> str:
        """Graphviz rendering mirroring Figure 6: circles for objects,
        boxes for regions, solid owns edges, dashed outlives edges."""
        lines = ["digraph ownership {"]
        for node_id, label in sorted(self.labels.items()):
            shape = ("box" if self.node_kinds[node_id] == "region"
                     else "ellipse")
            lines.append(f'  "{node_id}" [label="{label}" shape={shape}];')
        for owner, owned in self.owns:
            lines.append(f'  "{owner}" -> "{owned}";')
        for longer, shorter in self.outlives:
            lines.append(f'  "{longer}" -> "{shorter}" [style=dashed];')
        lines.append("}")
        return "\n".join(lines)


def to_networkx(graph: RelationGraph):
    """Convert to a networkx.MultiDiGraph (optional dependency)."""
    import networkx as nx

    g = nx.MultiDiGraph()
    for node_id, label in graph.labels.items():
        g.add_node(node_id, label=label, kind=graph.node_kinds[node_id])
    for owner, owned in graph.owns:
        g.add_edge(owner, owned, relation="owns")
    for longer, shorter in graph.outlives:
        g.add_edge(longer, shorter, relation="outlives")
    return g
