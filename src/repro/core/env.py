"""The typing environment ``E`` and its derived judgments.

``E ::= ∅ | E, t v | E, k o | E, o2 ≻o o1 | E, o2 ≽ o1`` — variables with
types, owners with kinds, ownership edges, and outlives edges.  On top of
the stored facts the environment implements the paper's derived judgments:

* ``E ⊢ o1 ≽ o2``      — outlives: reflexivity, transitivity, ≻o ⇒ ≽,
  heap/immortal outlive everything ([≽heap/immortal]), and the fact that
  the first owner from the type of ``this`` owns ``this``.
* ``E ⊢ o1 ≽o o2``     — ownership (reflexive-transitive).
* ``E ⊢ av RH(o)``     — region-handle availability ([AV HANDLE],
  [AV THIS], [AV TRANS1], [AV TRANS2]): handles propagate along ownership
  chains in both directions because an object lives in its owner's region.
* ``E ⊢ RKind(o) = k`` — the kind of the region ``o`` denotes or is
  allocated in ([RKIND THIS], [RKIND FN1], [RKIND FN2]).
* ``E ⊢ X ≽ X'``       — effects subsumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import OwnershipTypeError
from .kinds import (K_GC_REGION, K_IMMORTAL, K_OBJ_OWNER, K_REGION, Kind,
                    OBJ_OWNER, OWNER)
from .owners import (HEAP, IMMORTAL, INITIAL_REGION, Owner, RT_EFFECT, THIS)
from .program import Constraint, ProgramInfo
from .types import ClassType, Type

#: Permitted effects: a set of owners, or ``None`` for the unrestricted
#: ``world`` effect used when checking the program's initial expression
#: ([PROG]: ``P; E; world; heap ⊢ e : t``).
Effects = Optional[FrozenSet[Owner]]


@dataclass(frozen=True)
class Env:
    """Immutable typing environment; extension returns a new Env.

    Because the environment is persistent (every ``with_*`` returns a new
    instance and no stored fact ever changes), the derived judgments below
    are pure functions of the instance — so each Env carries a private
    memo table (adjacency indexes over the edge sets plus per-query
    results).  ``_derive`` (and ``dataclasses.replace``, which it
    replaces on the hot path) resets that table, so derived environments
    always start with an empty cache and can never see stale answers.
    """

    program: ProgramInfo
    vars: Dict[str, Type] = field(default_factory=dict)
    owner_kinds: Dict[str, Kind] = field(default_factory=dict)
    this_type: Optional[ClassType] = None
    handles: FrozenSet[str] = frozenset()
    owns_edges: FrozenSet[Tuple[Owner, Owner]] = frozenset()
    outlives_edges: FrozenSet[Tuple[Owner, Owner]] = frozenset()
    _memo: Dict[str, dict] = field(init=False, default_factory=dict,
                                   repr=False, compare=False)

    def _derive(self, **changes) -> "Env":
        """Fast ``dataclasses.replace``: copy the instance dict, apply
        ``changes``, reset the memo.  Equivalent because every field of
        this frozen dataclass lives in ``__dict__`` and ``__init__`` has
        no logic beyond field assignment."""
        new = object.__new__(Env)
        d = dict(self.__dict__)
        d.update(changes)
        d["_memo"] = {}
        new.__dict__.update(d)
        return new

    def _caches(self) -> Dict[str, dict]:
        """Adjacency indexes + memo tables, built on first use."""
        c = self._memo
        if not c:
            owns_fwd: Dict[Owner, List[Owner]] = {}
            owns_rev: Dict[Owner, List[Owner]] = {}
            reach_fwd: Dict[Owner, List[Owner]] = {}
            for a, b in self.owns_edges:
                owns_fwd.setdefault(a, []).append(b)
                owns_rev.setdefault(b, []).append(a)
                reach_fwd.setdefault(a, []).append(b)
            for a, b in self.outlives_edges:
                reach_fwd.setdefault(a, []).append(b)
            c["owns_fwd"] = owns_fwd
            c["owns_rev"] = owns_rev
            c["reach_fwd"] = reach_fwd
            c["owns"] = {}
            c["outlives"] = {}
            c["av"] = {}
            c["rkind"] = {}
            c["effect"] = {}
        return c

    # ------------------------------------------------------------------
    # construction / extension
    # ------------------------------------------------------------------

    @staticmethod
    def initial(program: ProgramInfo) -> "Env":
        """The root environment of [PROG]: ``GCRegion heap,
        SharedRegion:LT immortal`` with both handles available."""
        return Env(program, handles=frozenset({"heap", "immortal"}))

    def with_var(self, name: str, vtype: Type) -> "Env":
        new_vars = dict(self.vars)
        new_vars[name] = vtype
        return self._derive(vars=new_vars)

    def with_owner(self, name: str, kind: Kind) -> "Env":
        """[ENV OWNER]; rejects shadowing so owner atoms stay unambiguous."""
        if name in self.owner_kinds or name in ("heap", "immortal",
                                                "initialRegion", "this",
                                                "RT"):
            raise OwnershipTypeError(
                f"owner '{name}' shadows an owner already in scope")
        new_kinds = dict(self.owner_kinds)
        new_kinds[name] = kind
        return self._derive(owner_kinds=new_kinds)

    def with_handle(self, owner: Owner) -> "Env":
        return self._derive(handles=self.handles | {owner.name})

    def with_this(self, this_type: ClassType) -> "Env":
        """Bind ``this``; records that the first owner owns ``this`` and
        that every owner of the type outlives the first ([TYPE C]
        invariant)."""
        env = self._derive(this_type=this_type)
        env = env.with_owns(this_type.owner, THIS)
        for extra in this_type.owners[1:]:
            env = env.with_outlives(extra, this_type.owner)
        return env

    def with_owns(self, owner: Owner, owned: Owner) -> "Env":
        return self._derive(owns_edges=self.owns_edges | {(owner, owned)})

    def with_outlives(self, longer: Owner, shorter: Owner) -> "Env":
        return self._derive(outlives_edges=self.outlives_edges
                            | {(longer, shorter)})

    def with_constraint(self, constraint: Constraint) -> "Env":
        if constraint.relation == "owns":
            return self.with_owns(constraint.left, constraint.right)
        return self.with_outlives(constraint.left, constraint.right)

    def with_constraints(self, constraints: Iterable[Constraint]) -> "Env":
        env = self
        for c in constraints:
            env = env.with_constraint(c)
        return env

    # ------------------------------------------------------------------
    # owner kinds
    # ------------------------------------------------------------------

    def kind_of(self, owner: Owner) -> Kind:
        """``E ⊢k o : k`` ([OWNER THIS], [OWNER FORMAL], specials)."""
        if owner == HEAP:
            return K_GC_REGION
        if owner == IMMORTAL:
            return K_IMMORTAL
        if owner == INITIAL_REGION:
            return K_REGION
        if owner == THIS:
            if self.this_type is None:
                raise OwnershipTypeError("'this' used outside a class")
            return K_OBJ_OWNER
        if owner == RT_EFFECT:
            raise OwnershipTypeError(
                "'RT' is an effect marker, not an owner")
        kind = self.owner_kinds.get(owner.name)
        if kind is None:
            raise OwnershipTypeError(f"owner '{owner}' is not in scope")
        return kind

    def knows_owner(self, owner: Owner) -> bool:
        if owner in (HEAP, IMMORTAL, INITIAL_REGION):
            return True
        if owner == THIS:
            return self.this_type is not None
        return owner.name in self.owner_kinds

    def is_region_owner(self, owner: Owner) -> bool:
        """Does ``owner`` denote a region (its kind is ≤ Region)?"""
        try:
            kind = self.kind_of(owner)
        except OwnershipTypeError:
            return False
        return self.program.kind_table.is_subkind(kind, K_REGION)

    def is_object_owner(self, owner: Owner) -> bool:
        """Does ``owner`` certainly denote an object?  ``this`` does;
        formals of kind ObjOwner do.  A formal of kind plain ``Owner``
        *may* denote either, so this returns False for it."""
        if owner == THIS:
            return True
        try:
            kind = self.kind_of(owner)
        except OwnershipTypeError:
            return False
        return kind.name == OBJ_OWNER

    def regions_in_scope(self) -> List[Owner]:
        """``Regions(E)`` — every owner in scope whose kind is a region
        kind, plus the special regions."""
        out = [HEAP, IMMORTAL, INITIAL_REGION]
        for name, kind in self.owner_kinds.items():
            if self.program.kind_table.is_subkind(kind, K_REGION):
                out.append(Owner(name))
        return out

    # ------------------------------------------------------------------
    # the outlives and ownership relations
    # ------------------------------------------------------------------

    @staticmethod
    def _reaches(adjacency: Dict[Owner, List[Owner]],
                 start: Owner, goal: Owner) -> bool:
        seen: Set[Owner] = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for nxt in adjacency.get(current, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def owns(self, owner: Owner, owned: Owner) -> bool:
        """``E ⊢ owner ≽o owned`` — reflexive transitive closure of the
        ownership edges."""
        if owner == owned:
            return True
        caches = self._caches()
        key = (owner, owned)
        memo = caches["owns"]
        hit = memo.get(key)
        if hit is None:
            hit = self._reaches(caches["owns_fwd"], owner, owned)
            memo[key] = hit
        return hit

    def outlives(self, longer: Owner, shorter: Owner) -> bool:
        """``E ⊢ longer ≽ shorter``."""
        if longer == shorter:
            return True
        if longer in (HEAP, IMMORTAL):
            return True
        caches = self._caches()
        key = (longer, shorter)
        memo = caches["outlives"]
        hit = memo.get(key)
        if hit is None:
            hit = self._reaches(caches["reach_fwd"], longer, shorter)
            memo[key] = hit
        return hit

    def entails(self, constraint: Constraint) -> bool:
        if constraint.relation == "owns":
            return self.owns(constraint.left, constraint.right)
        return self.outlives(constraint.left, constraint.right)

    # ------------------------------------------------------------------
    # handle availability:  E ⊢ av RH(o)
    # ------------------------------------------------------------------

    def av_rh(self, owner: Owner) -> bool:
        """Is the handle of the region ``owner`` stands for (or is
        allocated in) available?  Availability propagates in *both*
        directions along ownership edges ([AV TRANS1], [AV TRANS2])
        because an object is allocated in the same region as its owner.
        """
        caches = self._caches()
        memo = caches["av"]
        hit = memo.get(owner)
        if hit is not None:
            return hit
        base = caches.get("av_base")
        if base is None:
            base = {HEAP, IMMORTAL}
            base.update(Owner(h) for h in self.handles)
            # [AV HANDLE]: any in-scope variable of type RHandle(r) makes
            # r's handle available (region-statement handles and method
            # handle parameters alike)
            from .types import HandleType
            for vtype in self.vars.values():
                if isinstance(vtype, HandleType):
                    base.add(vtype.region)
            if self.this_type is not None:
                base.add(THIS)  # [AV THIS] — the runtime can always find
                #                 the region of the current receiver
            caches["av_base"] = base
        result = owner in base
        if not result:
            owns_fwd, owns_rev = caches["owns_fwd"], caches["owns_rev"]
            seen: Set[Owner] = {owner}
            frontier = [owner]
            while frontier and not result:
                current = frontier.pop()
                for adj in (owns_fwd, owns_rev):
                    for nxt in adj.get(current, ()):
                        if nxt in base:
                            result = True
                            break
                        if nxt not in seen:
                            seen.add(nxt)
                            frontier.append(nxt)
                    if result:
                        break
        memo[owner] = result
        return result

    # ------------------------------------------------------------------
    # region-kind inference:  E ⊢ RKind(o) = k
    # ------------------------------------------------------------------

    def rkind_of(self, owner: Owner) -> Optional[Kind]:
        """The kind of the region ``owner`` denotes (if a region) or is
        allocated in (if an object); ``None`` if the environment cannot
        determine it.  Exploits the invariant that a subobject is
        allocated in the same region as its owner."""
        caches = self._caches()
        memo = caches["rkind"]
        if owner in memo:
            return memo[owner]
        owns_rev = caches["owns_rev"]
        result: Optional[Kind] = None
        seen: Set[Owner] = set()
        frontier = [owner]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == THIS:
                # [RKIND THIS]: the region of this = region of its owner.
                if self.this_type is not None:
                    frontier.append(self.this_type.owner)
                continue
            try:
                kind = self.kind_of(current)
            except OwnershipTypeError:
                continue
            if self.program.kind_table.is_subkind(kind, K_REGION):
                result = kind  # [RKIND FN1]
                break
            if kind.name in (OWNER, OBJ_OWNER):
                # [RKIND FN2]: follow ownership upward.
                frontier.extend(owns_rev.get(current, ()))
        memo[owner] = result
        return result

    # ------------------------------------------------------------------
    # effects:  E ⊢ X ≽ X'
    # ------------------------------------------------------------------

    def effect_covers(self, permitted: Effects, accessed: Owner) -> bool:
        """``E ⊢ X ≽ {o}`` — some permitted owner outlives ``o``.  The RT
        marker is only covered by RT itself."""
        if permitted is None:
            return True
        if accessed == RT_EFFECT:
            return RT_EFFECT in permitted
        memo = self._caches()["effect"]
        key = (permitted, accessed)
        hit = memo.get(key)
        if hit is None:
            hit = any(g != RT_EFFECT and self.outlives(g, accessed)
                      for g in permitted)
            memo[key] = hit
        return hit

    def effects_subsume(self, permitted: Effects,
                        accessed: Iterable[Owner]) -> bool:
        return all(self.effect_covers(permitted, o) for o in accessed)
