"""The typing environment ``E`` and its derived judgments.

``E ::= ∅ | E, t v | E, k o | E, o2 ≻o o1 | E, o2 ≽ o1`` — variables with
types, owners with kinds, ownership edges, and outlives edges.  On top of
the stored facts the environment implements the paper's derived judgments:

* ``E ⊢ o1 ≽ o2``      — outlives: reflexivity, transitivity, ≻o ⇒ ≽,
  heap/immortal outlive everything ([≽heap/immortal]), and the fact that
  the first owner from the type of ``this`` owns ``this``.
* ``E ⊢ o1 ≽o o2``     — ownership (reflexive-transitive).
* ``E ⊢ av RH(o)``     — region-handle availability ([AV HANDLE],
  [AV THIS], [AV TRANS1], [AV TRANS2]): handles propagate along ownership
  chains in both directions because an object lives in its owner's region.
* ``E ⊢ RKind(o) = k`` — the kind of the region ``o`` denotes or is
  allocated in ([RKIND THIS], [RKIND FN1], [RKIND FN2]).
* ``E ⊢ X ≽ X'``       — effects subsumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import OwnershipTypeError
from .kinds import (K_GC_REGION, K_IMMORTAL, K_OBJ_OWNER, K_REGION, Kind,
                    OBJ_OWNER, OWNER)
from .owners import (HEAP, IMMORTAL, INITIAL_REGION, Owner, RT_EFFECT, THIS)
from .program import Constraint, ProgramInfo
from .types import ClassType, Type

#: Permitted effects: a set of owners, or ``None`` for the unrestricted
#: ``world`` effect used when checking the program's initial expression
#: ([PROG]: ``P; E; world; heap ⊢ e : t``).
Effects = Optional[FrozenSet[Owner]]


@dataclass(frozen=True)
class Env:
    """Immutable typing environment; extension returns a new Env."""

    program: ProgramInfo
    vars: Dict[str, Type] = field(default_factory=dict)
    owner_kinds: Dict[str, Kind] = field(default_factory=dict)
    this_type: Optional[ClassType] = None
    handles: FrozenSet[str] = frozenset()
    owns_edges: FrozenSet[Tuple[Owner, Owner]] = frozenset()
    outlives_edges: FrozenSet[Tuple[Owner, Owner]] = frozenset()

    # ------------------------------------------------------------------
    # construction / extension
    # ------------------------------------------------------------------

    @staticmethod
    def initial(program: ProgramInfo) -> "Env":
        """The root environment of [PROG]: ``GCRegion heap,
        SharedRegion:LT immortal`` with both handles available."""
        return Env(program, handles=frozenset({"heap", "immortal"}))

    def with_var(self, name: str, vtype: Type) -> "Env":
        new_vars = dict(self.vars)
        new_vars[name] = vtype
        return replace(self, vars=new_vars)

    def with_owner(self, name: str, kind: Kind) -> "Env":
        """[ENV OWNER]; rejects shadowing so owner atoms stay unambiguous."""
        if name in self.owner_kinds or name in ("heap", "immortal",
                                                "initialRegion", "this",
                                                "RT"):
            raise OwnershipTypeError(
                f"owner '{name}' shadows an owner already in scope")
        new_kinds = dict(self.owner_kinds)
        new_kinds[name] = kind
        return replace(self, owner_kinds=new_kinds)

    def with_handle(self, owner: Owner) -> "Env":
        return replace(self, handles=self.handles | {owner.name})

    def with_this(self, this_type: ClassType) -> "Env":
        """Bind ``this``; records that the first owner owns ``this`` and
        that every owner of the type outlives the first ([TYPE C]
        invariant)."""
        env = replace(self, this_type=this_type)
        env = env.with_owns(this_type.owner, THIS)
        for extra in this_type.owners[1:]:
            env = env.with_outlives(extra, this_type.owner)
        return env

    def with_owns(self, owner: Owner, owned: Owner) -> "Env":
        return replace(self, owns_edges=self.owns_edges | {(owner, owned)})

    def with_outlives(self, longer: Owner, shorter: Owner) -> "Env":
        return replace(self,
                       outlives_edges=self.outlives_edges
                       | {(longer, shorter)})

    def with_constraint(self, constraint: Constraint) -> "Env":
        if constraint.relation == "owns":
            return self.with_owns(constraint.left, constraint.right)
        return self.with_outlives(constraint.left, constraint.right)

    def with_constraints(self, constraints: Iterable[Constraint]) -> "Env":
        env = self
        for c in constraints:
            env = env.with_constraint(c)
        return env

    # ------------------------------------------------------------------
    # owner kinds
    # ------------------------------------------------------------------

    def kind_of(self, owner: Owner) -> Kind:
        """``E ⊢k o : k`` ([OWNER THIS], [OWNER FORMAL], specials)."""
        if owner == HEAP:
            return K_GC_REGION
        if owner == IMMORTAL:
            return K_IMMORTAL
        if owner == INITIAL_REGION:
            return K_REGION
        if owner == THIS:
            if self.this_type is None:
                raise OwnershipTypeError("'this' used outside a class")
            return K_OBJ_OWNER
        if owner == RT_EFFECT:
            raise OwnershipTypeError(
                "'RT' is an effect marker, not an owner")
        kind = self.owner_kinds.get(owner.name)
        if kind is None:
            raise OwnershipTypeError(f"owner '{owner}' is not in scope")
        return kind

    def knows_owner(self, owner: Owner) -> bool:
        if owner in (HEAP, IMMORTAL, INITIAL_REGION):
            return True
        if owner == THIS:
            return self.this_type is not None
        return owner.name in self.owner_kinds

    def is_region_owner(self, owner: Owner) -> bool:
        """Does ``owner`` denote a region (its kind is ≤ Region)?"""
        try:
            kind = self.kind_of(owner)
        except OwnershipTypeError:
            return False
        return self.program.kind_table.is_subkind(kind, K_REGION)

    def is_object_owner(self, owner: Owner) -> bool:
        """Does ``owner`` certainly denote an object?  ``this`` does;
        formals of kind ObjOwner do.  A formal of kind plain ``Owner``
        *may* denote either, so this returns False for it."""
        if owner == THIS:
            return True
        try:
            kind = self.kind_of(owner)
        except OwnershipTypeError:
            return False
        return kind.name == OBJ_OWNER

    def regions_in_scope(self) -> List[Owner]:
        """``Regions(E)`` — every owner in scope whose kind is a region
        kind, plus the special regions."""
        out = [HEAP, IMMORTAL, INITIAL_REGION]
        for name, kind in self.owner_kinds.items():
            if self.program.kind_table.is_subkind(kind, K_REGION):
                out.append(Owner(name))
        return out

    # ------------------------------------------------------------------
    # the outlives and ownership relations
    # ------------------------------------------------------------------

    def owns(self, owner: Owner, owned: Owner) -> bool:
        """``E ⊢ owner ≽o owned`` — reflexive transitive closure of the
        ownership edges."""
        if owner == owned:
            return True
        seen: Set[Owner] = {owner}
        frontier = [owner]
        while frontier:
            current = frontier.pop()
            for a, b in self.owns_edges:
                if a == current and b not in seen:
                    if b == owned:
                        return True
                    seen.add(b)
                    frontier.append(b)
        return False

    def outlives(self, longer: Owner, shorter: Owner) -> bool:
        """``E ⊢ longer ≽ shorter``."""
        if longer == shorter:
            return True
        if longer in (HEAP, IMMORTAL):
            return True
        seen: Set[Owner] = {longer}
        frontier = [longer]
        while frontier:
            current = frontier.pop()
            for a, b in self.outlives_edges | self.owns_edges:
                if a == current and b not in seen:
                    if b == shorter:
                        return True
                    seen.add(b)
                    frontier.append(b)
        return False

    def entails(self, constraint: Constraint) -> bool:
        if constraint.relation == "owns":
            return self.owns(constraint.left, constraint.right)
        return self.outlives(constraint.left, constraint.right)

    # ------------------------------------------------------------------
    # handle availability:  E ⊢ av RH(o)
    # ------------------------------------------------------------------

    def av_rh(self, owner: Owner) -> bool:
        """Is the handle of the region ``owner`` stands for (or is
        allocated in) available?  Availability propagates in *both*
        directions along ownership edges ([AV TRANS1], [AV TRANS2])
        because an object is allocated in the same region as its owner.
        """
        base: Set[Owner] = {HEAP, IMMORTAL}
        base.update(Owner(h) for h in self.handles)
        # [AV HANDLE]: any in-scope variable of type RHandle(r) makes r's
        # handle available (region-statement handles and method handle
        # parameters alike)
        from .types import HandleType
        for vtype in self.vars.values():
            if isinstance(vtype, HandleType):
                base.add(vtype.region)
        if self.this_type is not None:
            base.add(THIS)  # [AV THIS] — the runtime can always find the
            #                 region of the current receiver
        if owner in base:
            return True
        seen: Set[Owner] = {owner}
        frontier = [owner]
        while frontier:
            current = frontier.pop()
            for a, b in self.owns_edges:
                for nxt in ((b,) if a == current else
                            (a,) if b == current else ()):
                    if nxt in base:
                        return True
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
        return False

    # ------------------------------------------------------------------
    # region-kind inference:  E ⊢ RKind(o) = k
    # ------------------------------------------------------------------

    def rkind_of(self, owner: Owner) -> Optional[Kind]:
        """The kind of the region ``owner`` denotes (if a region) or is
        allocated in (if an object); ``None`` if the environment cannot
        determine it.  Exploits the invariant that a subobject is
        allocated in the same region as its owner."""
        seen: Set[Owner] = set()
        frontier = [owner]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == THIS:
                # [RKIND THIS]: the region of this = region of its owner.
                if self.this_type is not None:
                    frontier.append(self.this_type.owner)
                continue
            try:
                kind = self.kind_of(current)
            except OwnershipTypeError:
                continue
            if self.program.kind_table.is_subkind(kind, K_REGION):
                return kind  # [RKIND FN1]
            if kind.name in (OWNER, OBJ_OWNER):
                # [RKIND FN2]: follow ownership upward.
                for a, b in self.owns_edges:
                    if b == current:
                        frontier.append(a)
        return None

    # ------------------------------------------------------------------
    # effects:  E ⊢ X ≽ X'
    # ------------------------------------------------------------------

    def effect_covers(self, permitted: Effects, accessed: Owner) -> bool:
        """``E ⊢ X ≽ {o}`` — some permitted owner outlives ``o``.  The RT
        marker is only covered by RT itself."""
        if permitted is None:
            return True
        if accessed == RT_EFFECT:
            return RT_EFFECT in permitted
        return any(g != RT_EFFECT and self.outlives(g, accessed)
                   for g in permitted)

    def effects_subsume(self, permitted: Effects,
                        accessed: Iterable[Owner]) -> bool:
        return all(self.effect_covers(permitted, o) for o in accessed)
