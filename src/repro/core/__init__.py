"""The paper's primary contribution: the ownership/region type system.

Layout:

* :mod:`~repro.core.owners` — semantic owner terms (formals, regions,
  ``this``, ``heap``, ``immortal``, ``initialRegion``, the ``RT`` effect).
* :mod:`~repro.core.kinds` — the owner-kind lattice of Figure 4 with the
  ``:LT`` refinement and user-defined shared region kinds.
* :mod:`~repro.core.types` — semantic types and substitution.
* :mod:`~repro.core.program` — class / region-kind tables with inheritance
  and member lookup ([DECLARED/INHERITED CLASS MEMBER], region members).
* :mod:`~repro.core.env` — the typing environment ``E`` with the ownership
  (``≻o``) and outlives (``≽``) relations, handle availability
  ([AV HANDLE]...) and region-kind inference ([RKIND ...]).
* :mod:`~repro.core.wellformed` — WFClasses, WFRegionKinds, MembersOnce,
  InheritanceOK, OverridesOK (Figure 15).
* :mod:`~repro.core.checker` — the typing judgments of Appendix B.
* :mod:`~repro.core.inference` — Section 2.5 intra-procedural inference
  and defaults.
* :mod:`~repro.core.relations` — extraction of the ownership / outlives
  graphs of Figure 6.
* :mod:`~repro.core.api` — one-call front door (`analyze`).
"""

from .api import AnalyzedProgram, analyze, typecheck_source
from .checker import Checker
from .inference import apply_defaults_and_infer

__all__ = [
    "AnalyzedProgram",
    "analyze",
    "typecheck_source",
    "Checker",
    "apply_defaults_and_infer",
]
