"""Semantic owner terms.

Grammar (Figure 13): ``owner ::= fn | r | this | initialRegion | heap |
immortal | RT``.  Owners are atoms; within one typing scope every owner has
a unique name, so a thin wrapper around the name suffices.  ``RT`` is not a
real owner — it is the marker effect of Section 2.3 and only ever appears
inside ``accesses`` clauses.

Owners are *interned* (hash-consed): ``Owner(n) is Owner(n)`` for equal
names.  Equality and hashing stay structural, so an owner that escapes the
intern table (e.g. through pickling) still compares correctly; interning
only makes construction and dict lookups cheap on the checker's hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, Optional, Tuple


@dataclass(frozen=True, order=True)
class Owner:
    """An owner atom: a formal, a region name, or one of the specials."""

    name: str

    _interned: ClassVar[Dict[str, "Owner"]] = {}

    def __new__(cls, name: Optional[str] = None) -> "Owner":
        # ``name is None`` only happens on the pickle/copy reconstruction
        # path, which must not touch (or pollute) the intern table.
        if name is None:
            return super().__new__(cls)
        cached = cls._interned.get(name)
        if cached is None:
            cached = super().__new__(cls)
            cls._interned[name] = cached
        return cached

    def __hash__(self) -> int:
        # str objects cache their own hash, so this stays cheap; defining
        # it here (rather than letting dataclass generate a tuple hash)
        # skips a tuple allocation per lookup.
        return hash(self.name)

    def __str__(self) -> str:
        return self.name

    @property
    def is_special(self) -> bool:
        return self.name in _SPECIALS


THIS = Owner("this")
HEAP = Owner("heap")
IMMORTAL = Owner("immortal")
INITIAL_REGION = Owner("initialRegion")
RT_EFFECT = Owner("RT")

_SPECIALS = frozenset({"this", "heap", "immortal", "initialRegion", "RT"})

#: A substitution maps owner atoms (typically formals) to owner atoms.
Subst = Dict[Owner, Owner]


def substitute(owner: Owner, subst: Subst) -> Owner:
    return subst.get(owner, owner)


def substitute_all(owners: Iterable[Owner],
                   subst: Subst) -> Tuple[Owner, ...]:
    owners = owners if isinstance(owners, tuple) else tuple(owners)
    if not subst:
        return owners
    result = tuple(subst.get(o, o) for o in owners)
    # Preserve the original tuple object when nothing changed, so callers
    # (and the type interner) can reuse it by identity.
    return owners if result == owners else result


_subst_cache: Dict[Tuple[Tuple[str, ...], Tuple[Owner, ...]], Subst] = {}


def make_subst(formals: Iterable[str],
               actuals: Iterable[Owner]) -> Subst:
    """Build the substitution ``[o1/fn1]..[on/fnn]`` used throughout
    Appendix B.

    Results are memoized and shared: treat the returned dict as
    read-only (copy before mutating, as ``Checker._invoke_parts`` does).
    """
    key = (tuple(formals), tuple(actuals))
    cached = _subst_cache.get(key)
    if cached is None:
        cached = {Owner(fn): actual
                  for fn, actual in zip(key[0], key[1])}
        _subst_cache[key] = cached
    return cached
