"""Semantic owner terms.

Grammar (Figure 13): ``owner ::= fn | r | this | initialRegion | heap |
immortal | RT``.  Owners are atoms; within one typing scope every owner has
a unique name, so a thin wrapper around the name suffices.  ``RT`` is not a
real owner — it is the marker effect of Section 2.3 and only ever appears
inside ``accesses`` clauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


@dataclass(frozen=True, order=True)
class Owner:
    """An owner atom: a formal, a region name, or one of the specials."""

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_special(self) -> bool:
        return self.name in _SPECIALS


THIS = Owner("this")
HEAP = Owner("heap")
IMMORTAL = Owner("immortal")
INITIAL_REGION = Owner("initialRegion")
RT_EFFECT = Owner("RT")

_SPECIALS = frozenset({"this", "heap", "immortal", "initialRegion", "RT"})

#: A substitution maps owner atoms (typically formals) to owner atoms.
Subst = Dict[Owner, Owner]


def substitute(owner: Owner, subst: Subst) -> Owner:
    return subst.get(owner, owner)


def substitute_all(owners: Iterable[Owner],
                   subst: Subst) -> Tuple[Owner, ...]:
    return tuple(substitute(o, subst) for o in owners)


def make_subst(formals: Iterable[str],
               actuals: Iterable[Owner]) -> Subst:
    """Build the substitution ``[o1/fn1]..[on/fnn]`` used throughout
    Appendix B."""
    return {Owner(fn): actual for fn, actual in zip(formals, actuals)}
