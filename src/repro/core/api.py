"""Front door for the static half of the system.

Typical use::

    from repro.core import analyze

    analyzed = analyze(source_text)       # parse → defaults/infer → check
    analyzed.require_well_typed()         # raises on the first type error

``analyze`` returns an :class:`AnalyzedProgram` carrying the (annotated)
AST, the semantic tables, and the list of ownership type errors; the
interpreter in :mod:`repro.interp` consumes it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..errors import OwnershipTypeError
from ..lang import ast, parse_program
from .checker import Checker
from .inference import DefaultPolicy, apply_defaults_and_infer
from .program import ProgramInfo, build_program_info


@dataclass
class AnalyzedProgram:
    """A parsed, default-completed, inferred, and typechecked program."""

    program: ast.Program
    info: ProgramInfo
    errors: List[OwnershipTypeError]

    @property
    def well_typed(self) -> bool:
        return not self.errors

    def require_well_typed(self) -> "AnalyzedProgram":
        if self.errors:
            raise self.errors[0]
        return self

    def error_rules(self) -> List[str]:
        """The judgment names of all failures (for auditing tests)."""
        return [e.rule or "?" for e in self.errors]


def analyze(source: Union[str, ast.Program],
            filename: str = "<input>",
            infer: bool = True,
            defaults: Optional[DefaultPolicy] = None,
            tracer=None) -> AnalyzedProgram:
    """Parse (if needed), apply Section 2.5 defaults/inference, and
    typecheck.  Never raises for *type* errors — inspect ``.errors`` or
    call :meth:`AnalyzedProgram.require_well_typed`; lex/parse errors do
    raise.  ``tracer`` (a :class:`repro.obs.Tracer`) records per-phase
    wall times as ``checker-phase`` events."""
    import time

    def phase(name: str, started: float) -> float:
        now = time.perf_counter()
        if tracer is not None:
            tracer.emit("checker-phase", name, cycle=0,
                        thread="<checker>",
                        attrs={"seconds": now - started})
        return now

    mark = time.perf_counter()
    if isinstance(source, str):
        program = parse_program(source, filename)
        mark = phase("parse", mark)
    else:
        program = source
    try:
        if infer:
            if defaults is not None:
                program = apply_defaults_and_infer(program, defaults)
            else:
                program = apply_defaults_and_infer(program)
            mark = phase("infer", mark)
        info = build_program_info(program)
        phase("tables", mark)
    except OwnershipTypeError as err:
        # structural errors surfaced while building the tables (e.g.
        # redefining a built-in class) are reported like any other
        from .program import ProgramInfo
        from ..core.kinds import KindTable
        empty = ProgramInfo({}, {}, program, KindTable())
        return AnalyzedProgram(program, empty, [err])
    checker = Checker(info)
    checker.tracer = tracer
    errors = checker.check()
    return AnalyzedProgram(program, info, errors)


def typecheck_source(source: str,
                     filename: str = "<input>") -> List[OwnershipTypeError]:
    """Convenience: the type errors of ``source`` (empty = well-typed)."""
    return analyze(source, filename).errors
