"""Front door for the static half of the system.

Typical use::

    from repro.core import analyze

    analyzed = analyze(source_text)       # parse → defaults/infer → check
    analyzed.require_well_typed()         # raises on the first type error

``analyze`` returns an :class:`AnalyzedProgram` carrying the (annotated)
AST, the semantic tables, and the list of ownership type errors; the
interpreter in :mod:`repro.interp` consumes it directly.

Pass ``cache=AnalysisCache(...)`` to make repeated analyses incremental:
unchanged class declarations are neither re-parsed nor re-checked (see
:mod:`repro.core.cache`).  The cached and uncached paths produce
identical errors and identical semantic tables.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..errors import LexError, OwnershipTypeError, ParseError
from ..lang import ast, parse_program
from .cache import (AnalysisCache, deserialize_errors, fingerprints,
                    first_token_span, serialize_errors, split_chunks)
from .checker import Checker
from .inference import (DefaultPolicy, PAPER_DEFAULTS, _MethodInference,
                        apply_signature_defaults)
from .phases import PhaseClock
from .program import ProgramInfo, build_program_info

#: wall-clock buckets for the frontend phase histogram (seconds)
_SECONDS_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


@dataclass
class AnalyzedProgram:
    """A parsed, default-completed, inferred, and typechecked program."""

    program: ast.Program
    info: ProgramInfo
    errors: List[OwnershipTypeError]
    #: wall-clock seconds per frontend phase (parse/tables/infer plus the
    #: checker's wellformed/region-kinds/classes/main-block)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: per-run analysis-cache counters when a cache was used, else None
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def well_typed(self) -> bool:
        return not self.errors

    def require_well_typed(self) -> "AnalyzedProgram":
        if self.errors:
            raise self.errors[0]
        return self

    def error_rules(self) -> List[str]:
        """The judgment names of all failures (for auditing tests)."""
        return [e.rule or "?" for e in self.errors]


def _empty_analysis(program: ast.Program,
                    err: OwnershipTypeError) -> AnalyzedProgram:
    """Structural errors surfaced while building the tables (e.g.
    redefining a built-in class) are reported like any other."""
    from .kinds import KindTable
    empty = ProgramInfo({}, {}, program, KindTable())
    return AnalyzedProgram(program, empty, [err])


def analyze(source: Union[str, ast.Program],
            filename: str = "<input>",
            infer: bool = True,
            defaults: Optional[DefaultPolicy] = None,
            tracer=None,
            cache: Optional[AnalysisCache] = None,
            metrics=None) -> AnalyzedProgram:
    """Parse (if needed), apply Section 2.5 defaults/inference, and
    typecheck.  Never raises for *type* errors — inspect ``.errors`` or
    call :meth:`AnalyzedProgram.require_well_typed`; lex/parse errors do
    raise.  ``tracer`` (a :class:`repro.obs.Tracer`) records per-phase
    wall times as ``checker-phase`` events; ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) receives the ``repro_frontend_*``
    series; ``cache`` (an :class:`repro.core.cache.AnalysisCache`) makes
    repeated analyses incremental."""
    clock = PhaseClock(tracer)
    policy = defaults if defaults is not None else PAPER_DEFAULTS
    result = None
    if cache is not None and infer and isinstance(source, str):
        result = _analyze_cached(source, filename, policy, cache, clock)
        if result is None:
            cache.stats.bump("fallbacks")
            clock.restart()
    if result is None:
        result = _analyze_plain(source, filename, infer, policy, clock)
    result.phase_seconds = clock.seconds
    if metrics is not None:
        _export_frontend_metrics(metrics, clock.seconds, cache)
    return result


def _analyze_plain(source: Union[str, ast.Program], filename: str,
                   infer: bool, policy: DefaultPolicy,
                   clock: PhaseClock) -> AnalyzedProgram:
    """The whole-program path (no cache)."""
    if isinstance(source, str):
        program = parse_program(source, filename)
        clock.lap("parse")
    else:
        program = source
    try:
        if infer:
            apply_signature_defaults(program, policy)
            info = build_program_info(program)
            clock.lap("tables")
            for cls in program.classes:
                for meth in cls.methods:
                    _MethodInference(info, cls, meth, policy).run(
                        meth.body)
            if program.main is not None:
                _MethodInference(info, None, None, policy).run(
                    program.main)
            clock.lap("infer")
        else:
            info = build_program_info(program)
            clock.lap("tables")
    except OwnershipTypeError as err:
        return _empty_analysis(program, err)
    checker = Checker(info)
    errors = checker.check(clock=clock)
    return AnalyzedProgram(program, info, errors)


def _analyze_cached(source: str, filename: str, policy: DefaultPolicy,
                    cache: AnalysisCache,
                    clock: PhaseClock) -> Optional[AnalyzedProgram]:
    """The incremental path; returns None to fall back to the plain
    path (diagnostics then come from the canonical whole-program
    parse)."""
    chunks = split_chunks(source)
    if chunks is None:
        return None
    class_chunks = [c for c in chunks if c.kind == "class"]
    names = [c.name for c in class_chunks]
    if len(set(names)) != len(names):
        return None  # duplicate declarations; let the plain path report
    cache.stats.begin_run()
    policy_key = repr(policy)
    rk_digest = hashlib.sha256(
        (policy_key + "\x00".join(
            c.text for c in chunks if c.kind == "regionKind"))
        .encode("utf-8")).hexdigest()
    shas = {c.name: hashlib.sha256(c.text.encode("utf-8")).hexdigest()
            for c in class_chunks}
    fps = fingerprints(class_chunks, policy_key, rk_digest, shas,
                       cache.text_cache)

    decls: List[ast.ClassDecl] = []
    live: set = set()
    replay: Dict[str, List[OwnershipTypeError]] = {}
    chunk_by_name = {c.name: c for c in class_chunks}
    try:
        for c in class_chunks:
            entry = cache.mem_entry(c.name, shas[c.name], policy_key,
                                    fps[c.name])
            if entry is not None:
                cache.stats.bump("ast_hits")
                cache.stats.bump("replay_hits")
                decls.append(entry.decl)
                replay[c.name] = deserialize_errors(entry.errors, c.line,
                                                    filename)
                continue
            cache.stats.bump("ast_misses")
            sub = parse_program(c.text, filename, c.line, c.col)
            if (len(sub.classes) != 1 or sub.region_kinds
                    or sub.main is not None):
                return None
            decl = sub.classes[0]
            decls.append(decl)
            disk = cache.disk_entry(c.name, shas[c.name], policy_key,
                                    fps[c.name])
            if disk is not None:
                from .cache import apply_annotations
                if apply_annotations(decl, disk["ann"]):
                    cache.stats.bump("replay_hits")
                    replay[c.name] = deserialize_errors(
                        disk["errors"], c.line, filename)
                    continue
            live.add(c.name)

        region_kinds: List[ast.RegionKindDecl] = []
        main_stmts: List[ast.Stmt] = []
        for c in chunks:
            if c.kind == "class":
                continue
            sub = parse_program(c.text, filename, c.line, c.col)
            if c.kind == "regionKind":
                if (len(sub.region_kinds) != 1 or sub.classes
                        or sub.main is not None):
                    return None
                region_kinds.append(sub.region_kinds[0])
            else:
                if sub.classes or sub.region_kinds:
                    return None
                if sub.main is not None:
                    main_stmts.extend(sub.main.stmts)
    except (LexError, ParseError):
        return None

    # the whole-program parser stamps the main block with the span of
    # the program's *first* token; reproduce that so assembled programs
    # compare equal to freshly parsed ones
    main = (ast.Block(main_stmts, first_token_span(chunks, filename))
            if main_stmts else None)
    program = ast.Program(decls, region_kinds, main, filename=filename,
                          source_text=source)
    clock.lap("parse")

    try:
        apply_signature_defaults(program, policy)
        info = build_program_info(program)
        clock.lap("tables")
        for cls in program.classes:
            if cls.name in live:
                for meth in cls.methods:
                    _MethodInference(info, cls, meth, policy).run(
                        meth.body)
        if program.main is not None:
            _MethodInference(info, None, None, policy).run(program.main)
        clock.lap("infer")
    except OwnershipTypeError as err:
        return _empty_analysis(program, err)

    checker = Checker(info)
    per_class: Dict[str, List[OwnershipTypeError]] = {}
    errors = checker.check(clock=clock, replay_errors=replay,
                           per_class_errors=per_class)

    # record what this run learned (per_class is empty when the
    # wellformed phase aborted checking — record nothing then, so the
    # next run re-checks everything live)
    decl_by_name = {d.name: d for d in decls}
    for name in live:
        cache.stats.bump("check_misses")
        errs = per_class.get(name)
        if errs is None:
            continue
        chunk = chunk_by_name[name]
        cache.record(name, shas[name], policy_key, fps[name],
                     decl_by_name[name],
                     serialize_errors(errs, chunk.line))

    result = AnalyzedProgram(program, info, errors)
    result.cache_stats = dict(cache.stats.last)
    return result


def _export_frontend_metrics(metrics, seconds: Dict[str, float],
                             cache: Optional[AnalysisCache]) -> None:
    hist = metrics.histogram(
        "repro_frontend_phase_seconds",
        "wall-clock seconds per frontend phase, labeled by phase",
        buckets=_SECONDS_BUCKETS)
    for phase, secs in seconds.items():
        hist.labels(phase=phase).observe(secs)
    if cache is not None:
        hits = metrics.counter(
            "repro_frontend_analysis_cache_hits_total",
            "class declarations whose analysis was replayed from the "
            "cache, labeled by tier (ast = parse skipped, check = "
            "inference+check skipped)")
        misses = metrics.counter(
            "repro_frontend_analysis_cache_misses_total",
            "class declarations analyzed live, labeled by tier")
        last = cache.stats.last
        hits.labels(tier="ast").inc(last.get("ast_hits", 0))
        hits.labels(tier="check").inc(last.get("replay_hits", 0))
        misses.labels(tier="ast").inc(last.get("ast_misses", 0))
        misses.labels(tier="check").inc(last.get("check_misses", 0))


def typecheck_source(source: str,
                     filename: str = "<input>") -> List[OwnershipTypeError]:
    """Convenience: the type errors of ``source`` (empty = well-typed)."""
    return analyze(source, filename).errors
