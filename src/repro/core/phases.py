"""Wall-clock phase timing shared by :func:`repro.core.api.analyze` and
:class:`repro.core.checker.Checker`.

Both halves of the frontend (parse/infer/tables in ``analyze``,
wellformed/region-kinds/classes/main-block inside the checker) record
their phases through one :class:`PhaseClock`, so every ``checker-phase``
trace event is emitted from a single code path and ``analyze`` can hand
callers one merged ``phase_seconds`` dict.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class PhaseClock:
    """Accumulates named wall-clock phases.

    ``lap(name)`` charges the time since the previous lap (or
    construction/``restart``) to ``name``; repeated laps with the same
    name accumulate.  When a tracer is attached, each lap also emits a
    ``checker-phase`` trace event (the ``repro run --trace-out`` path).
    """

    def __init__(self, tracer=None) -> None:
        self.tracer = tracer
        self.seconds: Dict[str, float] = {}
        self._mark = time.perf_counter()

    def restart(self) -> None:
        """Reset the lap start without charging anybody."""
        self._mark = time.perf_counter()

    def lap(self, name: str, errors: Optional[int] = None) -> float:
        now = time.perf_counter()
        delta = now - self._mark
        self.seconds[name] = self.seconds.get(name, 0.0) + delta
        if self.tracer is not None:
            attrs = {"seconds": delta}
            if errors is not None:
                attrs["errors"] = errors
            self.tracer.emit("checker-phase", name, cycle=0,
                             thread="<checker>", attrs=attrs)
        self._mark = now
        return now
