"""Semantic program tables: classes, region kinds, members, inheritance.

Implements the member-lookup judgments of Appendix B:

* ``P ⊢ mbr ∈ c``        — [DECLARED CLASS MEMBER] / [INHERITED CLASS MEMBER]
* ``P ⊢ rmbr ∈ rkind``   — [DECLARED REGION MEMBER] / [INHERITED REGION MEMBER]

plus the built-in classes (``Object`` and the simulated primitive arrays)
and the syntactic→semantic conversion of owners, kinds, and types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import OwnershipTypeError
from ..lang import ast
from .kinds import (BUILTIN_KINDS, K_OWNER, Kind, KindTable)
from .owners import Owner, Subst, make_subst
from .types import (BOOLEAN, FLOAT, INT, VOID, ClassType, HandleType,
                    PrimType, Type)

# ---------------------------------------------------------------------------
# syntactic → semantic conversion
# ---------------------------------------------------------------------------

_PRIMS: Dict[str, PrimType] = {
    "int": INT, "float": FLOAT, "boolean": BOOLEAN, "void": VOID,
}


def convert_owner(o: ast.OwnerAst) -> Owner:
    return Owner(o.name)


def convert_kind(k: ast.KindAst) -> Kind:
    return Kind(k.name, tuple(convert_owner(a) for a in k.args), k.lt)


def convert_type(t: ast.TypeAst) -> Type:
    if isinstance(t, ast.PrimTypeAst):
        return _PRIMS[t.name]
    if isinstance(t, ast.HandleTypeAst):
        return HandleType(convert_owner(t.region))
    if isinstance(t, ast.ClassTypeAst):
        return ClassType(t.name, tuple(convert_owner(o) for o in t.owners))
    raise TypeError(f"unknown type AST {t!r}")


@dataclass(frozen=True)
class Constraint:
    """Semantic ``where`` constraint."""

    relation: str  # 'owns' | 'outlives'
    left: Owner
    right: Owner

    def substitute(self, subst: Subst) -> "Constraint":
        return Constraint(self.relation,
                          subst.get(self.left, self.left),
                          subst.get(self.right, self.right))

    def __str__(self) -> str:
        return f"{self.left} {self.relation} {self.right}"


def convert_constraint(c: ast.ConstraintAst) -> Constraint:
    return Constraint(c.relation, convert_owner(c.left),
                      convert_owner(c.right))


@dataclass(frozen=True)
class Policy:
    """Region allocation policy (Section 2.3)."""

    kind: str  # 'LT' | 'VT'
    size: int = 0

    def __str__(self) -> str:
        return f"LT({self.size})" if self.kind == "LT" else "VT"


# ---------------------------------------------------------------------------
# members
# ---------------------------------------------------------------------------

@dataclass
class FieldInfo:
    name: str
    type: Type                 # expressed over the declaring class's formals
    static: bool
    declaring_class: str
    decl: Optional[ast.FieldDecl] = None

    def substitute(self, subst: Subst) -> "FieldInfo":
        return FieldInfo(self.name, self.type.substitute(subst),
                         self.static, self.declaring_class, self.decl)


@dataclass
class MethodInfo:
    name: str
    formals: List[Tuple[str, Kind]]        # additional method owner formals
    params: List[Tuple[Type, str]]
    return_type: Type
    #: ``None`` = no ``accesses`` clause (defaults apply before checking).
    effects: Optional[Tuple[Owner, ...]]
    constraints: List[Constraint]
    declaring_class: str
    decl: Optional[ast.MethodDecl] = None
    native: Optional[str] = None           # built-in implementation tag

    def substitute(self, subst: Subst) -> "MethodInfo":
        # Method formals shadow anything of the same name; a well-formed
        # program has no such shadowing (checked by wellformed).
        out = MethodInfo(
            self.name,
            [(fn, k.substitute(subst)) for fn, k in self.formals],
            [(t.substitute(subst), p) for t, p in self.params],
            self.return_type.substitute(subst),
            (tuple(subst.get(o, o) for o in self.effects)
             if self.effects is not None else None),
            [c.substitute(subst) for c in self.constraints],
            self.declaring_class, self.decl, self.native)
        return out


@dataclass
class SubregionInfo:
    """A subregion member of a region kind (``srkind : rpol tt rsub``)."""

    name: str
    kind: Kind          # over the declaring region kind's formals + 'this'
    policy: Policy
    realtime: bool      # RT subregion (real-time threads only)?
    declaring_kind: str
    decl: Optional[ast.SubregionDecl] = None

    def substitute(self, subst: Subst) -> "SubregionInfo":
        return SubregionInfo(self.name, self.kind.substitute(subst),
                             self.policy, self.realtime,
                             self.declaring_kind, self.decl)


# ---------------------------------------------------------------------------
# classes and region kinds
# ---------------------------------------------------------------------------

@dataclass
class ClassInfo:
    name: str
    formals: List[Tuple[str, Kind]]
    superclass: Optional[ClassType]        # over this class's formals
    constraints: List[Constraint]
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    decl: Optional[ast.ClassDecl] = None
    builtin: bool = False
    #: constructor parameter types for built-in classes (``new C<o>(n)``)
    ctor_params: Tuple[Type, ...] = ()

    @property
    def formal_names(self) -> Tuple[str, ...]:
        cached = self.__dict__.get("_formal_names")
        if cached is None:
            cached = tuple(fn for fn, _ in self.formals)
            self.__dict__["_formal_names"] = cached
        return cached

    @property
    def first_formal(self) -> Owner:
        return Owner(self.formals[0][0])


@dataclass
class RegionKindInfo:
    name: str
    formals: List[Tuple[str, Kind]]
    superkind: Kind                        # over this kind's formals
    constraints: List[Constraint]
    portals: Dict[str, FieldInfo] = field(default_factory=dict)
    subregions: Dict[str, SubregionInfo] = field(default_factory=dict)
    decl: Optional[ast.RegionKindDecl] = None

    @property
    def formal_names(self) -> Tuple[str, ...]:
        cached = self.__dict__.get("_formal_names")
        if cached is None:
            cached = tuple(fn for fn, _ in self.formals)
            self.__dict__["_formal_names"] = cached
        return cached


BUILTIN_CLASS_NAMES = ("Object", "IntArray", "FloatArray")

#: sentinel distinguishing "memoized None" from "not yet computed"
_MISSING = object()


def _builtin_classes() -> Dict[str, ClassInfo]:
    """``Object<o>`` plus the simulated primitive arrays.

    Array element reads/writes move scalars, not references, so — like
    Java primitive arrays under the RTSJ — they incur no assignment
    checks; only the allocation itself is region-relevant.
    """
    classes: Dict[str, ClassInfo] = {}
    obj = ClassInfo("Object", [("o", K_OWNER)], None, [], builtin=True)
    classes["Object"] = obj
    for name, elem in (("IntArray", INT), ("FloatArray", FLOAT)):
        cls = ClassInfo(name, [("o", K_OWNER)],
                        ClassType("Object", (Owner("o"),)), [],
                        builtin=True, ctor_params=(INT,))
        cls.methods = {
            "get": MethodInfo("get", [], [(INT, "index")], elem, (),
                              [], name, native=f"{name}.get"),
            "set": MethodInfo("set", [], [(INT, "index"), (elem, "value")],
                              VOID, (), [], name, native=f"{name}.set"),
            "length": MethodInfo("length", [], [], INT, (), [], name,
                                 native=f"{name}.length"),
        }
        classes[name] = cls
    return classes


@dataclass
class InvokeSignature:
    """A method signature renamed for one call shape: receiver type +
    owner actuals + current region ``rcr``.

    Precomputed once per ``(class type, method, actuals, rcr)`` key and
    shared across every call site with that shape, so ``[EXPR INVOKE]``
    stops rebuilding substitutions per call.  ``rename`` is the complete
    substitution (class formals, method formals, and ``initialRegion``)
    and is shared — treat it as read-only.  Renamed components leave
    ``this`` intact; the checker translates ``this`` per receiver.
    The ``*_mentions_this`` flags record whether the *declared* (pre-
    rename) component mentions ``this`` — the property O3 restriction.
    """

    method: MethodInfo
    rename: Subst
    formal_kinds: Tuple[Kind, ...]
    param_types: Tuple[Type, ...]
    param_mentions_this: Tuple[bool, ...]
    return_type: Type
    return_mentions_this: bool
    effects: Tuple[Owner, ...]


@dataclass
class ProgramInfo:
    """Semantic view of a whole program ``P``.

    The tables are immutable once built (``build_program_info`` populates
    everything before returning), so member lookups and call-shape
    renamings are memoized per instance.
    """

    classes: Dict[str, ClassInfo]
    region_kinds: Dict[str, RegionKindInfo]
    ast_program: ast.Program
    kind_table: KindTable
    _member_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)
    _invoke_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)

    # -- class member lookup (with inheritance) -------------------------

    def class_info(self, name: str, span=None) -> ClassInfo:
        info = self.classes.get(name)
        if info is None:
            raise OwnershipTypeError(f"unknown class '{name}'", span)
        return info

    def superclass_of(self, ctype: ClassType) -> Optional[ClassType]:
        """[SUBTYPE CLASS]: the direct superclass with owners
        substituted."""
        key = ("super", ctype)
        hit = self._member_cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        info = self.class_info(ctype.name)
        if info.superclass is None:
            result = None
        else:
            subst = make_subst(info.formal_names, ctype.owners)
            result = info.superclass.substitute(subst)
        self._member_cache[key] = result
        return result

    def lookup_field(self, class_name: str,
                     field_name: str) -> Optional[FieldInfo]:
        """``P ⊢ (t fd) ∈ cn<fn1..n>`` over *class_name*'s own formals."""
        key = ("field", class_name, field_name)
        hit = self._member_cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        result = self._lookup_member(class_name, field_name,
                                     lambda info: info.fields)
        self._member_cache[key] = result
        return result

    def lookup_method(self, class_name: str,
                      method_name: str) -> Optional[MethodInfo]:
        key = ("method", class_name, method_name)
        hit = self._member_cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        result = self._lookup_member(class_name, method_name,
                                     lambda info: info.methods)
        self._member_cache[key] = result
        return result

    def _lookup_member(self, class_name: str, member_name: str, table):
        info = self.classes.get(class_name)
        subst: Subst = {}
        while info is not None:
            members = table(info)
            if member_name in members:
                found = members[member_name]
                return found.substitute(subst) if subst else found
            if info.superclass is None:
                return None
            # Compose: superclass owners are over info's formals; rewrite
            # them through the substitution accumulated so far.
            sup = info.superclass.substitute(subst)
            sup_info = self.classes.get(sup.name)
            if sup_info is None:
                return None
            subst = make_subst(sup_info.formal_names, sup.owners)
            info = sup_info
        return None

    def invoke_signature(self, ctype: ClassType, method_name: str,
                         actuals: Tuple[Owner, ...],
                         rcr: Owner) -> Optional[InvokeSignature]:
        """The renamed signature of ``ctype.method_name<actuals>`` checked
        under current region ``rcr``; ``None`` if the method does not
        exist or the owner-argument count is wrong."""
        key = (ctype, method_name, actuals, rcr)
        hit = self._invoke_cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        result = self._build_invoke_signature(ctype, method_name,
                                              actuals, rcr)
        self._invoke_cache[key] = result
        return result

    def _build_invoke_signature(self, ctype, method_name, actuals, rcr):
        from .owners import INITIAL_REGION, THIS
        mi = self.lookup_method(ctype.name, method_name)
        if mi is None or len(actuals) != len(mi.formals):
            return None
        rename = dict(make_subst(
            self.class_info(ctype.name).formal_names, ctype.owners))
        for (fn, _), actual in zip(mi.formals, actuals):
            rename[Owner(fn)] = actual
        rename[INITIAL_REGION] = rcr
        return InvokeSignature(
            method=mi,
            rename=rename,
            formal_kinds=tuple(k.substitute(rename)
                               for _, k in mi.formals),
            param_types=tuple(t.substitute(rename)
                              for t, _ in mi.params),
            param_mentions_this=tuple(t.mentions(THIS)
                                      for t, _ in mi.params),
            return_type=mi.return_type.substitute(rename),
            return_mentions_this=mi.return_type.mentions(THIS),
            effects=(tuple(rename.get(o, o) for o in mi.effects)
                     if mi.effects is not None else ()))

    # -- region-kind member lookup ---------------------------------------

    def region_kind_info(self, name: str, span=None) -> RegionKindInfo:
        info = self.region_kinds.get(name)
        if info is None:
            raise OwnershipTypeError(f"unknown region kind '{name}'", span)
        return info

    def lookup_portal(self, kind: Kind,
                      field_name: str) -> Optional[FieldInfo]:
        """Portal field lookup through the region-kind hierarchy; the
        result is expressed over *kind*'s owner arguments and ``this``."""
        current: Optional[Kind] = kind
        while current is not None and current.name in self.region_kinds:
            info = self.region_kinds[current.name]
            subst = make_subst(info.formal_names, current.args)
            if field_name in info.portals:
                return info.portals[field_name].substitute(subst)
            current = info.superkind.substitute(subst)
        return None

    def lookup_subregion(self, kind: Kind,
                         sub_name: str) -> Optional[SubregionInfo]:
        current: Optional[Kind] = kind
        while current is not None and current.name in self.region_kinds:
            info = self.region_kinds[current.name]
            subst = make_subst(info.formal_names, current.args)
            if sub_name in info.subregions:
                return info.subregions[sub_name].substitute(subst)
            current = info.superkind.substitute(subst)
        return None

    def all_subregions(self, kind: Kind) -> Dict[str, SubregionInfo]:
        """All (inherited) subregion members of ``kind``."""
        out: Dict[str, SubregionInfo] = {}
        current: Optional[Kind] = kind
        while current is not None and current.name in self.region_kinds:
            info = self.region_kinds[current.name]
            subst = make_subst(info.formal_names, current.args)
            for name, sub in info.subregions.items():
                out.setdefault(name, sub.substitute(subst))
            current = info.superkind.substitute(subst)
        return out

    def all_portals(self, kind: Kind) -> Dict[str, FieldInfo]:
        out: Dict[str, FieldInfo] = {}
        current: Optional[Kind] = kind
        while current is not None and current.name in self.region_kinds:
            info = self.region_kinds[current.name]
            subst = make_subst(info.formal_names, current.args)
            for name, portal in info.portals.items():
                out.setdefault(name, portal.substitute(subst))
            current = info.superkind.substitute(subst)
        return out


# ---------------------------------------------------------------------------
# construction from the AST
# ---------------------------------------------------------------------------

def _convert_field(decl: ast.FieldDecl, declaring: str) -> FieldInfo:
    return FieldInfo(decl.name, convert_type(decl.declared_type),
                     decl.static, declaring, decl)


def _convert_method(decl: ast.MethodDecl, declaring: str) -> MethodInfo:
    return MethodInfo(
        decl.name,
        [(f.name, convert_kind(f.kind)) for f in decl.formals],
        [(convert_type(t), p) for t, p in decl.params],
        convert_type(decl.return_type),
        (tuple(convert_owner(o) for o in decl.effects)
         if decl.effects is not None else None),
        [convert_constraint(c) for c in decl.constraints],
        declaring, decl)


def _convert_policy(p: ast.PolicyAst) -> Policy:
    return Policy(p.kind, p.size)


def build_program_info(program: ast.Program) -> ProgramInfo:
    """Build the semantic tables.  Purely structural — well-formedness is
    checked separately by :mod:`repro.core.wellformed`."""
    classes = _builtin_classes()
    region_kinds: Dict[str, RegionKindInfo] = {}

    region_kind_names = {rk.name for rk in program.region_kinds}

    for rk in program.region_kinds:
        info = RegionKindInfo(
            rk.name,
            [(f.name, convert_kind(f.kind)) for f in rk.formals],
            convert_kind(rk.superkind),
            [convert_constraint(c) for c in rk.constraints],
            decl=rk)
        for portal in rk.portals:
            # The parser cannot distinguish `SubKind b;` (a subregion with
            # default VT/NoRT) from a portal field whose type names a
            # class; reclassify here now that kind names are known.
            ptype = portal.declared_type
            if (isinstance(ptype, ast.ClassTypeAst)
                    and ptype.name in region_kind_names):
                kind = Kind(ptype.name,
                            tuple(convert_owner(o) for o in ptype.owners))
                info.subregions[portal.name] = SubregionInfo(
                    portal.name, kind, Policy("VT"), False, rk.name,
                    None)
            else:
                info.portals[portal.name] = _convert_field(portal, rk.name)
        for sub in rk.subregions:
            info.subregions[sub.name] = SubregionInfo(
                sub.name, convert_kind(sub.kind),
                _convert_policy(sub.policy), sub.realtime, rk.name, sub)
        region_kinds[rk.name] = info

    for cls in program.classes:
        if cls.name in classes:
            what = ("a built-in class"
                    if cls.name in BUILTIN_CLASS_NAMES
                    else "an existing class — defined twice")
            raise OwnershipTypeError(
                f"class '{cls.name}' redefines {what}", cls.span)
        superclass = None
        if cls.superclass is not None:
            converted = convert_type(cls.superclass)
            assert isinstance(converted, ClassType)
            superclass = converted
        info = ClassInfo(
            cls.name,
            [(f.name, convert_kind(f.kind)) for f in cls.formals],
            superclass,
            [convert_constraint(c) for c in cls.constraints],
            decl=cls)
        for fld in cls.fields:
            info.fields[fld.name] = _convert_field(fld, cls.name)
        for meth in cls.methods:
            info.methods[meth.name] = _convert_method(meth, cls.name)
        classes[cls.name] = info

    kind_table = KindTable()
    for name, info in region_kinds.items():
        kind_table.supers[name] = (info.formal_names, info.superkind)

    return ProgramInfo(classes, region_kinds, program, kind_table)
