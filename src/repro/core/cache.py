"""Content-addressed, incremental analysis cache for the frontend.

``analyze(source, cache=AnalysisCache(...))`` re-checks only the class
declarations whose *fingerprint* changed since the last run and replays
the recorded diagnostics (and inferred owner annotations) for the rest.
The fingerprint of a class covers everything its parse/inference/check
can observe:

* the SHA-256 of its own source slice (``chunk``);
* the :class:`~repro.core.inference.DefaultPolicy` in effect;
* a digest over every ``regionKind`` declaration in the program (the
  kind table is global);
* the *signature digests* of the transitive closure of classes it
  textually references — a signature digest hashes the class text with
  method bodies stripped, so editing a method body invalidates only the
  edited class, while editing a signature invalidates its dependents;
* every identifier in the closure's chunks that does **not** currently
  name a class ("absent markers"), so introducing a new class with a
  previously-unbound name invalidates conservatively.

The closure argument: a class's check consults only (a) its own text,
(b) the signatures of classes named in its own text, and (c) recursively
the signatures of classes named in *those* signatures.  Every class name
occurring in a signature occurs in the declaring class's chunk text, so
the transitive closure over full-chunk identifier sets (which contain
the signature identifiers) reaches every declaration the check can
touch.  Whole-program phases that the cache cannot scope — wellformed
checks, region kinds, and the main block — always run live; they are a
fraction of a percent of frontend time.

Two tiers:

* **in-memory** — keeps the annotated (post-inference) ``ClassDecl``
  object, so a hit skips lexing *and* parsing of that chunk;
* **disk (JSON)** — survives processes; a hit re-parses the pristine
  chunk but replays the inferred owner annotations and the recorded
  diagnostics, skipping inference and checking.

Stale entries can never leak: an in-memory AST whose fingerprint no
longer matches is discarded and the chunk is re-parsed pristine
(inference only fills *empty* owner slots, so re-using a stale annotated
AST would silently pin old owners — re-parsing makes that impossible).

If the source cannot be split into chunks (unbalanced braces, duplicate
class names, a parse error inside a chunk), the caller falls back to the
plain whole-program path so diagnostics are bit-identical with the
uncached frontend.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..errors import OwnershipTypeError
from ..lang import ast
from ..source import Position, Span

SCHEMA = "repro-analysis-cache/1"

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: top-level declaration keywords recognised by the chunk splitter
_DECL_KEYWORDS = ("class", "regionKind")


# ---------------------------------------------------------------------------
# chunk splitting
# ---------------------------------------------------------------------------

class Chunk(NamedTuple):
    """One top-level slice of the source: a ``class`` declaration, a
    ``regionKind`` declaration, or a run of main-block statements."""

    kind: str            # "class" | "regionKind" | "main"
    name: Optional[str]  # declared name (None for main segments)
    text: str
    line: int            # 1-based line of the first character
    col: int             # 1-based column of the first character


#: everything the splitter must not scan past blindly: comments (an
#: unterminated ``/*`` matches the bare-``/*`` alternative and aborts
#: the split), braces, and the two declaration keywords
_SCAN_RE = re.compile(
    r"//[^\n]*|/\*.*?\*/|/\*|[{}]|\b(?:class|regionKind)\b", re.S)

#: the declared name following a ``class``/``regionKind`` keyword,
#: allowing interleaved comments
_NAME_RE = re.compile(
    r"(?:\s|//[^\n]*|/\*.*?\*/)*([A-Za-z_][A-Za-z0-9_]*)", re.S)


def split_chunks(source: str) -> Optional[List[Chunk]]:
    """Split ``source`` into top-level chunks, or ``None`` when the text
    cannot be segmented safely (unbalanced braces, unterminated comment,
    declaration without a body).  The language has no string literals,
    so only comments need skipping."""
    depth = 0
    seg_start = 0
    decl: Optional[Tuple[str, int]] = None  # keyword, start offset
    decl_name: Optional[str] = None
    saw_brace = False
    raw: List[Tuple[str, Optional[str], int, int]] = []
    for match in _SCAN_RE.finditer(source):
        token = match.group()
        head = token[0]
        if head == "/":
            if token == "/*":
                return None  # unterminated; the lexer owns this error
            continue
        if head == "{":
            depth += 1
            saw_brace = True
            continue
        if head == "}":
            depth -= 1
            if depth < 0:
                return None
            if depth == 0 and decl is not None and saw_brace:
                if decl_name is None:
                    return None
                raw.append((decl[0], decl_name, decl[1], match.end()))
                decl = None
                seg_start = match.end()
            continue
        # a declaration keyword
        if depth == 0 and decl is None:
            if source[seg_start:match.start()].strip():
                raw.append(("main", None, seg_start, match.start()))
            decl = (token, match.start())
            saw_brace = False
            name = _NAME_RE.match(source, match.end())
            decl_name = name.group(1) if name else None
    if decl is not None or depth != 0:
        return None
    if source[seg_start:].strip():
        raw.append(("main", None, seg_start, len(source)))
    # one incremental pass turns the byte offsets into line/column
    chunks: List[Chunk] = []
    line, pos = 1, 0
    for kind, name, start, end in raw:
        line += source.count("\n", pos, start)
        col = start - source.rfind("\n", 0, start)
        pos = start
        chunks.append(Chunk(kind, name, source[start:end], line, col))
    return chunks


def first_token_span(chunks: Sequence[Chunk], filename: str
                     ) -> Optional[Span]:
    """The span of the program's first token — what the whole-program
    parser assigns to the main block (it snapshots the first token's
    span before reading any declarations), reproduced here so assembled
    programs compare equal to freshly parsed ones."""
    from ..lang.lexer import tokenize
    from ..lang.tokens import TokenKind
    for c in chunks:
        if c.kind == "class":
            return Span(Position(c.line, c.col),
                        Position(c.line, c.col + 5), filename)
        if c.kind == "regionKind":
            return Span(Position(c.line, c.col),
                        Position(c.line, c.col + 10), filename)
        tokens = tokenize(c.text, filename, c.line, c.col)
        if tokens[0].kind is not TokenKind.EOF:
            return tokens[0].span
    return None


def signature_text(chunk_text: str) -> str:
    """The class chunk with method bodies (and all comments/whitespace
    runs) stripped: the textual interface other classes can observe.
    Tokens at brace depth >= 2 belong to method bodies and are dropped;
    depth 0 (the ``class ... {`` header) and depth 1 (fields, method
    headers, ``where`` clauses) are kept, joined by single spaces."""
    units: List[str] = []
    i, n = 0, len(chunk_text)
    depth = 0
    while i < n:
        ch = chunk_text[i]
        if ch == "/" and chunk_text.startswith("//", i):
            j = chunk_text.find("\n", i)
            i = n if j < 0 else j
            continue
        if ch == "/" and chunk_text.startswith("/*", i):
            j = chunk_text.find("*/", i + 2)
            i = n if j < 0 else j + 2
            continue
        if ch == "{":
            if depth < 2:
                units.append("{")
            depth += 1
            i += 1
            continue
        if ch == "}":
            depth -= 1
            if depth < 2:
                units.append("}")
            i += 1
            continue
        if ch.isalnum() or ch == "_":
            j = i + 1
            while j < n and (chunk_text[j].isalnum()
                             or chunk_text[j] == "_"):
                j += 1
            if depth < 2:
                units.append(chunk_text[i:j])
            i = j
            continue
        if depth < 2 and not ch.isspace():
            units.append(ch)
        i += 1
    return " ".join(units)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _entries_digest(entries: Dict[str, dict]) -> str:
    """Content digest of a shard's entry table, stable across a JSON
    round-trip (canonical key order and separators) — what
    :meth:`AnalysisCache.load` verifies before trusting disk bytes."""
    return _sha(json.dumps(entries, sort_keys=True,
                           separators=(",", ":")))


def fingerprints(class_chunks: Sequence[Chunk], policy_key: str,
                 rk_digest: str, shas: Dict[str, str],
                 text_cache: Optional[Dict[str, Tuple[str, frozenset]]]
                 = None) -> Dict[str, str]:
    """Per-class content fingerprints (see the module docstring).

    ``shas`` maps class name -> chunk SHA.  ``text_cache`` (chunk SHA ->
    ``(signature digest, identifier set)``) lets warm runs skip the
    signature/identifier scans for unchanged chunks — the scans are pure
    functions of the chunk text."""
    sigs: Dict[str, str] = {}
    words: Dict[str, frozenset] = {}
    for c in class_chunks:
        sha = shas[c.name]
        cached = None if text_cache is None else text_cache.get(sha)
        if cached is None:
            cached = (_sha(signature_text(c.text)),
                      frozenset(_WORD_RE.findall(c.text)))
            if text_cache is not None:
                text_cache[sha] = cached
        sigs[c.name], words[c.name] = cached
    class_names = set(shas)
    closure_digests: Dict[frozenset, Tuple[str, str]] = {}
    result: Dict[str, str] = {}
    for c in class_chunks:
        closure = {c.name}
        frontier = [c.name]
        while frontier:
            nxt: List[str] = []
            for name in frontier:
                for w in words[name]:
                    if w in class_names and w not in closure:
                        closure.add(w)
                        nxt.append(w)
            frontier = nxt
        key = frozenset(closure)
        digests = closure_digests.get(key)
        if digests is None:
            # classes sharing a closure (the common case in connected
            # programs) share the expensive part of the payload
            absent: Set[str] = set()
            for name in closure:
                absent |= words[name]
            absent -= class_names
            digests = (
                _sha(json.dumps([[d, sigs[d]] for d in sorted(closure)],
                                separators=(",", ":"))),
                _sha(" ".join(sorted(absent))))
            closure_digests[key] = digests
        payload = json.dumps(
            [SCHEMA, policy_key, rk_digest, shas[c.name],
             digests[0], digests[1]],
            separators=(",", ":"))
        result[c.name] = _sha(payload)
    return result


# ---------------------------------------------------------------------------
# diagnostics: record / replay
# ---------------------------------------------------------------------------

def serialize_errors(errors: Sequence[OwnershipTypeError],
                     chunk_line: int) -> Optional[List[dict]]:
    """Class-relative records for ``errors``, or ``None`` when any error
    is not replayable (a subclass the cache does not understand)."""
    records: List[dict] = []
    for err in errors:
        if type(err) is not OwnershipTypeError:
            return None
        prefix = f"[{err.rule}] " if err.rule else ""
        message = err.message[len(prefix):]
        span = err.span
        if span is None:
            where = None
        elif span.filename == "<unknown>":
            where = "u"
        else:
            where = [span.start.line - chunk_line, span.start.column,
                     span.end.line - chunk_line, span.end.column]
        records.append({"m": message, "r": err.rule, "s": where})
    return records


def deserialize_errors(records: Sequence[dict], chunk_line: int,
                       filename: str) -> List[OwnershipTypeError]:
    out: List[OwnershipTypeError] = []
    for rec in records:
        where = rec["s"]
        if where is None:
            span = None
        elif where == "u":
            span = Span.unknown()
        else:
            sl, sc, el, ec = where
            span = Span(Position(sl + chunk_line, sc),
                        Position(el + chunk_line, ec), filename)
        out.append(OwnershipTypeError(rec["m"], span, rule=rec["r"]))
    return out


# ---------------------------------------------------------------------------
# inferred-annotation record / replay (disk tier)
# ---------------------------------------------------------------------------

def _walk_slots(decl: ast.ClassDecl):
    """Deterministic pre-order over the owner slots Section 2.5
    inference can fill: ``LocalDecl.declared_type`` owners (class types
    only), ``NewExpr.owners``, and ``Invoke.owner_args``.  The walk only
    depends on the chunk text, so it enumerates identical node sequences
    for the pristine and the annotated parse of the same chunk."""

    def expr(e):
        if isinstance(e, ast.NewExpr):
            yield ("new", e)
            for a in e.args:
                yield from expr(a)
        elif isinstance(e, ast.Invoke):
            yield ("invoke", e)
            yield from expr(e.target)
            for a in e.args:
                yield from expr(a)
        elif isinstance(e, ast.FieldRead):
            yield from expr(e.target)
        elif isinstance(e, ast.Binary):
            yield from expr(e.left)
            yield from expr(e.right)
        elif isinstance(e, ast.Unary):
            yield from expr(e.operand)
        elif isinstance(e, ast.BuiltinCall):
            for a in e.args:
                yield from expr(a)

    def stmt(s):
        if isinstance(s, ast.Block):
            for inner in s.stmts:
                yield from stmt(inner)
        elif isinstance(s, ast.LocalDecl):
            if isinstance(s.declared_type, ast.ClassTypeAst):
                yield ("local", s)
            if s.init is not None:
                yield from expr(s.init)
        elif isinstance(s, (ast.AssignLocal, ast.AssignField)):
            if isinstance(s, ast.AssignField):
                yield from expr(s.target)
            yield from expr(s.value)
        elif isinstance(s, ast.ExprStmt):
            yield from expr(s.expr)
        elif isinstance(s, ast.If):
            yield from expr(s.cond)
            yield from stmt(s.then_body)
            if s.else_body is not None:
                yield from stmt(s.else_body)
        elif isinstance(s, ast.While):
            yield from expr(s.cond)
            yield from stmt(s.body)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                yield from expr(s.value)
        elif isinstance(s, ast.Fork):
            yield from expr(s.call)
        elif isinstance(s, ast.RegionStmt):
            yield from stmt(s.body)
        elif isinstance(s, ast.SubregionStmt):
            yield from expr(s.parent_handle)
            yield from stmt(s.body)

    for meth in decl.methods:
        yield from stmt(meth.body)


def collect_annotations(decl: ast.ClassDecl) -> List[List[str]]:
    """Owner names of every inference-fillable slot, in walk order."""
    out: List[List[str]] = []
    for kind, node in _walk_slots(decl):
        if kind == "local":
            out.append([o.name for o in node.declared_type.owners])
        elif kind == "new":
            out.append([o.name for o in node.owners])
        else:
            out.append([o.name for o in node.owner_args])
    return out


def apply_annotations(decl: ast.ClassDecl,
                      annotations: Sequence[Sequence[str]]) -> bool:
    """Replay recorded owners onto a pristine parse of the same chunk.
    Slots whose parsed owners already match are left untouched (so
    explicit annotations keep their parser spans); filled slots
    reproduce the spans :meth:`_MethodInference._rewrite` would assign.
    Returns False on any structural mismatch (caller re-infers live)."""
    slots = list(_walk_slots(decl))
    if len(slots) != len(annotations):
        return False
    for (kind, node), names in zip(slots, annotations):
        if kind == "local":
            old = node.declared_type
            if [o.name for o in old.owners] == list(names):
                continue
            owners = tuple(ast.OwnerAst(nm, node.span) for nm in names)
            node.declared_type = ast.ClassTypeAst(old.name, owners,
                                                  old.span)
        elif kind == "new":
            if [o.name for o in node.owners] == list(names):
                continue
            node.owners = tuple(ast.OwnerAst(nm, node.span)
                                for nm in names)
        else:
            if [o.name for o in node.owner_args] == list(names):
                continue
            node.owner_args = tuple(ast.OwnerAst(nm, node.span)
                                    for nm in names)
    return True


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------

def shard_path(root: str, fingerprint: str) -> str:
    """Content-addressed location of a cache shard under ``root``.

    Shards fan out over a two-hex-digit directory (256-way) so a shared
    cache tree scales to many programs without giant directories:
    ``root/ab/abcdef….json``.  Multi-process serving hangs one
    :class:`AnalysisCache` per program fingerprint off this layout — a
    program analyzed by one worker is a warm disk hit on every other.
    """
    fingerprint = fingerprint.lower()
    return os.path.join(root, fingerprint[:2], f"{fingerprint}.json")

@dataclass
class CacheStats:
    """Cumulative counters plus the per-run deltas of the last
    ``analyze`` call (``last``), which the metrics exporter consumes."""

    runs: int = 0
    fallbacks: int = 0
    ast_hits: int = 0
    ast_misses: int = 0
    replay_hits: int = 0
    check_misses: int = 0
    quarantines: int = 0
    last: Dict[str, int] = field(default_factory=dict)

    def begin_run(self) -> None:
        self.runs += 1
        self.last = {"ast_hits": 0, "ast_misses": 0,
                     "replay_hits": 0, "check_misses": 0}

    def bump(self, key: str) -> None:
        setattr(self, key, getattr(self, key) + 1)
        if key in self.last:
            self.last[key] += 1

    def as_dict(self) -> Dict[str, int]:
        return {"runs": self.runs, "fallbacks": self.fallbacks,
                "ast_hits": self.ast_hits, "ast_misses": self.ast_misses,
                "replay_hits": self.replay_hits,
                "check_misses": self.check_misses,
                "quarantines": self.quarantines}


@dataclass
class _MemEntry:
    chunk_sha: str
    policy_key: str
    fingerprint: str
    decl: ast.ClassDecl                 # annotated (post-inference)
    errors: Optional[List[dict]]        # class-relative records
    annotations: List[List[str]]


class AnalysisCache:
    """Two-tier (memory + optional JSON file) analysis cache.

    Pass the same instance to successive :func:`repro.core.api.analyze`
    calls for in-process incrementality; give it a ``path`` and call
    :meth:`save` to persist the disk tier between processes (the CLI's
    ``--analysis-cache DIR`` does both).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.mem: Dict[str, _MemEntry] = {}
        self.disk: Dict[str, dict] = {}
        #: chunk SHA -> (signature digest, identifier set); memoizes the
        #: pure text scans behind :func:`fingerprints`
        self.text_cache: Dict[str, Tuple[str, frozenset]] = {}
        self.stats = CacheStats()
        if path:
            self.load()

    # -- persistence ----------------------------------------------------

    def load(self) -> None:
        if not self.path or not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return  # unreadable: start cold
        try:
            payload = json.loads(raw)
        except ValueError:
            # truncated or garbage JSON — a torn shard.  Move it aside
            # (quarantine) so the evidence survives and the next writer
            # doesn't fight a poisoned path, then start cold: the
            # caller recomputes, it never raises and never trusts.
            self._quarantine()
            return
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            return
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            self._quarantine()
            return
        digest = payload.get("digest")
        if digest is not None and digest != _entries_digest(entries):
            # well-formed JSON whose content digest doesn't match: a
            # corrupted-in-place shard (bit rot, partial overwrite) —
            # same treatment as a torn one
            self._quarantine()
            return
        self.disk = entries

    def _quarantine(self) -> None:
        """Move a corrupt shard to ``<shard>.corrupt-<pid>`` so the
        bytes survive for diagnosis while the path heals."""
        self.stats.bump("quarantines")
        if not self.path:
            return
        try:
            os.replace(self.path, f"{self.path}.corrupt-{os.getpid()}")
        except OSError:
            pass  # a racing quarantine already moved it

    def save(self) -> None:
        """Persist the disk tier atomically.

        The payload lands in a private temp file first and is moved into
        place with :func:`os.replace`, so a concurrent reader sees either
        the old complete file or the new complete file, never a torn
        write.  Concurrent writers of the same path race benignly: every
        entry is keyed by content fingerprint, so whichever rename lands
        last wins with a payload that is correct for its fingerprints
        (last-write-wins is safe by construction).
        """
        if not self.path:
            return
        merged = dict(self.disk)
        for name, entry in self.mem.items():
            merged[name] = {"sha": entry.chunk_sha,
                            "policy": entry.policy_key,
                            "fp": entry.fingerprint,
                            "errors": entry.errors,
                            "ann": entry.annotations}
        payload = {"schema": SCHEMA,
                   "digest": _entries_digest(merged),
                   "entries": merged}
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    # -- lookups --------------------------------------------------------

    def mem_entry(self, name: str, chunk_sha: str, policy_key: str,
                  fingerprint: str) -> Optional[_MemEntry]:
        entry = self.mem.get(name)
        if (entry is not None and entry.chunk_sha == chunk_sha
                and entry.policy_key == policy_key
                and entry.fingerprint == fingerprint
                and entry.errors is not None):
            return entry
        return None

    def disk_entry(self, name: str, chunk_sha: str, policy_key: str,
                   fingerprint: str) -> Optional[dict]:
        entry = self.disk.get(name)
        if (isinstance(entry, dict) and entry.get("sha") == chunk_sha
                and entry.get("policy") == policy_key
                and entry.get("fp") == fingerprint
                and entry.get("errors") is not None
                and isinstance(entry.get("ann"), list)):
            return entry
        return None

    def record(self, name: str, chunk_sha: str, policy_key: str,
               fingerprint: str, decl: ast.ClassDecl,
               errors: Optional[List[dict]]) -> None:
        self.mem[name] = _MemEntry(chunk_sha, policy_key, fingerprint,
                                   decl, errors,
                                   collect_annotations(decl))
