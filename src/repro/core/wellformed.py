"""Structural well-formedness predicates of Figure 15.

* ``WFClasses(P)``      — no duplicate classes, acyclic class hierarchy.
* ``WFRegionKinds(P)``  — no duplicate region kinds, acyclic kind
  hierarchy, and a *finite* number of transitive subregions (the paper:
  "Our system checks that a region has a finite number of transitive
  subregions", needed so LT preallocation terminates).
* ``MembersOnce(P)``    — no duplicate fields (declared or inherited), no
  duplicate method declarations within a class.
* ``InheritanceOK(P)``  — subclass/subkind constraints include the
  (substituted) superclass/superkind constraints; method overrides are
  compatible ([OVERRIDESOK METHOD]).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import OwnershipTypeError
from .kinds import BUILTIN_KINDS, K_SHARED_REGION, Kind
from .owners import INITIAL_REGION, Owner, make_subst
from .program import (ClassInfo, Constraint, MethodInfo, ProgramInfo,
                      RegionKindInfo)
from .types import ClassType


def check_wellformed(program: ProgramInfo) -> None:
    """Run every predicate; raises :class:`OwnershipTypeError` on the
    first violation."""
    _wf_classes(program)
    _wf_region_kinds(program)
    _members_once(program)
    _inheritance_ok(program)


# ---------------------------------------------------------------------------
# WFClasses
# ---------------------------------------------------------------------------

def _wf_classes(program: ProgramInfo) -> None:
    declared: Set[str] = set()
    for cls in program.ast_program.classes:
        if cls.name in declared:
            raise OwnershipTypeError(
                f"class '{cls.name}' is defined twice", cls.span)
        declared.add(cls.name)

    for name, info in program.classes.items():
        if not info.formals:
            raise OwnershipTypeError(
                f"class '{name}' must declare at least one owner formal "
                "(the first formal owns the object)",
                info.decl.span if info.decl else None)
        formal_names = [fn for fn, _ in info.formals]
        if len(set(formal_names)) != len(formal_names):
            raise OwnershipTypeError(
                f"class '{name}' has duplicate owner formals",
                info.decl.span if info.decl else None)
        # hierarchy must be acyclic and rooted in Object
        seen = {name}
        current = info
        while current.superclass is not None:
            sup_name = current.superclass.name
            if sup_name in seen:
                raise OwnershipTypeError(
                    f"cycle in the class hierarchy involving '{sup_name}'",
                    info.decl.span if info.decl else None)
            seen.add(sup_name)
            nxt = program.classes.get(sup_name)
            if nxt is None:
                raise OwnershipTypeError(
                    f"class '{current.name}' extends unknown class "
                    f"'{sup_name}'",
                    current.decl.span if current.decl else None)
            if len(current.superclass.owners) != len(nxt.formals):
                raise OwnershipTypeError(
                    f"class '{current.name}' instantiates '{sup_name}' "
                    f"with {len(current.superclass.owners)} owners, "
                    f"expected {len(nxt.formals)}",
                    current.decl.span if current.decl else None)
            current = nxt


# ---------------------------------------------------------------------------
# WFRegionKinds
# ---------------------------------------------------------------------------

def _wf_region_kinds(program: ProgramInfo) -> None:
    declared: Set[str] = set()
    for rk in program.ast_program.region_kinds:
        if rk.name in declared:
            raise OwnershipTypeError(
                f"region kind '{rk.name}' is defined twice", rk.span)
        if rk.name in BUILTIN_KINDS:
            raise OwnershipTypeError(
                f"region kind '{rk.name}' redefines a built-in kind",
                rk.span)
        declared.add(rk.name)

    for name, info in program.region_kinds.items():
        span = info.decl.span if info.decl else None
        # superkind chain must reach SharedRegion without cycles
        seen = {name}
        current: Kind = info.superkind
        while True:
            if current.name == "SharedRegion":
                break
            if current.name in BUILTIN_KINDS:
                raise OwnershipTypeError(
                    f"region kind '{name}' must (transitively) extend "
                    f"SharedRegion, found '{current.name}'", span)
            if current.name in seen:
                raise OwnershipTypeError(
                    "cycle in the region kind hierarchy involving "
                    f"'{current.name}'", span)
            seen.add(current.name)
            parent = program.region_kinds.get(current.name)
            if parent is None:
                raise OwnershipTypeError(
                    f"region kind '{name}' extends unknown kind "
                    f"'{current.name}'", span)
            if len(current.args) != len(parent.formals):
                raise OwnershipTypeError(
                    f"region kind '{name}' instantiates "
                    f"'{current.name}' with {len(current.args)} owners, "
                    f"expected {len(parent.formals)}", span)
            current = parent.superkind

    _finite_subregions(program)


def _finite_subregions(program: ProgramInfo) -> None:
    """Reject region kinds whose transitive subregions are infinite, i.e.
    a cycle in the graph "kind → kinds of its (inherited) subregions"."""
    graph: Dict[str, Set[str]] = {}
    for name, info in program.region_kinds.items():
        kind = Kind(name, tuple(Owner(fn) for fn in info.formal_names))
        targets = set()
        for sub in program.all_subregions(kind).values():
            if sub.kind.name in program.region_kinds:
                targets.add(sub.kind.name)
        graph[name] = targets

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in graph}

    def visit(node: str) -> None:
        color[node] = GRAY
        for nxt in graph.get(node, ()):
            if color.get(nxt) == GRAY:
                raise OwnershipTypeError(
                    f"region kind '{node}' has an infinite number of "
                    f"transitive subregions (cycle through '{nxt}')")
            if color.get(nxt) == WHITE:
                visit(nxt)
        color[node] = BLACK

    for name in graph:
        if color[name] == WHITE:
            visit(name)


# ---------------------------------------------------------------------------
# MembersOnce
# ---------------------------------------------------------------------------

def _members_once(program: ProgramInfo) -> None:
    for cls in program.ast_program.classes:
        field_names = [f.name for f in cls.fields]
        if len(set(field_names)) != len(field_names):
            raise OwnershipTypeError(
                f"class '{cls.name}' declares a field twice", cls.span)
        method_names = [m.name for m in cls.methods]
        if len(set(method_names)) != len(method_names):
            raise OwnershipTypeError(
                f"class '{cls.name}' declares a method twice "
                "(no overloading)", cls.span)
        # fields must not shadow inherited fields
        info = program.classes[cls.name]
        if info.superclass is not None:
            for fname in field_names:
                if program.lookup_field(info.superclass.name,
                                        fname) is not None:
                    raise OwnershipTypeError(
                        f"field '{cls.name}.{fname}' shadows an inherited "
                        "field", cls.span)
    for rk in program.ast_program.region_kinds:
        # count on the declaration lists — the semantic dicts dedupe
        names = ([p.name for p in rk.portals]
                 + [s.name for s in rk.subregions])
        if len(set(names)) != len(names):
            raise OwnershipTypeError(
                f"region kind '{rk.name}' declares a member twice",
                rk.span)


# ---------------------------------------------------------------------------
# InheritanceOK
# ---------------------------------------------------------------------------

def _constraint_set(constraints: List[Constraint]) -> Set[Constraint]:
    return set(constraints)


def _inheritance_ok(program: ProgramInfo) -> None:
    for name, info in program.classes.items():
        if info.builtin or info.superclass is None:
            continue
        sup = program.classes.get(info.superclass.name)
        if sup is None or sup.builtin:
            continue
        span = info.decl.span if info.decl else None
        subst = make_subst(sup.formal_names, info.superclass.owners)
        have = _constraint_set(info.constraints)
        for c in sup.constraints:
            needed = c.substitute(subst)
            if needed not in have:
                raise OwnershipTypeError(
                    f"class '{name}' must repeat the inherited constraint "
                    f"'{needed}' of '{sup.name}'", span)
        for mname, meth in info.methods.items():
            overridden = program.lookup_method(info.superclass.name, mname)
            if overridden is not None:
                # expressed over sup's formals; rewrite to info's view
                overridden = overridden.substitute(subst)
                _overrides_ok(program, name, meth, overridden, span)

    for name, info in program.region_kinds.items():
        if info.superkind.name not in program.region_kinds:
            continue
        sup = program.region_kinds[info.superkind.name]
        span = info.decl.span if info.decl else None
        subst = make_subst(sup.formal_names, info.superkind.args)
        have = _constraint_set(info.constraints)
        for c in sup.constraints:
            needed = c.substitute(subst)
            if needed not in have:
                raise OwnershipTypeError(
                    f"region kind '{name}' must repeat the inherited "
                    f"constraint '{needed}' of '{sup.name}'", span)


def _overrides_ok(program: ProgramInfo, class_name: str, meth: MethodInfo,
                  overridden: MethodInfo, span) -> None:
    """[OVERRIDESOK METHOD] — positional renaming of method formals, then:
    identical parameter types, covariant return, effects a subset of the
    overridden effects, constraints a subset of the overridden
    constraints."""
    where = f"method '{class_name}.{meth.name}'"
    if len(meth.formals) != len(overridden.formals):
        raise OwnershipTypeError(
            f"{where} overrides a method with a different number of "
            "owner formals", span)
    if len(meth.params) != len(overridden.params):
        raise OwnershipTypeError(
            f"{where} overrides a method with a different number of "
            "parameters", span)
    rename = make_subst((fn for fn, _ in overridden.formals),
                        tuple(Owner(fn) for fn, _ in meth.formals))
    over_params = [t.substitute(rename) for t, _ in overridden.params]
    for (t, _pname), t_over in zip(meth.params, over_params):
        if t != t_over:
            raise OwnershipTypeError(
                f"{where} changes the type of a parameter "
                f"({t} vs {t_over})", span)
    over_ret = overridden.return_type.substitute(rename)
    if meth.return_type != over_ret and not _is_subclass_of(
            program, meth.return_type, over_ret):
        raise OwnershipTypeError(
            f"{where} changes the return type ({meth.return_type} vs "
            f"{over_ret})", span)
    if meth.effects is not None and overridden.effects is not None:
        over_effects = {rename.get(o, o) for o in overridden.effects}
        for eff in meth.effects:
            if eff not in over_effects:
                raise OwnershipTypeError(
                    f"{where} declares effect '{eff}' not present in the "
                    "overridden method", span)
    over_constraints = {c.substitute(rename)
                        for c in overridden.constraints}
    for c in meth.constraints:
        if c not in over_constraints:
            raise OwnershipTypeError(
                f"{where} adds constraint '{c}' not present in the "
                "overridden method", span)


def _is_subclass_of(program: ProgramInfo, sub, sup) -> bool:
    if not isinstance(sub, ClassType) or not isinstance(sup, ClassType):
        return False
    current = sub
    while current is not None:
        if current == sup:
            return True
        current = program.superclass_of(current)
    return False
