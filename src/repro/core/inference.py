"""Section 2.5 — intra-procedural type inference and defaults.

The paper's approach, reproduced here:

* **Defaults** (no inter-procedural analysis, preserving separate
  compilation):

  - unspecified owners in *method signatures* default to
    ``initialRegion``;
  - unspecified owners in *instance variables* default to the owner of
    ``this`` (the first class formal);
  - unspecified owners in *static fields* default to ``immortal``;
  - portal fields of a region kind default to ``this`` (the region);
  - a missing ``accesses`` clause defaults to all class and method owner
    parameters plus ``initialRegion``.

* **Unification** for method-local variables: every omitted owner of a
  local declaration, ``new`` expression, or owner-instantiated call
  becomes a fresh variable; walking the body generates equalities
  (ownership types are invariant, so plain unification is sound);
  variables unconstrained after unification default to
  ``initialRegion``.

The pass rewrites the AST in place and returns it; the checker then sees a
fully annotated program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import InferenceError
from ..lang import ast
from .owners import Owner, make_subst
from .program import (ProgramInfo, build_program_info, convert_type)
from .types import ClassType, HandleType, Type

# ---------------------------------------------------------------------------
# owner tokens and union-find
# ---------------------------------------------------------------------------

#: An owner token is a concrete owner name or a fresh variable ``$k``.
Token = str


def _is_var(token: Token) -> bool:
    return token.startswith("$")


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Token, Token] = {}

    def find(self, token: Token) -> Token:
        root = token
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(token, token) != token:
            self.parent[token], token = root, self.parent[token]
        return root

    def union(self, a: Token, b: Token, span) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if not _is_var(ra) and not _is_var(rb):
            # two distinct concrete owners: the program is ill-typed, but
            # the typechecker produces the precise judgment-tagged error,
            # so inference just leaves the constraint unsolved
            return
        # concrete names win so resolution is deterministic
        if _is_var(ra):
            self.parent[ra] = rb
        else:
            self.parent[rb] = ra

    def resolve(self, token: Token,
                fallback: str = "initialRegion") -> str:
        root = self.find(token)
        return fallback if _is_var(root) else root


# ---------------------------------------------------------------------------
# patterns: lightweight shadow types carrying owner tokens
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DefaultPolicy:
    """Section 2.5: "Our system also supports user-defined defaults to
    cover specific patterns that might occur in user code."

    Each field names the owner used when the programmer wrote nothing:

    * ``signature_owner``   — method parameter/return types
      (paper default: ``initialRegion``);
    * ``unconstrained_local`` — locals left unconstrained after
      unification (paper default: ``initialRegion``);
    * ``instance_field_owner`` — ``None`` means "the owner of this"
      (the first class formal), any other value is used literally;
    * ``static_field_owner``  — paper default: ``immortal``;
    * ``portal_owner``        — portal fields of region kinds
      (default: ``this``, the region);
    * ``effects_include_initial_region`` — whether default ``accesses``
      clauses contain ``initialRegion`` in addition to the owner
      parameters.
    """

    signature_owner: str = "initialRegion"
    unconstrained_local: str = "initialRegion"
    instance_field_owner: Optional[str] = None
    static_field_owner: str = "immortal"
    portal_owner: str = "this"
    effects_include_initial_region: bool = True


PAPER_DEFAULTS = DefaultPolicy()


@dataclass
class RefPattern:
    class_name: str
    owners: List[Token]


@dataclass
class HandlePattern:
    region: Token


#: ``None`` = scalar / unknown (no owner constraints); "null" literal gets
#: its own marker so it unifies with anything.
Pattern = Union[RefPattern, HandlePattern, None]

_NULL = RefPattern("<null>", [])


# ---------------------------------------------------------------------------
# defaults
# ---------------------------------------------------------------------------

def _fill(type_ast: ast.TypeAst, program: ast.Program,
          default: str) -> ast.TypeAst:
    """Return ``type_ast`` with omitted owners replaced by ``default``."""
    if not isinstance(type_ast, ast.ClassTypeAst) or type_ast.owners:
        return type_ast
    decl = program.class_named(type_ast.name)
    arity = len(decl.formals) if decl is not None else 1
    owners = tuple(ast.OwnerAst(default, type_ast.span)
                   for _ in range(arity))
    return ast.ClassTypeAst(type_ast.name, owners, type_ast.span)


def apply_signature_defaults(
        program: ast.Program,
        policy: DefaultPolicy = PAPER_DEFAULTS) -> None:
    """Fill owner defaults for fields, method signatures, portal fields,
    and missing ``accesses`` clauses."""
    for cls in program.classes:
        if not cls.formals:
            # default class parameterization: one plain Owner formal
            cls.formals.append(ast.FormalAst(
                ast.KindAst("Owner", (), False, cls.span), "__owner",
                cls.span))
        this_owner = policy.instance_field_owner or cls.formals[0].name
        if cls.superclass is not None and not cls.superclass.owners:
            sup = program.class_named(cls.superclass.name)
            arity = len(sup.formals) if sup is not None and sup.formals \
                else 1
            cls.superclass = ast.ClassTypeAst(
                cls.superclass.name,
                tuple(ast.OwnerAst(this_owner, cls.span)
                      for _ in range(arity)),
                cls.superclass.span)
        for fld in cls.fields:
            default = (policy.static_field_owner if fld.static
                       else this_owner)
            fld.declared_type = _fill(fld.declared_type, program, default)
        for meth in cls.methods:
            meth.return_type = _fill(meth.return_type, program,
                                     policy.signature_owner)
            meth.params = [(_fill(t, program, policy.signature_owner),
                            name)
                           for t, name in meth.params]
            if meth.effects is None:
                names = ([f.name for f in cls.formals]
                         + [f.name for f in meth.formals])
                if policy.effects_include_initial_region:
                    names.append("initialRegion")
                meth.effects = [ast.OwnerAst(n, meth.span) for n in names]
    for rk in program.region_kinds:
        for portal in rk.portals:
            portal.declared_type = _fill(portal.declared_type, program,
                                         policy.portal_owner)


# ---------------------------------------------------------------------------
# per-method unification
# ---------------------------------------------------------------------------

class _MethodInference:
    """Unification-based owner inference over one method body (or the
    program's main block)."""

    def __init__(self, info: ProgramInfo, cls: Optional[ast.ClassDecl],
                 method: Optional[ast.MethodDecl],
                 policy: "DefaultPolicy" = None):
        self.info = info
        self.cls = cls
        self.method = method
        self.policy = policy or PAPER_DEFAULTS
        self.uf = _UnionFind()
        self.counter = 0
        #: nodes whose empty owner tuples must be rewritten after solving,
        #: together with the fresh tokens standing in for their owners
        self.pending: List[Tuple[object, List[Token]]] = []

    # -- plumbing ---------------------------------------------------------

    def fresh(self) -> Token:
        self.counter += 1
        return f"${self.counter}"

    def _fresh_owners(self, node, count: int) -> List[Token]:
        tokens = [self.fresh() for _ in range(count)]
        self.pending.append((node, tokens))
        return tokens

    def unify(self, a: Pattern, b: Pattern, span) -> None:
        if not isinstance(a, RefPattern) or not isinstance(b, RefPattern):
            if isinstance(a, HandlePattern) and isinstance(b,
                                                           HandlePattern):
                self.uf.union(a.region, b.region, span)
            return
        if a.class_name == "<null>" or b.class_name == "<null>":
            return
        a2, b2 = a, b
        if a.class_name != b.class_name:
            a2 = self._upcast(a, b.class_name)
            if a2 is None:
                b2 = self._upcast(b, a.class_name)
                if b2 is None:
                    return  # unrelated classes; the checker will complain
                a2 = a
            else:
                b2 = b
        for oa, ob in zip(a2.owners, b2.owners):
            self.uf.union(oa, ob, span)

    def _upcast(self, pattern: RefPattern,
                target: str) -> Optional[RefPattern]:
        """Rewrite ``pattern`` as its superclass ``target`` (owner tokens
        flow through the extends instantiation)."""
        current = pattern
        while current.class_name != target:
            cinfo = self.info.classes.get(current.class_name)
            if cinfo is None or cinfo.superclass is None:
                return None
            subst = {fn: tok for fn, tok in zip(cinfo.formal_names,
                                                current.owners)}
            owners = [subst.get(o.name, o.name)
                      for o in cinfo.superclass.owners]
            current = RefPattern(cinfo.superclass.name, owners)
        return current

    # -- patterns from declared types --------------------------------------

    def _pattern_of_type_ast(self, t: ast.TypeAst,
                             node=None) -> Pattern:
        if isinstance(t, ast.ClassTypeAst):
            cinfo = self.info.classes.get(t.name)
            if cinfo is None:
                return None
            if not t.owners and cinfo.formals:
                assert node is not None
                owners = self._fresh_owners(node, len(cinfo.formals))
            else:
                owners = [o.name for o in t.owners]
            return RefPattern(t.name, owners)
        if isinstance(t, ast.HandleTypeAst):
            return HandlePattern(t.region.name)
        return None

    def _pattern_of_semantic(self, t: Type,
                             subst: Dict[str, Token]) -> Pattern:
        if isinstance(t, ClassType):
            return RefPattern(t.name, [subst.get(o.name, o.name)
                                       for o in t.owners])
        if isinstance(t, HandleType):
            return HandlePattern(subst.get(t.region.name, t.region.name))
        return None

    # -- traversal ----------------------------------------------------------

    def run(self, body: ast.Block) -> None:
        self._body = body
        scope: Dict[str, Pattern] = {}
        if self.method is not None:
            for ptype, pname in self.method.params:
                scope[pname] = self._pattern_of_type_ast(ptype)
        self.visit_block(body, scope)
        self._rewrite()

    def visit_block(self, block: ast.Block,
                    scope: Dict[str, Pattern]) -> None:
        inner = dict(scope)
        for stmt in block.stmts:
            self.visit_stmt(stmt, inner)

    def visit_stmt(self, stmt: ast.Stmt,
                   scope: Dict[str, Pattern]) -> None:
        if isinstance(stmt, ast.Block):
            self.visit_block(stmt, scope)
        elif isinstance(stmt, ast.LocalDecl):
            pattern = self._pattern_of_type_ast(stmt.declared_type, stmt)
            if stmt.init is not None:
                init = self.visit_expr(stmt.init, scope)
                self.unify(pattern, init, stmt.span)
            scope[stmt.name] = pattern
        elif isinstance(stmt, ast.AssignLocal):
            value = self.visit_expr(stmt.value, scope)
            target = scope.get(stmt.name)
            if target is None:
                target = self._this_field_pattern(stmt.name)
            self.unify(target, value, stmt.span)
        elif isinstance(stmt, ast.AssignField):
            value = self.visit_expr(stmt.value, scope)
            target = self._field_pattern(stmt.target, stmt.field_name,
                                         scope)
            self.unify(target, value, stmt.span)
        elif isinstance(stmt, ast.ExprStmt):
            self.visit_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self.visit_expr(stmt.cond, scope)
            self.visit_block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self.visit_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            self.visit_expr(stmt.cond, scope)
            self.visit_block(stmt.body, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and self.method is not None:
                value = self.visit_expr(stmt.value, scope)
                declared = self._pattern_of_type_ast(
                    self.method.return_type)
                self.unify(declared, value, stmt.span)
        elif isinstance(stmt, ast.Fork):
            self.visit_expr(stmt.call, scope)
        elif isinstance(stmt, ast.RegionStmt):
            inner = dict(scope)
            inner[stmt.handle_name] = HandlePattern(stmt.region_name)
            self.visit_block(stmt.body, inner)
        elif isinstance(stmt, ast.SubregionStmt):
            self.visit_expr(stmt.parent_handle, scope)
            inner = dict(scope)
            inner[stmt.handle_name] = HandlePattern(stmt.region_name)
            self.visit_block(stmt.body, inner)

    # -- expressions --------------------------------------------------------

    def visit_expr(self, expr: ast.Expr,
                   scope: Dict[str, Pattern]) -> Pattern:
        if isinstance(expr, ast.NullLit):
            return _NULL
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return None
        if isinstance(expr, ast.ThisRef):
            return self._this_pattern()
        if isinstance(expr, ast.VarRef):
            if expr.name in scope:
                return scope[expr.name]
            return self._this_field_pattern(expr.name)
        if isinstance(expr, ast.NewExpr):
            for arg in expr.args:
                self.visit_expr(arg, scope)
            cinfo = self.info.classes.get(expr.class_name)
            if cinfo is None:
                return None
            if not expr.owners and cinfo.formals:
                owners = self._fresh_owners(expr, len(cinfo.formals))
            else:
                owners = [o.name for o in expr.owners]
            return RefPattern(expr.class_name, owners)
        if isinstance(expr, ast.FieldRead):
            return self._field_pattern(expr.target, expr.field_name, scope)
        if isinstance(expr, ast.Invoke):
            return self._invoke_pattern(expr, scope)
        if isinstance(expr, ast.Binary):
            self.visit_expr(expr.left, scope)
            self.visit_expr(expr.right, scope)
            return None
        if isinstance(expr, ast.Unary):
            return self.visit_expr(expr.operand, scope)
        if isinstance(expr, ast.BuiltinCall):
            for arg in expr.args:
                self.visit_expr(arg, scope)
            return None
        return None

    def _this_pattern(self) -> Pattern:
        if self.cls is None:
            return None
        return RefPattern(self.cls.name,
                          [f.name for f in self.cls.formals])

    def _this_field_pattern(self, name: str) -> Pattern:
        if self.cls is None:
            return None
        fi = self.info.lookup_field(self.cls.name, name)
        if fi is None:
            return None
        subst = {fn: fn for fn in
                 self.info.classes[self.cls.name].formal_names}
        subst["this"] = "this"
        return self._pattern_of_semantic(fi.type, subst)

    def _field_pattern(self, target: ast.Expr, field_name: str,
                       scope: Dict[str, Pattern]) -> Pattern:
        # static field Cn.f
        if (isinstance(target, ast.VarRef) and target.name not in scope
                and target.name in self.info.classes):
            fi = self.info.lookup_field(target.name, field_name)
            if fi is not None:
                return self._pattern_of_semantic(fi.type, {})
        tpat = self.visit_expr(target, scope)
        if isinstance(tpat, HandlePattern):
            kind = self._region_kind_of(tpat.region)
            if kind is None:
                return None
            portal = self.info.lookup_portal(kind, field_name)
            if portal is None:
                return None
            return self._pattern_of_semantic(portal.type,
                                             {"this": tpat.region})
        if not isinstance(tpat, RefPattern) or tpat.class_name == "<null>":
            return None
        fi = self.info.lookup_field(tpat.class_name, field_name)
        if fi is None:
            return None
        subst = {fn: tok for fn, tok in zip(
            self.info.classes[tpat.class_name].formal_names, tpat.owners)}
        subst["this"] = ("this" if isinstance(target, ast.ThisRef)
                         else self.fresh())
        return self._pattern_of_semantic(fi.type, subst)

    def _region_kind_of(self, region_token: Token):
        """Best-effort region kind of a region name: scan the enclosing
        declarations for a matching formal; region-statement regions are
        handled by the scope's HandlePattern carrying the name declared by
        the surrounding statement — we find its kind from the formals of
        the method/class, if any."""
        from .kinds import Kind
        candidates: List[ast.FormalAst] = []
        if self.cls is not None:
            candidates.extend(self.cls.formals)
        if self.method is not None:
            candidates.extend(self.method.formals)
        for f in candidates:
            if f.name == region_token:
                return Kind(f.kind.name,
                            tuple(Owner(a.name) for a in f.kind.args),
                            f.kind.lt)
        return self._region_stmt_kinds.get(region_token)

    #: region-statement kinds discovered during traversal
    @property
    def _region_stmt_kinds(self):
        if not hasattr(self, "_rs_kinds"):
            self._rs_kinds = {}
            self._collect_region_kinds()
        return self._rs_kinds

    def _collect_region_kinds(self) -> None:
        from .kinds import Kind

        def walk(stmt):
            if isinstance(stmt, ast.Block):
                for s in stmt.stmts:
                    walk(s)
            elif isinstance(stmt, ast.RegionStmt):
                if stmt.kind is not None:
                    self._rs_kinds[stmt.region_name] = Kind(
                        stmt.kind.name,
                        tuple(Owner(a.name) for a in stmt.kind.args),
                        stmt.kind.lt)
                walk(stmt.body)
            elif isinstance(stmt, ast.SubregionStmt):
                if stmt.declared_kind is not None:
                    self._rs_kinds[stmt.region_name] = Kind(
                        stmt.declared_kind.name,
                        tuple(Owner(a.name)
                              for a in stmt.declared_kind.args),
                        stmt.declared_kind.lt)
                walk(stmt.body)
            elif isinstance(stmt, (ast.If,)):
                walk(stmt.then_body)
                if stmt.else_body is not None:
                    walk(stmt.else_body)
            elif isinstance(stmt, ast.While):
                walk(stmt.body)

        body = getattr(self, "_body", None)
        if body is not None:
            walk(body)

    def _invoke_pattern(self, expr: ast.Invoke,
                        scope: Dict[str, Pattern]) -> Pattern:
        tpat = self.visit_expr(expr.target, scope)
        arg_patterns = [self.visit_expr(a, scope) for a in expr.args]
        if not isinstance(tpat, RefPattern) or tpat.class_name == "<null>":
            return None
        mi = self.info.lookup_method(tpat.class_name, expr.method_name)
        if mi is None:
            return None
        subst = {fn: tok for fn, tok in zip(
            self.info.classes[tpat.class_name].formal_names, tpat.owners)}
        subst["this"] = ("this" if isinstance(expr.target, ast.ThisRef)
                         else self.fresh())
        subst["initialRegion"] = "initialRegion"
        if mi.formals:
            if expr.owner_args:
                actuals = [o.name for o in expr.owner_args]
            else:
                actuals = self._fresh_owners(expr, len(mi.formals))
            for (fn, _), actual in zip(mi.formals, actuals):
                subst[fn] = actual
        for (ptype, _), apat in zip(mi.params, arg_patterns):
            self.unify(self._pattern_of_semantic(ptype, subst), apat,
                       expr.span)
        return self._pattern_of_semantic(mi.return_type, subst)

    # -- rewriting ----------------------------------------------------------

    def _rewrite(self) -> None:
        """Write resolved owners back into the AST nodes that had fresh
        variables."""
        for node, tokens in self.pending:
            owners = tuple(
                ast.OwnerAst(
                    self.uf.resolve(t, self.policy.unconstrained_local),
                    node.span)
                for t in tokens)
            if isinstance(node, ast.LocalDecl):
                old = node.declared_type
                assert isinstance(old, ast.ClassTypeAst)
                node.declared_type = ast.ClassTypeAst(old.name, owners,
                                                      old.span)
            elif isinstance(node, ast.NewExpr):
                node.owners = owners
            elif isinstance(node, ast.Invoke):
                node.owner_args = owners


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def apply_defaults_and_infer(
        program: ast.Program,
        policy: DefaultPolicy = PAPER_DEFAULTS) -> ast.Program:
    """Apply Section 2.5 defaults and inference; rewrites and returns
    ``program``.  ``policy`` customizes the defaults (the paper's
    "user-defined defaults")."""
    apply_signature_defaults(program, policy)
    info = build_program_info(program)
    for cls in program.classes:
        for meth in cls.methods:
            _MethodInference(info, cls, meth, policy).run(meth.body)
    if program.main is not None:
        _MethodInference(info, None, None, policy).run(program.main)
    return program
