"""Front end for the core language of the paper.

The paper formalizes its type system over a core subset of Java ("Classic
Java" [28]) extended with owner parameters, region kinds, portal fields,
effects clauses, and fork/RT-fork (Figures 3, 7, 9 and 13).  This package
provides a concrete, Java-flavoured syntax for that language together with a
lexer, a recursive-descent parser, and a pretty printer.

The concrete syntax follows the paper's own examples (Figures 5 and 8)::

    class TStack<Owner stackOwner, Owner TOwner> {
        TNode<this, TOwner> head;
        void push(T<TOwner> value) { ... }
    }
    (RHandle<r1> h1) {
        (RHandle<r2> h2) {
            TStack<r2, r1> s2;
            ...
        }
    }

plus ``regionKind`` declarations, ``accesses`` effects clauses, ``where``
constraint clauses, ``fork`` / ``RT fork``, and subregion-entry blocks
``(RHandle<BufferSubRegion r2> h2 = h.b) { ... }``.
"""

from .lexer import Lexer, tokenize
from .parser import Parser, parse_program
from .pretty import pretty_program

__all__ = ["Lexer", "tokenize", "Parser", "parse_program", "pretty_program"]
