"""Abstract syntax for the core language (Figures 3, 7, 9 and 13).

The AST keeps owners and kinds as *syntactic* names; the semantic layer in
:mod:`repro.core` interprets them against a typing environment.  Nodes carry
:class:`~repro.source.Span` for diagnostics.

Beyond the paper's expression core we include the statement sugar (blocks,
``if``/``while``, local declarations, returns, arithmetic) needed to write
the evaluation benchmarks; all of it desugars conceptually to the paper's
``let``/sequencing core and the typing rules lift pointwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..source import Span

# ---------------------------------------------------------------------------
# Owners and kinds (syntactic)
# ---------------------------------------------------------------------------

#: Names of owners with fixed meaning (grammar: ``owner ::= fn | r | this |
#: initialRegion | heap | immortal | RT``).
SPECIAL_OWNERS = ("this", "heap", "immortal", "initialRegion", "RT")


@dataclass(frozen=True)
class OwnerAst:
    """A syntactic owner: a formal, region name, or special owner."""

    name: str
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class KindAst:
    """A syntactic owner kind: built-in kind name or user region kind
    ``srkn<owners>``, optionally refined with ``:LT`` (Figure 9)."""

    name: str
    args: Tuple[OwnerAst, ...] = ()
    lt: bool = False
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        base = self.name
        if self.args:
            base += "<" + ", ".join(map(str, self.args)) + ">"
        return base + (":LT" if self.lt else "")


# ---------------------------------------------------------------------------
# Types (syntactic)
# ---------------------------------------------------------------------------

class TypeAst:
    """Base class of syntactic types."""

    span: Span


@dataclass(frozen=True)
class PrimTypeAst(TypeAst):
    """``int``, ``float``, ``boolean`` or ``void``."""

    name: str
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClassTypeAst(TypeAst):
    """``cn<o1, ..., on>``.  An empty owner tuple on a class that declares
    formals means "infer the owners" (Section 2.5)."""

    name: str
    owners: Tuple[OwnerAst, ...]
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        if not self.owners:
            return self.name
        return self.name + "<" + ", ".join(map(str, self.owners)) + ">"


@dataclass(frozen=True)
class HandleTypeAst(TypeAst):
    """``RHandle<r>`` — the runtime handle of region ``r``."""

    region: OwnerAst
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        return f"RHandle<{self.region}>"


# ---------------------------------------------------------------------------
# Constraints / policies
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConstraintAst:
    """A ``where`` constraint: ``left owns right`` or ``left outlives
    right`` [24]."""

    relation: str  # 'owns' | 'outlives'
    left: OwnerAst
    right: OwnerAst
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        return f"{self.left} {self.relation} {self.right}"


@dataclass(frozen=True)
class PolicyAst:
    """Region allocation policy: ``LT(size)`` or ``VT`` (Section 2.3)."""

    kind: str  # 'LT' | 'VT'
    size: int = 0
    span: Span = field(default_factory=Span.unknown, compare=False)

    def __str__(self) -> str:
        return f"LT({self.size})" if self.kind == "LT" else "VT"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    span: Span


@dataclass
class IntLit(Expr):
    value: int
    span: Span = field(default_factory=Span.unknown)


@dataclass
class FloatLit(Expr):
    value: float
    span: Span = field(default_factory=Span.unknown)


@dataclass
class BoolLit(Expr):
    value: bool
    span: Span = field(default_factory=Span.unknown)


@dataclass
class NullLit(Expr):
    span: Span = field(default_factory=Span.unknown)


@dataclass
class VarRef(Expr):
    """A variable, parameter, region handle, or (after resolution) a class
    name used for static access."""

    name: str
    span: Span = field(default_factory=Span.unknown)


@dataclass
class ThisRef(Expr):
    span: Span = field(default_factory=Span.unknown)


@dataclass
class NewExpr(Expr):
    """``new cn<o1..n>`` — allocation; the first owner decides the region
    (Section 2.1).  ``args`` are passed to an ``init``-style constructor
    method for the built-in array classes only."""

    class_name: str
    owners: Tuple[OwnerAst, ...]
    args: Tuple[Expr, ...] = ()
    span: Span = field(default_factory=Span.unknown)


@dataclass
class FieldRead(Expr):
    """``e.fd`` — also covers portal-field reads ``h.fd`` (the checker
    dispatches on the type of ``target``) and static reads ``Cn.fd``."""

    target: Expr
    field_name: str
    span: Span = field(default_factory=Span.unknown)


@dataclass
class Invoke(Expr):
    """``e.mn<o..>(args)``."""

    target: Expr
    method_name: str
    owner_args: Tuple[OwnerAst, ...]
    args: Tuple[Expr, ...]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr
    span: Span = field(default_factory=Span.unknown)


@dataclass
class Unary(Expr):
    op: str
    operand: Expr
    span: Span = field(default_factory=Span.unknown)


@dataclass
class BuiltinCall(Expr):
    """Call to one of the interpreter intrinsics (``print``, ``io``,
    ``yieldnow``, ``sqrt``, ``itof``, ``ftoi``, ``check``)."""

    name: str
    args: Tuple[Expr, ...]
    span: Span = field(default_factory=Span.unknown)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    span: Span


@dataclass
class Block(Stmt):
    stmts: List[Stmt]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class LocalDecl(Stmt):
    """``t v = e;`` — ``let v = e in ...`` of the paper.  Declared type may
    omit owners (empty tuple), to be filled by inference."""

    declared_type: TypeAst
    name: str
    init: Optional[Expr]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class AssignLocal(Stmt):
    name: str
    value: Expr
    span: Span = field(default_factory=Span.unknown)


@dataclass
class AssignField(Stmt):
    """``e.fd = e';`` — also portal-field and static-field writes."""

    target: Expr
    field_name: str
    value: Expr
    span: Span = field(default_factory=Span.unknown)


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    span: Span = field(default_factory=Span.unknown)


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Optional[Block]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class While(Stmt):
    cond: Expr
    body: Block
    span: Span = field(default_factory=Span.unknown)


@dataclass
class Return(Stmt):
    value: Optional[Expr]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class Fork(Stmt):
    """``fork e.mn<o..>(args);`` or ``RT fork ...`` (Figures 7 and 9)."""

    call: Invoke
    realtime: bool
    span: Span = field(default_factory=Span.unknown)


@dataclass
class RegionStmt(Stmt):
    """``(RHandle<[kind[:policy]] r> h) { body }`` — region creation
    ([EXPR REGION] / [EXPR LOCALREGION]).  ``kind`` is ``None`` for a plain
    local region; ``policy`` defaults to VT."""

    kind: Optional[KindAst]
    policy: Optional[PolicyAst]
    region_name: str
    handle_name: str
    body: Block
    span: Span = field(default_factory=Span.unknown)


@dataclass
class SubregionStmt(Stmt):
    """``(RHandle<[kind] r2> h2 = [new] h.rsub) { body }`` — subregion entry
    ([EXPR SUBREGION]).  ``declared_kind`` is an optional, checked
    annotation; the true kind comes from the region-kind declaration."""

    declared_kind: Optional[KindAst]
    region_name: str
    handle_name: str
    parent_handle: Expr
    subregion_name: str
    fresh: bool
    body: Block
    span: Span = field(default_factory=Span.unknown)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class FormalAst:
    """An owner formal ``k fn`` of a class, method, or region kind."""

    kind: KindAst
    name: str
    span: Span = field(default_factory=Span.unknown)

    def __str__(self) -> str:
        return f"{self.kind} {self.name}"


@dataclass
class FieldDecl:
    """An instance or static field; in a ``regionKind`` body, a portal
    field."""

    declared_type: TypeAst
    name: str
    static: bool = False
    init: Optional[Expr] = None
    span: Span = field(default_factory=Span.unknown)


@dataclass
class MethodDecl:
    return_type: TypeAst
    name: str
    formals: List[FormalAst]
    params: List[Tuple[TypeAst, str]]
    #: ``None`` means no ``accesses`` clause was written: the Section 2.5
    #: default (all owner parameters + initialRegion) applies.
    effects: Optional[List[OwnerAst]]
    constraints: List[ConstraintAst]
    body: Block
    span: Span = field(default_factory=Span.unknown)


@dataclass
class SubregionDecl:
    """A subregion member of a region kind: ``srkind : rpol tt rsub``."""

    kind: KindAst
    policy: PolicyAst
    realtime: bool  # True = RT subregion, False = NoRT (Section 2.3)
    name: str
    span: Span = field(default_factory=Span.unknown)


@dataclass
class ClassDecl:
    name: str
    formals: List[FormalAst]
    superclass: Optional[ClassTypeAst]
    constraints: List[ConstraintAst]
    fields: List[FieldDecl]
    methods: List[MethodDecl]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class RegionKindDecl:
    """``regionKind srkn<formals> extends srkind where ... { portals
    subregions }`` (Figure 7)."""

    name: str
    formals: List[FormalAst]
    superkind: KindAst
    constraints: List[ConstraintAst]
    portals: List[FieldDecl]
    subregions: List[SubregionDecl]
    span: Span = field(default_factory=Span.unknown)


@dataclass
class Program:
    classes: List[ClassDecl]
    region_kinds: List[RegionKindDecl]
    main: Optional[Block]
    filename: str = "<input>"
    source_text: str = ""

    def class_named(self, name: str) -> Optional[ClassDecl]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def region_kind_named(self, name: str) -> Optional[RegionKindDecl]:
        for rk in self.region_kinds:
            if rk.name == name:
                return rk
        return None
