"""Pretty printer for the core language.

Produces parseable source text; ``parse(pretty(parse(text)))`` is
structurally identical to ``parse(text)``, a property the test suite checks
with hypothesis-generated programs.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "    "


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    # -- fragments ----------------------------------------------------------

    def fmt_owner(self, owner: ast.OwnerAst) -> str:
        return owner.name

    def fmt_kind(self, kind: ast.KindAst) -> str:
        base = kind.name
        if kind.args:
            base += "<" + ", ".join(self.fmt_owner(o) for o in kind.args) + ">"
        if kind.lt:
            base += " : LT"
        return base

    def fmt_type(self, t: ast.TypeAst) -> str:
        if isinstance(t, ast.PrimTypeAst):
            return t.name
        if isinstance(t, ast.ClassTypeAst):
            if not t.owners:
                return t.name
            owners = ", ".join(self.fmt_owner(o) for o in t.owners)
            return f"{t.name}<{owners}>"
        if isinstance(t, ast.HandleTypeAst):
            return f"RHandle<{self.fmt_owner(t.region)}>"
        raise TypeError(f"unknown type node {t!r}")

    def fmt_formals(self, formals: List[ast.FormalAst]) -> str:
        if not formals:
            return ""
        inner = ", ".join(f"{self.fmt_kind(f.kind)} {f.name}"
                          for f in formals)
        return f"<{inner}>"

    def fmt_constraints(self, constraints: List[ast.ConstraintAst]) -> str:
        if not constraints:
            return ""
        parts = ", ".join(f"{c.left.name} {c.relation} {c.right.name}"
                          for c in constraints)
        return f" where {parts}"

    def fmt_policy(self, policy: ast.PolicyAst) -> str:
        return f"LT({policy.size})" if policy.kind == "LT" else "VT"

    # -- expressions ----------------------------------------------------------

    def fmt_expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            return str(e.value)
        if isinstance(e, ast.FloatLit):
            text = repr(e.value)
            return text if ("." in text or "e" in text) else text + ".0"
        if isinstance(e, ast.BoolLit):
            return "true" if e.value else "false"
        if isinstance(e, ast.NullLit):
            return "null"
        if isinstance(e, ast.ThisRef):
            return "this"
        if isinstance(e, ast.VarRef):
            return e.name
        if isinstance(e, ast.NewExpr):
            text = f"new {e.class_name}"
            if e.owners:
                text += "<" + ", ".join(o.name for o in e.owners) + ">"
            if e.args:
                text += "(" + ", ".join(self.fmt_expr(a) for a in e.args) + ")"
            return text
        if isinstance(e, ast.FieldRead):
            return f"{self.fmt_expr(e.target)}.{e.field_name}"
        if isinstance(e, ast.Invoke):
            owners = ""
            if e.owner_args:
                owners = "<" + ", ".join(o.name for o in e.owner_args) + ">"
            args = ", ".join(self.fmt_expr(a) for a in e.args)
            return f"{self.fmt_expr(e.target)}.{e.method_name}{owners}({args})"
        if isinstance(e, ast.Binary):
            return (f"({self.fmt_expr(e.left)} {e.op} "
                    f"{self.fmt_expr(e.right)})")
        if isinstance(e, ast.Unary):
            return f"({e.op}{self.fmt_expr(e.operand)})"
        if isinstance(e, ast.BuiltinCall):
            args = ", ".join(self.fmt_expr(a) for a in e.args)
            return f"{e.name}({args})"
        raise TypeError(f"unknown expression node {e!r}")

    # -- statements -----------------------------------------------------------

    def print_stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self.emit("{")
            self.depth += 1
            for inner in s.stmts:
                self.print_stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(s, ast.LocalDecl):
            text = f"{self.fmt_type(s.declared_type)} {s.name}"
            if s.init is not None:
                text += f" = {self.fmt_expr(s.init)}"
            self.emit(text + ";")
        elif isinstance(s, ast.AssignLocal):
            self.emit(f"{s.name} = {self.fmt_expr(s.value)};")
        elif isinstance(s, ast.AssignField):
            self.emit(f"{self.fmt_expr(s.target)}.{s.field_name} = "
                      f"{self.fmt_expr(s.value)};")
        elif isinstance(s, ast.ExprStmt):
            self.emit(self.fmt_expr(s.expr) + ";")
        elif isinstance(s, ast.If):
            self.emit(f"if ({self.fmt_expr(s.cond)})")
            self.print_stmt(s.then_body)
            if s.else_body is not None:
                self.emit("else")
                self.print_stmt(s.else_body)
        elif isinstance(s, ast.While):
            self.emit(f"while ({self.fmt_expr(s.cond)})")
            self.print_stmt(s.body)
        elif isinstance(s, ast.Return):
            if s.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.fmt_expr(s.value)};")
        elif isinstance(s, ast.Fork):
            prefix = "RT fork" if s.realtime else "fork"
            self.emit(f"{prefix} {self.fmt_expr(s.call)};")
        elif isinstance(s, ast.RegionStmt):
            inner = s.region_name
            if s.kind is not None:
                inner = self.fmt_kind(s.kind)
                if s.policy is not None:
                    inner += f" : {self.fmt_policy(s.policy)}"
                inner += f" {s.region_name}"
            self.emit(f"(RHandle<{inner}> {s.handle_name})")
            self.print_stmt(s.body)
        elif isinstance(s, ast.SubregionStmt):
            inner = s.region_name
            if s.declared_kind is not None:
                inner = f"{self.fmt_kind(s.declared_kind)} {s.region_name}"
            fresh = "new " if s.fresh else ""
            parent = self.fmt_expr(s.parent_handle)
            self.emit(f"(RHandle<{inner}> {s.handle_name} = "
                      f"{fresh}{parent}.{s.subregion_name})")
            self.print_stmt(s.body)
        else:
            raise TypeError(f"unknown statement node {s!r}")

    # -- declarations -----------------------------------------------------

    def print_field(self, f: ast.FieldDecl) -> None:
        prefix = "static " if f.static else ""
        text = f"{prefix}{self.fmt_type(f.declared_type)} {f.name}"
        if f.init is not None:
            text += f" = {self.fmt_expr(f.init)}"
        self.emit(text + ";")

    def print_method(self, m: ast.MethodDecl) -> None:
        formals = self.fmt_formals(m.formals) if m.formals else ""
        params = ", ".join(f"{self.fmt_type(t)} {name}"
                           for t, name in m.params)
        header = (f"{self.fmt_type(m.return_type)} {m.name}{formals}"
                  f"({params})")
        if m.effects is not None:
            header += " accesses " + ", ".join(o.name for o in m.effects)
        header += self.fmt_constraints(m.constraints)
        self.emit(header)
        self.print_stmt(m.body)

    def print_class(self, cls: ast.ClassDecl) -> None:
        header = f"class {cls.name}{self.fmt_formals(cls.formals)}"
        if cls.superclass is not None:
            header += f" extends {self.fmt_type(cls.superclass)}"
        header += self.fmt_constraints(cls.constraints)
        self.emit(header + " {")
        self.depth += 1
        for f in cls.fields:
            self.print_field(f)
        for m in cls.methods:
            self.print_method(m)
        self.depth -= 1
        self.emit("}")

    def print_region_kind(self, rk: ast.RegionKindDecl) -> None:
        formals = self.fmt_formals(rk.formals) if rk.formals else ""
        header = (f"regionKind {rk.name}{formals} extends "
                  f"{self.fmt_kind(rk.superkind)}")
        header += self.fmt_constraints(rk.constraints)
        self.emit(header + " {")
        self.depth += 1
        for f in rk.portals:
            self.print_field(f)
        for sub in rk.subregions:
            tt = "RT" if sub.realtime else "NoRT"
            self.emit(f"{self.fmt_kind(sub.kind)} : "
                      f"{self.fmt_policy(sub.policy)} {tt} {sub.name};")
        self.depth -= 1
        self.emit("}")


def pretty_program(program: ast.Program) -> str:
    """Render ``program`` back to parseable source text."""
    printer = _Printer()
    for rk in program.region_kinds:
        printer.print_region_kind(rk)
        printer.emit("")
    for cls in program.classes:
        printer.print_class(cls)
        printer.emit("")
    if program.main is not None:
        for stmt in program.main.stmts:
            printer.print_stmt(stmt)
    return "\n".join(printer.lines) + "\n"
