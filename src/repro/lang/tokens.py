"""Token definitions for the core language."""

from __future__ import annotations

from enum import Enum, auto, unique
from typing import NamedTuple

from ..source import Span


@unique
class TokenKind(Enum):
    # literals / identifiers
    IDENT = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()

    # keywords
    CLASS = auto()
    EXTENDS = auto()
    WHERE = auto()
    OWNS = auto()
    OUTLIVES = auto()
    REGION_KIND = auto()      # 'regionKind'
    ACCESSES = auto()
    NEW = auto()
    NULL = auto()
    TRUE = auto()
    FALSE = auto()
    THIS = auto()
    IF = auto()
    ELSE = auto()
    WHILE = auto()
    RETURN = auto()
    FORK = auto()
    RT = auto()
    STATIC = auto()
    INT = auto()
    FLOAT = auto()
    BOOLEAN = auto()
    VOID = auto()
    RHANDLE = auto()          # 'RHandle'
    HEAP = auto()
    IMMORTAL = auto()
    INITIAL_REGION = auto()   # 'initialRegion'
    LT = auto()
    VT = auto()
    NORT = auto()             # 'NoRT'

    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LANGLE = auto()
    RANGLE = auto()
    COMMA = auto()
    SEMI = auto()
    DOT = auto()
    COLON = auto()
    ASSIGN = auto()

    # operators
    EQ = auto()
    NE = auto()
    LE = auto()
    GE = auto()
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    AND_AND = auto()
    OR_OR = auto()
    BANG = auto()

    EOF = auto()


KEYWORDS = {
    "class": TokenKind.CLASS,
    "extends": TokenKind.EXTENDS,
    "where": TokenKind.WHERE,
    "owns": TokenKind.OWNS,
    "outlives": TokenKind.OUTLIVES,
    "regionKind": TokenKind.REGION_KIND,
    "accesses": TokenKind.ACCESSES,
    "new": TokenKind.NEW,
    "null": TokenKind.NULL,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "this": TokenKind.THIS,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "return": TokenKind.RETURN,
    "fork": TokenKind.FORK,
    "RT": TokenKind.RT,
    "static": TokenKind.STATIC,
    "int": TokenKind.INT,
    "float": TokenKind.FLOAT,
    "boolean": TokenKind.BOOLEAN,
    "void": TokenKind.VOID,
    "RHandle": TokenKind.RHANDLE,
    "heap": TokenKind.HEAP,
    "immortal": TokenKind.IMMORTAL,
    "initialRegion": TokenKind.INITIAL_REGION,
    "LT": TokenKind.LT,
    "VT": TokenKind.VT,
    "NoRT": TokenKind.NORT,
}

# Names of the built-in owner kinds (Figure 4).  They are lexed as plain
# identifiers and resolved by the parser/kind layer so user code may still
# use them as (discouraged) variable names.
BUILTIN_KIND_NAMES = frozenset({
    "Owner", "ObjOwner", "Region", "GCRegion", "NoGCRegion",
    "LocalRegion", "SharedRegion",
})


class Token(NamedTuple):
    """A NamedTuple (not a dataclass) — the lexer allocates one per
    token, and tuple construction is several times cheaper."""

    kind: TokenKind
    text: str
    span: Span

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
