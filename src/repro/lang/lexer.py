"""Hand-written lexer for the core language."""

from __future__ import annotations

from typing import List

from ..errors import LexError
from ..source import Position, Span
from .tokens import KEYWORDS, Token, TokenKind

_PUNCT2 = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND_AND,
    "||": TokenKind.OR_OR,
}

_PUNCT1 = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.BANG,
}


_ASCII_DIGITS = "0123456789"


def _is_digit(ch: str) -> bool:
    """ASCII decimal digits only — unicode "digits" like '¹' satisfy
    str.isdigit() but are not valid literals.  ``ch`` may be the empty
    string (end of input)."""
    return len(ch) == 1 and ch in _ASCII_DIGITS


class Lexer:
    """Converts core-language source text into a token stream."""

    def __init__(self, text: str, filename: str = "<input>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _here(self) -> Position:
        return Position(self.line, self.col)

    def _span(self, start: Position) -> Span:
        return Span(start, self._here(), self.filename)

    # -- scanning -----------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._here()
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.text):
                        raise LexError("unterminated block comment",
                                       self._span(start))
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        start = self._here()
        begin = self.pos
        while _is_digit(self._peek()):
            self._advance()
        is_float = False
        if self._peek() == "." and _is_digit(self._peek(1)):
            is_float = True
            self._advance()
            while _is_digit(self._peek()):
                self._advance()
        if self._peek() in "eE" and (
                _is_digit(self._peek(1))
                or (self._peek(1) in "+-" and _is_digit(self._peek(2)))):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while _is_digit(self._peek()):
                self._advance()
        text = self.text[begin:self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, self._span(start))

    def _lex_word(self) -> Token:
        start = self._here()
        begin = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.text[begin:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, self._span(start))

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self._here()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self._span(start))
        ch = self._peek()
        if _is_digit(ch):
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        two = ch + self._peek(1)
        if two in _PUNCT2:
            self._advance()
            self._advance()
            return Token(_PUNCT2[two], two, self._span(start))
        if ch in _PUNCT1:
            self._advance()
            return Token(_PUNCT1[ch], ch, self._span(start))
        raise LexError(f"unexpected character {ch!r}", self._span(start))

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out


def tokenize(text: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``text``, returning a list ending in an EOF token."""
    return Lexer(text, filename).tokens()
