"""Lexer for the core language.

``tokenize`` is a single-pass scanner driven by one master regular
expression (one ``re.match`` per token instead of one Python-level loop
iteration per *character*, which made the old hand-written scanner the
dominant cost of ``analyze()``).  The token stream, spans, and error
behavior are identical to the original character-at-a-time
:class:`Lexer`, which is kept below as the executable specification and
for callers that want incremental ``next_token`` scanning.

``tokenize`` also accepts a start line/column so a *slice* of a larger
file (a class-declaration chunk, as cut by
:mod:`repro.core.cache`) can be lexed with spans expressed in the
coordinates of the enclosing file.
"""

from __future__ import annotations

import re
from typing import List

from ..errors import LexError
from ..source import Position, Span
from .tokens import KEYWORDS, Token, TokenKind

_PUNCT2 = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND_AND,
    "||": TokenKind.OR_OR,
}

_PUNCT1 = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.BANG,
}


# Number classes are ASCII-only ([0-9], not \d): unicode decimal digits
# like ARABIC-INDIC ZERO satisfy \d but are not valid literals.  Word
# start is "word character that is not a decimal digit" — the unicode
# letters the old scanner's str.isalpha() admitted — with a post-check
# for the few non-ASCII \w characters (e.g. '¹') that isalpha() rejects;
# word continuation \w matches isalnum()-or-underscore exactly.
_MASTER_RE = re.compile(
    r"""
      [ \t\r\n]+                                      # whitespace
    | //[^\n]*                                        # line comment
    | /\*[^*]*(?:\*(?!/)[^*]*)*\*/                    # block comment
    | (?P<float>[0-9]+\.[0-9]+(?:[eE][+-]?[0-9]+)?
               |[0-9]+[eE][+-]?[0-9]+)
    | (?P<int>[0-9]+)
    | (?P<word>[^\W\d]\w*)
    | (?P<p2>==|!=|<=|>=|&&|\|\|)
    | (?P<p1>[(){}<>,;.:=+\-*/%!])
    """,
    re.VERBOSE,
)


def tokenize(text: str, filename: str = "<input>",
             start_line: int = 1, start_col: int = 1) -> List[Token]:
    """Tokenize ``text``, returning a list ending in an EOF token.

    ``start_line``/``start_col`` place the first character of ``text``
    at that position, so chunk slices lex to full-file coordinates.
    """
    tokens: List[Token] = []
    append = tokens.append
    scan = _MASTER_RE.match
    keyword_get = KEYWORDS.get
    pos = 0
    n = len(text)
    line = start_line
    # Column of position p is p - line_start + 1; the initial value
    # offsets the first line so position 0 lands on start_col.
    line_start = 1 - start_col
    while pos < n:
        match = scan(text, pos)
        if match is None:
            here = Position(line, pos - line_start + 1)
            raise LexError(f"unexpected character {text[pos]!r}",
                           Span(here, here, filename))
        end = match.end()
        group = match.lastgroup
        if group is None:
            # trivia — only whitespace and block comments span lines
            seg = match[0]
            if "\n" in seg:
                line += seg.count("\n")
                line_start = match.start() + seg.rindex("\n") + 1
            pos = end
            continue
        tok_text = match[0]
        col = pos - line_start + 1
        if group == "word":
            first = tok_text[0]
            if first >= "\x80" and not first.isalpha():
                here = Position(line, col)
                raise LexError(f"unexpected character {first!r}",
                               Span(here, here, filename))
            kind = keyword_get(tok_text, TokenKind.IDENT)
        elif group == "int":
            kind = TokenKind.INT_LIT
        elif group == "float":
            kind = TokenKind.FLOAT_LIT
        elif group == "p1":
            if tok_text == "/" and end < n and text[end] == "*":
                # a terminated comment would have matched above
                start_p = Position(line, col)
                raise LexError(
                    "unterminated block comment",
                    Span(start_p, Position(line, col + 2), filename))
            kind = _PUNCT1[tok_text]
        else:
            kind = _PUNCT2[tok_text]
        span = Span(Position(line, col),
                    Position(line, col + end - pos), filename)
        append(Token(kind, tok_text, span))
        pos = end
    here = Position(line, n - line_start + 1)
    append(Token(TokenKind.EOF, "", Span(here, here, filename)))
    return tokens


_ASCII_DIGITS = "0123456789"


def _is_digit(ch: str) -> bool:
    """ASCII decimal digits only — unicode "digits" like '¹' satisfy
    str.isdigit() but are not valid literals.  ``ch`` may be the empty
    string (end of input)."""
    return len(ch) == 1 and ch in _ASCII_DIGITS


class Lexer:
    """Character-at-a-time reference scanner.

    Kept as the executable specification of the token grammar (the
    regex-driven :func:`tokenize` above must stay behaviorally
    identical — the property tests compare the two) and for incremental
    ``next_token`` use."""

    def __init__(self, text: str, filename: str = "<input>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _here(self) -> Position:
        return Position(self.line, self.col)

    def _span(self, start: Position) -> Span:
        return Span(start, self._here(), self.filename)

    # -- scanning -----------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._here()
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.text):
                        raise LexError("unterminated block comment",
                                       self._span(start))
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        start = self._here()
        begin = self.pos
        while _is_digit(self._peek()):
            self._advance()
        is_float = False
        if self._peek() == "." and _is_digit(self._peek(1)):
            is_float = True
            self._advance()
            while _is_digit(self._peek()):
                self._advance()
        if self._peek() in "eE" and (
                _is_digit(self._peek(1))
                or (self._peek(1) in "+-" and _is_digit(self._peek(2)))):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while _is_digit(self._peek()):
                self._advance()
        text = self.text[begin:self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, self._span(start))

    def _lex_word(self) -> Token:
        start = self._here()
        begin = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.text[begin:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, self._span(start))

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self._here()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self._span(start))
        ch = self._peek()
        if _is_digit(ch):
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        two = ch + self._peek(1)
        if two in _PUNCT2:
            self._advance()
            self._advance()
            return Token(_PUNCT2[two], two, self._span(start))
        if ch in _PUNCT1:
            self._advance()
            return Token(_PUNCT1[ch], ch, self._span(start))
        raise LexError(f"unexpected character {ch!r}", self._span(start))

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out
