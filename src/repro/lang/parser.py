"""Recursive-descent parser for the core language.

One token of lookahead everywhere except two bounded backtracking points:
local-declaration-vs-expression statements (``TNode<this, o> n = ...`` vs
``n.f = ...``) and explicit method owner arguments (``v.mn<o1>(x)`` vs a
``<`` comparison), both resolved by trying the declaration/owner-list parse
first and rolling back on failure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from ..source import Span
from . import ast
from .lexer import tokenize
from .tokens import BUILTIN_KIND_NAMES, Token, TokenKind

#: Intrinsic functions understood by the interpreter.
BUILTIN_FUNCTIONS = frozenset({
    "print", "io", "yieldnow", "sqrt", "itof", "ftoi", "check",
})

#: Built-in classes (simulated primitive arrays); their ``new`` takes a
#: length argument and they cannot be user-defined.
BUILTIN_CLASSES = frozenset({"IntArray", "FloatArray"})

_PRIM_TYPE_TOKENS = {
    TokenKind.INT: "int",
    TokenKind.FLOAT: "float",
    TokenKind.BOOLEAN: "boolean",
    TokenKind.VOID: "void",
}

_SPECIAL_OWNER_TOKENS = {
    TokenKind.THIS: "this",
    TokenKind.HEAP: "heap",
    TokenKind.IMMORTAL: "immortal",
    TokenKind.INITIAL_REGION: "initialRegion",
    TokenKind.RT: "RT",
}

_BINARY_LEVELS: List[List[Tuple[TokenKind, str]]] = [
    [(TokenKind.OR_OR, "||")],
    [(TokenKind.AND_AND, "&&")],
    [(TokenKind.EQ, "=="), (TokenKind.NE, "!=")],
    [(TokenKind.LANGLE, "<"), (TokenKind.RANGLE, ">"),
     (TokenKind.LE, "<="), (TokenKind.GE, ">=")],
    [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
    [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"),
     (TokenKind.PERCENT, "%")],
]

#: token kind -> (binding power, operator text); higher binds tighter
_BIN_PREC = {kind: (level, op)
             for level, tier in enumerate(_BINARY_LEVELS)
             for kind, op in tier}


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<input>",
                 source_text: str = ""):
        self.tokens = tokens
        self.index = 0
        self.filename = filename
        self.source_text = source_text

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        # the EOF token is always last and _advance never moves past it,
        # so offset-0 peeks (the overwhelmingly common case) need no
        # bounds check
        if offset:
            i = min(self.index + offset, len(self.tokens) - 1)
            return self.tokens[i]
        return self.tokens[self.index]

    def _at(self, kind: TokenKind) -> bool:
        return self.tokens[self.index].kind is kind

    def _advance(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind is not TokenKind.EOF:
            self.index += 1
        return tok

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        if self._at(kind):
            return self._advance()
        tok = self._peek()
        wanted = what or kind.name
        raise ParseError(f"expected {wanted}, found {tok.text!r}", tok.span)

    def _span_from(self, start: Span) -> Span:
        prev = self.tokens[max(self.index - 1, 0)]
        return start.merge(prev.span)

    # ------------------------------------------------------------------
    # program / declarations
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        classes: List[ast.ClassDecl] = []
        region_kinds: List[ast.RegionKindDecl] = []
        main_stmts: List[ast.Stmt] = []
        main_span = self._peek().span
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.CLASS):
                classes.append(self.parse_class_decl())
            elif self._at(TokenKind.REGION_KIND):
                region_kinds.append(self.parse_region_kind_decl())
            else:
                main_stmts.append(self.parse_stmt())
        main = ast.Block(main_stmts, main_span) if main_stmts else None
        return ast.Program(classes, region_kinds, main,
                           filename=self.filename,
                           source_text=self.source_text)

    def parse_class_decl(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.CLASS).span
        name = self._expect(TokenKind.IDENT, "class name").text
        # owner formals are optional: Section 2.5 defaults supply a single
        # `Owner` formal for unannotated classes
        formals: List[ast.FormalAst] = []
        if self._at(TokenKind.LANGLE):
            formals = self._parse_formal_list()
        superclass = None
        if self._accept(TokenKind.EXTENDS):
            superclass = self._parse_class_type()
        constraints = self._parse_where_clause()
        self._expect(TokenKind.LBRACE)
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        while not self._at(TokenKind.RBRACE):
            member = self._parse_class_member()
            if isinstance(member, ast.FieldDecl):
                fields.append(member)
            else:
                methods.append(member)
        self._expect(TokenKind.RBRACE)
        return ast.ClassDecl(name, formals, superclass, constraints,
                             fields, methods, self._span_from(start))

    def _parse_class_member(self):
        start = self._peek().span
        static = self._accept(TokenKind.STATIC) is not None
        declared_type = self.parse_type()
        name = self._expect(TokenKind.IDENT, "member name").text
        if not static and (self._at(TokenKind.LPAREN)
                           or self._at(TokenKind.LANGLE)):
            return self._parse_method_rest(declared_type, name, start)
        init = None
        if self._accept(TokenKind.ASSIGN):
            init = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.FieldDecl(declared_type, name, static, init,
                             self._span_from(start))

    def _parse_method_rest(self, return_type: ast.TypeAst, name: str,
                           start: Span) -> ast.MethodDecl:
        formals: List[ast.FormalAst] = []
        if self._at(TokenKind.LANGLE):
            formals = self._parse_formal_list()
        self._expect(TokenKind.LPAREN)
        params: List[Tuple[ast.TypeAst, str]] = []
        while not self._at(TokenKind.RPAREN):
            if params:
                self._expect(TokenKind.COMMA)
            ptype = self.parse_type()
            pname = self._expect(TokenKind.IDENT, "parameter name").text
            params.append((ptype, pname))
        self._expect(TokenKind.RPAREN)
        effects: Optional[List[ast.OwnerAst]] = None
        if self._accept(TokenKind.ACCESSES):
            effects = [self.parse_owner()]
            while self._accept(TokenKind.COMMA):
                effects.append(self.parse_owner())
        constraints = self._parse_where_clause()
        body = self.parse_block()
        return ast.MethodDecl(return_type, name, formals, params, effects,
                              constraints, body, self._span_from(start))

    def parse_region_kind_decl(self) -> ast.RegionKindDecl:
        start = self._expect(TokenKind.REGION_KIND).span
        name = self._expect(TokenKind.IDENT, "region kind name").text
        formals: List[ast.FormalAst] = []
        if self._at(TokenKind.LANGLE):
            formals = self._parse_formal_list()
        self._expect(TokenKind.EXTENDS)
        superkind = self.parse_kind()
        constraints = self._parse_where_clause()
        self._expect(TokenKind.LBRACE)
        portals: List[ast.FieldDecl] = []
        subregions: List[ast.SubregionDecl] = []
        while not self._at(TokenKind.RBRACE):
            member = self._parse_region_member()
            if isinstance(member, ast.FieldDecl):
                portals.append(member)
            else:
                subregions.append(member)
        self._expect(TokenKind.RBRACE)
        return ast.RegionKindDecl(name, formals, superkind, constraints,
                                  portals, subregions,
                                  self._span_from(start))

    def _parse_region_member(self):
        """A portal field ``t fd;`` or a subregion declaration
        ``srkind [: LT(size)|: VT] [RT|NoRT] rsub;``.

        A member is a subregion iff its "type" is a bare identifier that is
        not followed by owner arguments typical of class types — we decide
        by what follows the name: portal fields use class/prim types, while
        subregions may carry a policy/RT marker.  To keep the grammar
        unambiguous, a member whose declared type is a ``ClassTypeAst``
        naming a *region kind* is resolved as a subregion later; here we
        dispatch purely syntactically on the presence of ``:``/``RT``/
        ``NoRT`` or rely on the semantic layer.  We use the syntactic rule:
        if after the leading identifier (with optional ``<owners>``) comes
        ``:``, ``RT`` or ``NoRT``, or the identifier is a known kind name,
        it is a subregion; otherwise if the next-next token is ``;`` and the
        name starts lowercase it is still ambiguous, so the semantic layer
        (program table construction) reclassifies portal fields whose type
        names a region kind.
        """
        start = self._peek().span
        declared_type = self.parse_type()
        if (self._at(TokenKind.COLON) or self._at(TokenKind.RT)
                or self._at(TokenKind.NORT)):
            if not isinstance(declared_type, ast.ClassTypeAst):
                raise ParseError("subregion declaration requires a region "
                                 "kind name", self._peek().span)
            kind = ast.KindAst(declared_type.name, declared_type.owners,
                               False, declared_type.span)
            policy = ast.PolicyAst("VT", span=start)
            if self._accept(TokenKind.COLON):
                policy = self._parse_policy()
            realtime = False
            if self._accept(TokenKind.RT):
                realtime = True
            elif self._accept(TokenKind.NORT):
                realtime = False
            name = self._expect(TokenKind.IDENT, "subregion name").text
            self._expect(TokenKind.SEMI)
            return ast.SubregionDecl(kind, policy, realtime, name,
                                     self._span_from(start))
        name = self._expect(TokenKind.IDENT, "portal or subregion name").text
        self._expect(TokenKind.SEMI)
        return ast.FieldDecl(declared_type, name, False, None,
                             self._span_from(start))

    def _parse_formal_list(self) -> List[ast.FormalAst]:
        self._expect(TokenKind.LANGLE)
        formals = [self._parse_formal()]
        while self._accept(TokenKind.COMMA):
            formals.append(self._parse_formal())
        self._expect(TokenKind.RANGLE)
        return formals

    def _parse_formal(self) -> ast.FormalAst:
        start = self._peek().span
        kind = self.parse_kind()
        name = self._expect(TokenKind.IDENT, "owner formal name").text
        return ast.FormalAst(kind, name, self._span_from(start))

    def parse_kind(self) -> ast.KindAst:
        """``Owner | ObjOwner | Region | ... | srkn<owners>``, with an
        optional ``:LT`` refinement."""
        start = self._peek().span
        name = self._expect(TokenKind.IDENT, "owner kind").text
        args: Tuple[ast.OwnerAst, ...] = ()
        if name not in BUILTIN_KIND_NAMES and self._at(TokenKind.LANGLE):
            args = tuple(self._parse_owner_args())
        lt = False
        if self._at(TokenKind.COLON) and self._peek(1).kind is TokenKind.LT:
            self._advance()
            self._advance()
            lt = True
        return ast.KindAst(name, args, lt, self._span_from(start))

    def _parse_policy(self) -> ast.PolicyAst:
        start = self._peek().span
        if self._accept(TokenKind.VT):
            return ast.PolicyAst("VT", span=start)
        self._expect(TokenKind.LT, "'LT' or 'VT'")
        self._expect(TokenKind.LPAREN)
        size = int(self._expect(TokenKind.INT_LIT, "LT region size").text)
        self._expect(TokenKind.RPAREN)
        return ast.PolicyAst("LT", size, self._span_from(start))

    def _parse_where_clause(self) -> List[ast.ConstraintAst]:
        constraints: List[ast.ConstraintAst] = []
        if self._accept(TokenKind.WHERE):
            constraints.append(self._parse_constraint())
            while self._accept(TokenKind.COMMA):
                constraints.append(self._parse_constraint())
        return constraints

    def _parse_constraint(self) -> ast.ConstraintAst:
        start = self._peek().span
        left = self.parse_owner()
        if self._accept(TokenKind.OWNS):
            relation = "owns"
        else:
            self._expect(TokenKind.OUTLIVES, "'owns' or 'outlives'")
            relation = "outlives"
        right = self.parse_owner()
        return ast.ConstraintAst(relation, left, right,
                                 self._span_from(start))

    # ------------------------------------------------------------------
    # types and owners
    # ------------------------------------------------------------------

    def parse_type(self) -> ast.TypeAst:
        tok = self._peek()
        if tok.kind in _PRIM_TYPE_TOKENS:
            self._advance()
            return ast.PrimTypeAst(_PRIM_TYPE_TOKENS[tok.kind], tok.span)
        if tok.kind is TokenKind.RHANDLE:
            self._advance()
            self._expect(TokenKind.LANGLE)
            region = self.parse_owner()
            self._expect(TokenKind.RANGLE)
            return ast.HandleTypeAst(region, tok.span)
        return self._parse_class_type()

    def _parse_class_type(self) -> ast.ClassTypeAst:
        tok = self._expect(TokenKind.IDENT, "type name")
        owners: Tuple[ast.OwnerAst, ...] = ()
        if self._at(TokenKind.LANGLE):
            owners = tuple(self._parse_owner_args())
        return ast.ClassTypeAst(tok.text, owners, tok.span)

    def _parse_owner_args(self) -> List[ast.OwnerAst]:
        self._expect(TokenKind.LANGLE)
        owners = [self.parse_owner()]
        while self._accept(TokenKind.COMMA):
            owners.append(self.parse_owner())
        self._expect(TokenKind.RANGLE)
        return owners

    def parse_owner(self) -> ast.OwnerAst:
        tok = self._peek()
        if tok.kind in _SPECIAL_OWNER_TOKENS:
            self._advance()
            return ast.OwnerAst(_SPECIAL_OWNER_TOKENS[tok.kind], tok.span)
        ident = self._expect(TokenKind.IDENT, "owner")
        return ast.OwnerAst(ident.text, ident.span)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE).span
        stmts: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            stmts.append(self.parse_stmt())
        self._expect(TokenKind.RBRACE)
        return ast.Block(stmts, self._span_from(start))

    def parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.LBRACE:
            return self.parse_block()
        if tok.kind is TokenKind.IF:
            return self._parse_if()
        if tok.kind is TokenKind.WHILE:
            return self._parse_while()
        if tok.kind is TokenKind.RETURN:
            return self._parse_return()
        if tok.kind is TokenKind.FORK:
            return self._parse_fork(realtime=False)
        if tok.kind is TokenKind.RT:
            start = self._advance().span
            self._expect(TokenKind.FORK, "'fork' after 'RT'")
            return self._parse_fork_rest(realtime=True, start=start)
        if tok.kind is TokenKind.LPAREN:
            return self._parse_region_stmt()
        if tok.kind in _PRIM_TYPE_TOKENS or tok.kind is TokenKind.RHANDLE:
            return self._parse_local_decl()
        if tok.kind is TokenKind.IDENT:
            decl = self._try_parse_local_decl()
            if decl is not None:
                return decl
        return self._parse_expr_or_assign_stmt()

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.IF).span
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self.parse_block()
        else_body = None
        if self._accept(TokenKind.ELSE):
            if self._at(TokenKind.IF):
                nested = self._parse_if()
                else_body = ast.Block([nested], nested.span)
            else:
                else_body = self.parse_block()
        return ast.If(cond, then_body, else_body, self._span_from(start))

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenKind.WHILE).span
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.While(cond, body, self._span_from(start))

    def _parse_return(self) -> ast.Return:
        start = self._expect(TokenKind.RETURN).span
        value = None
        if not self._at(TokenKind.SEMI):
            value = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.Return(value, self._span_from(start))

    def _parse_fork(self, realtime: bool) -> ast.Fork:
        start = self._expect(TokenKind.FORK).span
        return self._parse_fork_rest(realtime, start)

    def _parse_fork_rest(self, realtime: bool, start: Span) -> ast.Fork:
        call = self.parse_expr()
        if not isinstance(call, ast.Invoke):
            raise ParseError("fork requires a method invocation",
                             self._span_from(start))
        self._expect(TokenKind.SEMI)
        return ast.Fork(call, realtime, self._span_from(start))

    def _parse_region_stmt(self) -> ast.Stmt:
        """Region creation or subregion entry:

        * ``(RHandle<r> h) { ... }``
        * ``(RHandle<Kind : LT(100) r> h) { ... }``
        * ``(RHandle<[Kind] r2> h2 = [new] h.sub) { ... }``
        """
        start = self._expect(TokenKind.LPAREN).span
        self._expect(TokenKind.RHANDLE, "'RHandle'")
        self._expect(TokenKind.LANGLE)
        kind: Optional[ast.KindAst] = None
        policy: Optional[ast.PolicyAst] = None
        first = self._expect(TokenKind.IDENT, "region kind or region name")
        if self._at(TokenKind.RANGLE):
            region_name = first.text
        else:
            args: Tuple[ast.OwnerAst, ...] = ()
            if self._at(TokenKind.LANGLE):
                args = tuple(self._parse_owner_args())
            if self._accept(TokenKind.COLON):
                policy = self._parse_policy()
            kind = ast.KindAst(first.text, args, False, first.span)
            region_name = self._expect(TokenKind.IDENT, "region name").text
        self._expect(TokenKind.RANGLE)
        handle_name = self._expect(TokenKind.IDENT, "handle name").text
        if self._accept(TokenKind.ASSIGN):
            fresh = self._accept(TokenKind.NEW) is not None
            parent = self._parse_postfix(self._parse_primary())
            if not isinstance(parent, ast.FieldRead):
                raise ParseError(
                    "subregion entry requires 'handle.subregion'",
                    self._span_from(start))
            self._expect(TokenKind.RPAREN)
            body = self.parse_block()
            return ast.SubregionStmt(kind, region_name, handle_name,
                                     parent.target, parent.field_name,
                                     fresh, body, self._span_from(start))
        self._expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.RegionStmt(kind, policy, region_name, handle_name, body,
                              self._span_from(start))

    def _parse_local_decl(self) -> ast.LocalDecl:
        start = self._peek().span
        declared_type = self.parse_type()
        name = self._expect(TokenKind.IDENT, "variable name").text
        init = None
        if self._accept(TokenKind.ASSIGN):
            init = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.LocalDecl(declared_type, name, init,
                             self._span_from(start))

    def _try_parse_local_decl(self) -> Optional[ast.LocalDecl]:
        """Backtracking disambiguation of ``T<o> v = e;`` vs expressions."""
        if self._peek(1).kind is TokenKind.IDENT:
            return self._parse_local_decl()
        if self._peek(1).kind is not TokenKind.LANGLE:
            return None
        saved = self.index
        try:
            return self._parse_local_decl()
        except ParseError:
            self.index = saved
            return None

    def _parse_expr_or_assign_stmt(self) -> ast.Stmt:
        start = self._peek().span
        expr = self.parse_expr()
        if self._accept(TokenKind.ASSIGN):
            value = self.parse_expr()
            self._expect(TokenKind.SEMI)
            span = self._span_from(start)
            if isinstance(expr, ast.VarRef):
                return ast.AssignLocal(expr.name, value, span)
            if isinstance(expr, ast.FieldRead):
                return ast.AssignField(expr.target, expr.field_name, value,
                                       span)
            raise ParseError("invalid assignment target", span)
        self._expect(TokenKind.SEMI)
        return ast.ExprStmt(expr, self._span_from(start))

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_binary_rhs(self._parse_unary(), 0)

    def _parse_binary_rhs(self, left: ast.Expr,
                          min_prec: int) -> ast.Expr:
        # precedence climbing over _BIN_PREC instead of one recursion
        # level per precedence tier; all operators are left-associative,
        # so the trees are identical to the old ladder's
        prec_map = _BIN_PREC
        tokens = self.tokens
        while True:
            entry = prec_map.get(tokens[self.index].kind)
            if entry is None or entry[0] < min_prec:
                return left
            prec, op = entry
            self._advance()
            right = self._parse_unary()
            while True:
                nxt = prec_map.get(tokens[self.index].kind)
                if nxt is None or nxt[0] <= prec:
                    break
                right = self._parse_binary_rhs(right, nxt[0])
            left = ast.Binary(op, left, right,
                              left.span.merge(right.span))

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.BANG:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary("!", operand, tok.span.merge(operand.span))
        if tok.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary("-", operand, tok.span.merge(operand.span))
        return self._parse_postfix(self._parse_primary())

    def _parse_postfix(self, expr: ast.Expr) -> ast.Expr:
        while self._at(TokenKind.DOT):
            self._advance()
            name = self._expect(TokenKind.IDENT, "member name").text
            if self._at(TokenKind.LPAREN):
                args = self._parse_call_args()
                expr = ast.Invoke(expr, name, (), args,
                                  self._span_from(expr.span))
            elif self._at(TokenKind.LANGLE):
                owner_args = self._try_parse_owner_call(expr, name)
                if owner_args is None:
                    expr = ast.FieldRead(expr, name,
                                         self._span_from(expr.span))
                    return expr  # '<' is a comparison; stop postfix chain
                expr = owner_args
            else:
                expr = ast.FieldRead(expr, name, self._span_from(expr.span))
        return expr

    def _try_parse_owner_call(self, target: ast.Expr,
                              name: str) -> Optional[ast.Invoke]:
        """Parse ``.mn<o1, ...>(args)``; rolls back if the ``<`` turns out
        to be a comparison operator."""
        saved = self.index
        try:
            owners = tuple(self._parse_owner_args())
            if not self._at(TokenKind.LPAREN):
                raise ParseError("not an owner-instantiated call",
                                 self._peek().span)
        except ParseError:
            self.index = saved
            return None
        args = self._parse_call_args()
        return ast.Invoke(target, name, owners, args,
                          self._span_from(target.span))

    def _parse_call_args(self) -> Tuple[ast.Expr, ...]:
        self._expect(TokenKind.LPAREN)
        args: List[ast.Expr] = []
        while not self._at(TokenKind.RPAREN):
            if args:
                self._expect(TokenKind.COMMA)
            args.append(self.parse_expr())
        self._expect(TokenKind.RPAREN)
        return tuple(args)

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(int(tok.text), tok.span)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(float(tok.text), tok.span)
        if tok.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(True, tok.span)
        if tok.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(False, tok.span)
        if tok.kind is TokenKind.NULL:
            self._advance()
            return ast.NullLit(tok.span)
        if tok.kind is TokenKind.THIS:
            self._advance()
            return ast.ThisRef(tok.span)
        if tok.kind is TokenKind.NEW:
            return self._parse_new()
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if tok.text in BUILTIN_FUNCTIONS and self._at(TokenKind.LPAREN):
                args = self._parse_call_args()
                return ast.BuiltinCall(tok.text, args,
                                       self._span_from(tok.span))
            return ast.VarRef(tok.text, tok.span)
        raise ParseError(f"unexpected token {tok.text!r} in expression",
                         tok.span)

    def _parse_new(self) -> ast.NewExpr:
        start = self._expect(TokenKind.NEW).span
        name = self._expect(TokenKind.IDENT, "class name").text
        owners: Tuple[ast.OwnerAst, ...] = ()
        if self._at(TokenKind.LANGLE):
            owners = tuple(self._parse_owner_args())
        args: Tuple[ast.Expr, ...] = ()
        if self._at(TokenKind.LPAREN):
            args = self._parse_call_args()
        return ast.NewExpr(name, owners, args, self._span_from(start))


def parse_program(text: str, filename: str = "<input>",
                  start_line: int = 1,
                  start_col: int = 1) -> ast.Program:
    """Parse a full core-language program from source text.

    ``start_line``/``start_col`` place the first character of ``text``
    at that position — used by the incremental analysis cache to parse
    a class-declaration *slice* of a file with full-file spans."""
    tokens = tokenize(text, filename, start_line, start_col)
    return Parser(tokens, filename, text).parse_program()
