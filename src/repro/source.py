"""Source positions and spans for diagnostics.

Every token, AST node, and diagnostic carries a :class:`Span` so that type
errors point back at the offending line of the core-language program, exactly
the way the paper's checker reports errors against Java source.

Both classes are ``NamedTuple``s rather than frozen dataclasses: the lexer
creates three of them per token, and tuple construction is several times
cheaper than a frozen-dataclass ``__init__`` (which goes through
``object.__setattr__`` per field).  They remain immutable, hashable, and
structurally comparable; ordering a :class:`Position` compares
``(line, column)`` lexicographically.
"""

from __future__ import annotations

from typing import NamedTuple


class Position(NamedTuple):
    """A single point in a source file (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class Span(NamedTuple):
    """A contiguous range of source text, used to anchor diagnostics."""

    start: Position
    end: Position
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    @staticmethod
    def unknown() -> "Span":
        return Span(Position(0, 0), Position(0, 0), "<unknown>")

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        return Span(min(self.start, other.start),
                    max(self.end, other.end), self.filename)


def excerpt(text: str, span: Span, context: int = 0) -> str:
    """Return the source line(s) covered by ``span`` for error messages."""
    lines = text.splitlines()
    lo = max(span.start.line - 1 - context, 0)
    hi = min(span.end.line + context, len(lines))
    return "\n".join(lines[lo:hi])
