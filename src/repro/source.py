"""Source positions and spans for diagnostics.

Every token, AST node, and diagnostic carries a :class:`Span` so that type
errors point back at the offending line of the core-language program, exactly
the way the paper's checker reports errors against Java source.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A single point in a source file (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A contiguous range of source text, used to anchor diagnostics."""

    start: Position
    end: Position
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    @staticmethod
    def unknown() -> "Span":
        return Span(Position(0, 0), Position(0, 0), "<unknown>")

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        lo = min((self.start.line, self.start.column),
                 (other.start.line, other.start.column))
        hi = max((self.end.line, self.end.column),
                 (other.end.line, other.end.column))
        return Span(Position(*lo), Position(*hi), self.filename)


def excerpt(text: str, span: Span, context: int = 0) -> str:
    """Return the source line(s) covered by ``span`` for error messages."""
    lines = text.splitlines()
    lo = max(span.start.line - 1 - context, 0)
    hi = min(span.end.line + context, len(lines))
    return "\n".join(lines[lo:hi])
