"""Command-line front end: ``python -m repro <command> <file>``.

Commands
--------

``check``      typecheck a core-language program and report diagnostics
``run``        typecheck and execute on the simulated RTSJ platform
``profile``    run and report per-category / per-region / per-site cycles
``translate``  emit the Section 2.6 pseudo-RTSJ-Java erasure
``infer``      print the program after Section 2.5 defaults + inference
``graph``      run and emit the Figure 6 ownership graph as Graphviz dot
``bench``      wall-clock benchmarks: interpreter and static frontend
               (CI regression gates)
``chaos``      seeded fault-injection campaign over the example corpus
               with sanitizer + deterministic replay verification
``inspect``    post-mortem analysis of a flight-recorder dump: region
               timelines, leak suspects, portal contention, and the
               check-elimination ledger (Figure 12)
``metricsd``   serve the telemetry store over HTTP: ``/metrics``
               (Prometheus text), ``/healthz``, ``/runs``
``serve``      analysis-as-a-service: POST programs to
               ``/v1/analyze``, ``/v1/run``, ``/v1/inspect`` on a
               pre-forked pool of warm workers (coalescing, batching,
               admission control, per-tenant quotas, deadlines)
``report``     cross-run regression observatory: judge the recorded
               bench history against the committed baselines

Long-lived daemons (``serve``, ``metricsd``, ``run --serve-metrics``)
print a machine-readable ready line naming the actually-bound
host/port *after* the listening socket exists — with ``--port 0`` a
script parses that line and connects immediately, no polling.

Continuous telemetry: ``run``/``profile``/``bench``/``chaos`` accept
``--telemetry`` to append a versioned envelope (stats summary, metric
snapshots, bench timings, chaos taxonomy) to the content-addressed
store under ``.repro/telemetry/``, which ``metricsd`` serves and
``report`` trends.

Inputs are core-language source files; a ``.py`` driver script (like the
ones under ``examples/``) is also accepted — the embedded ``PROGRAM``
string literal is extracted and used as the program.

Exit status is 0 on success, 1 on type errors, 2 on runtime failures.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

import dataclasses

from .core.api import analyze
from .errors import ReproError
from .interp.machine import Machine, RunOptions, execute
from .interp.translate import translate as run_translate
from .lang import pretty_program

#: --backend choices shared by run/profile/bench/chaos (see
#: RunOptions.backend); None = the subcommand's own default
BACKEND_CHOICES = ("interp", "py", "py-fused", "py-faithful", "c")

_EMBEDDED_PROGRAM = re.compile(r'^PROGRAM\s*=\s*r?"""(.*?)"""',
                               re.S | re.M)


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".py"):
        # a Python driver script (examples/*.py): run the embedded
        # core-language program it carries
        match = _EMBEDDED_PROGRAM.search(text)
        if match:
            return match.group(1)
    return text


def _open_cache(args):
    """An :class:`AnalysisCache` backed by ``--analysis-cache DIR``, or
    None when the flag was not given."""
    directory = getattr(args, "analysis_cache", None)
    if not directory:
        return None
    import os

    from .core.cache import AnalysisCache
    return AnalysisCache(os.path.join(directory, "analysis-cache.json"))


def _telemetry_store(args):
    """The :class:`TelemetryStore` for ``--telemetry`` runs, or None
    when telemetry was not requested."""
    store_dir = getattr(args, "telemetry_store", None)
    if not (getattr(args, "telemetry", False) or store_dir):
        return None
    from .obs.telemetry import DEFAULT_STORE, TelemetryStore
    return TelemetryStore(store_dir or DEFAULT_STORE)


def _record_envelope(args, kind: str, **sections) -> None:
    """Append one telemetry envelope when ``--telemetry`` was given.
    Never raises: a full disk must not turn a green run red."""
    store = _telemetry_store(args)
    if store is None:
        return
    from .obs.telemetry import make_envelope
    try:
        sha = store.append(make_envelope(kind, **sections))
    except (OSError, ValueError) as err:
        print(f"telemetry: failed to record envelope: {err}",
              file=sys.stderr)
        return
    print(f"telemetry: recorded {kind} envelope {sha[:12]} "
          f"in {store.root}", file=sys.stderr)


def _observability_overhead(stats, recorder) -> dict:
    """The self-measured observability cost section of an envelope."""
    overhead = {}
    tracer = stats.tracer
    if not tracer.null:
        overhead["tracer_s"] = round(tracer.overhead_s, 6)
        if tracer.sampled_out:
            overhead["trace_sampled_out"] = tracer.sampled_out
            overhead["trace_sample"] = tracer.sample
    if recorder is not None:
        overhead["flightrec_s"] = round(recorder.overhead_s, 6)
        overhead["flight_events_seen"] = recorder.events_seen
        if recorder.sampled_out:
            overhead["flight_sampled_out"] = recorder.sampled_out
            overhead["flight_sample"] = recorder.sample
    return overhead


def _analyze_or_report(source: str, path: str, tracer=None, cache=None,
                       metrics=None):
    analyzed = analyze(source, filename=path, tracer=tracer, cache=cache,
                       metrics=metrics)
    if cache is not None:
        cache.save()
    for err in analyzed.errors:
        print(f"error: {err}", file=sys.stderr)
    return analyzed


def cmd_check(args) -> int:
    analyzed = _analyze_or_report(_read(args.file), args.file)
    if analyzed.errors:
        print(f"{len(analyzed.errors)} error(s)", file=sys.stderr)
        return 1
    classes = len(analyzed.program.classes)
    kinds = len(analyzed.program.region_kinds)
    print(f"{args.file}: well-typed "
          f"({classes} classes, {kinds} region kinds)")
    return 0


def cmd_run(args) -> int:
    from .obs import MetricsRegistry, Tracer, write_metrics, write_trace
    tracing = bool(args.trace_out)
    tracer = Tracer(detailed=tracing)
    metrics = MetricsRegistry()
    analyzed = _analyze_or_report(_read(args.file), args.file,
                                  tracer=tracer if tracing else None,
                                  cache=_open_cache(args),
                                  metrics=metrics)
    if analyzed.errors:
        return 1
    # an explicit compiled backend implies the uninstrumented fast
    # path (the hooks are compiled out) — unless the user also asked
    # for an observability export, which needs live sinks and
    # therefore the interpreter/faithful forms
    wants_obs = bool(args.trace_out or args.metrics_out
                     or args.record_out or args.serve_metrics is not None
                     or getattr(args, "telemetry", None))
    instrument = not (args.backend and args.backend != "interp"
                      and not wants_obs)
    options = RunOptions(checks_enabled=args.dynamic_checks,
                         validate=not args.no_validate,
                         tracer=tracer if instrument else None,
                         metrics=metrics if instrument else None,
                         record=bool(args.record_out),
                         record_capacity=args.record_capacity,
                         trace_sample=args.trace_sample,
                         record_sample=args.record_sample,
                         instrument=instrument,
                         backend=args.backend or "interp")
    machine = Machine(analyzed, options)
    mode = "dynamic" if args.dynamic_checks else "static"
    server = None
    if args.serve_metrics is not None:
        # live scrape endpoint for the duration of the run: /metrics
        # renders the run's own registry on every request
        from .obs.live import TelemetryServer
        store = _telemetry_store(args)
        server = TelemetryServer(store=store, registry=metrics,
                                 port=args.serve_metrics)
        server.serve_background()
        # bound + listening before this prints: the line is the ready
        # signal (stderr so it never mixes with program output), and
        # the only place an ephemeral --serve-metrics 0 port appears
        print(f"REPRO-METRICS-READY host={server.host} "
              f"port={server.port}", file=sys.stderr, flush=True)
        print(f"serving /metrics on http://{server.host}:{server.port}",
              file=sys.stderr)
    failure: Optional[ReproError] = None
    try:
        result = machine.run()
        # a compiled backend bails (instead of raising) on anything it
        # cannot reproduce exactly; re-execute on its declared fallback
        # — same loop as interp.machine.execute, but keeping the final
        # machine visible to the export paths below
        while machine.program_bailed:
            options = dataclasses.replace(
                machine.options, backend=machine.program.fallback_backend)
            machine = Machine(analyzed, options)
            result = machine.run()
    except ReproError as err:
        failure = err
    finally:
        # a crashed run is when the trace is most valuable: export
        # whatever was recorded up to the failure
        if args.trace_out:
            write_trace(machine.stats.tracer, args.trace_out)
        if args.metrics_out:
            write_metrics(machine.stats.metrics, args.metrics_out)
        if args.record_out and machine.recorder is not None:
            from .obs import dump_flight
            dump_flight(machine.recorder, args.record_out, meta={
                "mode": mode,
                "program": args.file,
                "summary": machine.stats.summary(),
            })
        _record_envelope(
            args, "run", label=args.file,
            summary=machine.stats.summary(),
            metrics=metrics.to_dict(),
            flight=(machine.recorder.header()
                    if machine.recorder is not None else None),
            overhead=_observability_overhead(machine.stats,
                                             machine.recorder),
            meta={"mode": mode,
                  "crashed": failure is not None})
        if server is not None:
            server.close()
    if failure is not None:
        print(f"runtime error: {failure}", file=sys.stderr)
        return 2
    for line in result.output:
        print(line)
    if args.stats:
        backend = (machine.program.backend
                   if machine.program is not None else "interp")
        note = (f" [{machine.codegen_fallback}]"
                if machine.codegen_fallback else "")
        print(f"--- {mode}-checks run ({backend}{note}): "
              f"{result.cycles} cycles, "
              f"{result.stats.assignment_checks} assignment checks, "
              f"{result.stats.gc_runs} GCs, "
              f"{result.stats.regions_created} regions",
              file=sys.stderr)
    if args.stats_json:
        payload = {"mode": mode}
        payload.update(result.stats.summary())
        print(json.dumps(payload, sort_keys=True))
    return 0


def cmd_profile(args) -> int:
    from .obs import build_report
    analyzed = _analyze_or_report(_read(args.file), args.file,
                                  cache=_open_cache(args))
    if analyzed.errors:
        return 1
    options = RunOptions(checks_enabled=not args.static_checks,
                         backend=args.backend or "interp")
    try:
        _result, machine = execute(analyzed, options)
    except ReproError as err:
        print(f"runtime error: {err}", file=sys.stderr)
        return 2
    report = build_report(machine.stats, machine.regions.areas)
    _record_envelope(
        args, "profile", label=args.file,
        summary=machine.stats.summary(),
        metrics=machine.stats.metrics.to_dict(),
        meta={"profile": report.to_dict(),
              "mode": ("static" if args.static_checks else "dynamic")})
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format(top=args.top))
    return 0


def cmd_translate(args) -> int:
    analyzed = _analyze_or_report(_read(args.file), args.file)
    if analyzed.errors:
        return 1
    translation = run_translate(analyzed)
    print(translation.java)
    if args.strategies:
        print("// allocation strategies:", file=sys.stderr)
        for site in translation.sites:
            handle = f" via {site.handle}" if site.handle else ""
            print(f"//   line {site.line}: new {site.class_name} -> "
                  f"{site.strategy.name}{handle}", file=sys.stderr)
    return 0


def cmd_infer(args) -> int:
    analyzed = _analyze_or_report(_read(args.file), args.file)
    print(pretty_program(analyzed.program), end="")
    return 1 if analyzed.errors else 0


def cmd_compile(args) -> int:
    from .interp.compile_py import CompileError, compile_to_python
    analyzed = _analyze_or_report(_read(args.file), args.file)
    if analyzed.errors:
        return 1
    try:
        compiled = compile_to_python(analyzed, checks=args.dynamic_checks)
    except CompileError as err:
        print(f"compile error: {err}", file=sys.stderr)
        return 2
    if args.execute:
        for line in compiled.run():
            print(line)
    else:
        print(compiled.source, end="")
    return 0


def cmd_lint(args) -> int:
    from .tools import format_report, lint_effects
    analyzed = _analyze_or_report(_read(args.file), args.file)
    if analyzed.errors:
        return 1
    reports = lint_effects(analyzed)
    print(format_report(reports, only_redundant=not args.all))
    return 0


def cmd_advise(args) -> int:
    from .tools import advise
    analyzed = _analyze_or_report(_read(args.file), args.file)
    if analyzed.errors:
        return 1
    try:
        report = advise(analyzed)
    except ReproError as err:
        print(f"runtime error: {err}", file=sys.stderr)
        return 2
    print(report.format())
    return 0


def _bench_names(args):
    """Validated ``--only`` selection, or None for the full registry.
    Returns (names, error_exit)."""
    names = args.only or None
    if names:
        from .bench.suite import BENCHMARKS
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            print(f"error: unknown benchmark(s) {unknown}; known: "
                  f"{sorted(BENCHMARKS)}", file=sys.stderr)
            return None, 1
    return names, None


def cmd_bench(args) -> int:
    if args.suite == "frontend":
        from .bench import frontend as suite_mod
        if args.only:
            print("error: --only applies to the interp/codegen suites",
                  file=sys.stderr)
            return 1
        payload = suite_mod.measure(repeats=args.repeats,
                                    cache_dir=args.analysis_cache)
    elif args.suite == "codegen":
        from .bench import codegen as suite_mod
        names, err = _bench_names(args)
        if err is not None:
            return err
        # --backend narrows the measured backends; default is every
        # codegen backend (C auto-skips without a toolchain)
        backends = [args.backend] if args.backend else None
        if backends == ["interp"]:
            print("error: the codegen suite measures codegen backends "
                  "against the interpreter; pick py or c",
                  file=sys.stderr)
            return 1
        payload = suite_mod.measure(names, backends=backends,
                                    fast=not args.full,
                                    repeats=args.repeats)
    elif args.suite == "serve":
        from .bench import serve as suite_mod
        names, err = _bench_names(args)
        if err is not None:
            return err
        payload = suite_mod.measure(names, fast=not args.full,
                                    workers=args.serve_workers,
                                    clients=args.serve_clients)
    elif args.suite == "serve-chaos":
        from .bench import serve_chaos as suite_mod
        if args.only:
            print("error: --only applies to the interp/codegen suites",
                  file=sys.stderr)
            return 1
        payload = suite_mod.measure(workers=args.serve_workers,
                                    fast=not args.full)
    else:
        from .bench import wallclock as suite_mod
        names, err = _bench_names(args)
        if err is not None:
            return err
        payload = suite_mod.measure(names, fast=not args.full,
                                    repeats=args.repeats)
    baseline = None
    if args.compare:
        baseline = suite_mod.load_payload(args.compare)
        # the committed payload may carry its own historical baseline
        # section; regressions are judged against the payload itself
    if args.merge_baseline:
        # embed a prior payload as the "baseline" section so the
        # committed artifact itself records the before/after story
        payload["baseline"] = suite_mod.load_payload(args.merge_baseline)
        payload["baseline"].pop("baseline", None)
    elif baseline is not None:
        inherited = baseline.get("baseline")
        if inherited:
            payload["baseline"] = inherited
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(suite_mod.format_table(
            payload, payload.get("baseline") or baseline))
    if args.out:
        suite_mod.save_payload(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    _record_envelope(args, "bench", label=args.suite,
                     bench={"suite": args.suite.replace("-", "_"),
                            "payload": payload})
    if args.suite == "codegen":
        # the equivalence gate: backends promised byte-identical
        # observable behaviour; a divergence is a correctness bug
        gate_failures = list(payload.get("divergences") or [])
        if args.min_speedup:
            gate_backend = args.backend or "py"
            gate_failures += suite_mod.check_min_speedup(
                payload, gate_backend, args.min_speedup)
        if gate_failures:
            for failure in gate_failures:
                print(f"codegen gate: {failure}", file=sys.stderr)
            return 3
    if args.suite == "serve":
        # the load gate: divergences (served != CLI, coalescing
        # miscount, request errors) are correctness bugs; the
        # throughput floor / p99 ceiling come from the payload's own
        # gate block so even a plain --out run must sustain the load
        gate_failures = list(payload.get("divergences") or [])
        gate_failures += suite_mod.check_gate(payload)
        if gate_failures:
            for failure in gate_failures:
                print(f"serve gate: {failure}", file=sys.stderr)
            return 3
    if args.suite == "serve-chaos":
        # the resilience gate: every admitted request answered, byte
        # parity with CLI execution, killed workers respawned, torn
        # shards quarantined, and the whole campaign replays
        # bit-for-bit from its recorded schedule
        gate_failures = list(payload.get("divergences") or [])
        gate_failures += suite_mod.check_gate(payload)
        if gate_failures:
            for failure in gate_failures:
                print(f"serve-chaos gate: {failure}", file=sys.stderr)
            return 3
    if baseline is not None:
        failures = suite_mod.compare(payload, baseline,
                                     threshold=args.threshold)
        if failures:
            for failure in failures:
                print(f"regression: {failure}", file=sys.stderr)
            return 3
        print(f"no regression vs {args.compare} "
              f"(threshold +{args.threshold * 100:.0f}%)",
              file=sys.stderr)
    return 0


def _print_serve_chaos(args, report, replayed: bool = False) -> int:
    from .serve.chaos import campaign_telemetry
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        contract = report.get("contract") or {}
        verb = "replayed" if replayed else "campaign:"
        counts = ", ".join(f"{k}={v}" for k, v in
                           sorted((report.get("faults") or {}).items()))
        print(f"serve {verb} {report['requests']} requests, "
              f"{report['fault_total']} faults ({counts}) in "
              f"{report['wall_s']}s -> {report['status']}")
        print(f"contract: lost={contract.get('lost_requests')} "
              f"parity_breaks={contract.get('parity_failures')} "
              f"respawns={contract.get('worker_restarts')} "
              f"quarantined={contract.get('quarantined_shards')} "
              f"recovered={contract.get('recovered_healthy')}")
        if "replay_ok" in report:
            print("replay: " + ("bit-for-bit" if report["replay_ok"]
                                else "MISMATCH"))
    for failure in report.get("failures") or []:
        print(f"chaos failure: {failure}", file=sys.stderr)
    for mismatch in report.get("replay_mismatches") or []:
        print(f"replay mismatch: {mismatch}", file=sys.stderr)
    for failure in report.get("replay_failures") or []:
        print(f"replay-run failure: {failure}", file=sys.stderr)
    _record_envelope(args, "chaos", label="target=serve",
                     seed=getattr(args, "seed_base", None),
                     chaos=campaign_telemetry(report))
    return 0 if report["ok"] else 4


def cmd_chaos(args) -> int:
    import glob
    import os

    from .chaos import replay_schedule, run_chaos
    from .rtsj.faults import FAULT_SITES

    if args.replay:
        from .serve.faults import peek_schedule_target
        if peek_schedule_target(args.replay) == "serve":
            from .serve.chaos import replay_schedule as serve_replay
            report = serve_replay(args.replay)
            return _print_serve_chaos(args, report, replayed=True)
        report = replay_schedule(args.replay)
        outcome = report["outcome"]
        print(f"{outcome.program}: replayed {len(outcome.faults)} "
              f"fault(s), status={outcome.status}, "
              f"cycles={outcome.cycles}")
        for mismatch in report["mismatches"]:
            print(f"replay mismatch: {mismatch}", file=sys.stderr)
        return 0 if report["ok"] else 4

    if args.target == "serve":
        from .serve.chaos import run_serve_chaos
        schedule_path = None
        if args.schedule_out:
            os.makedirs(args.schedule_out, exist_ok=True)
            schedule_path = os.path.join(
                args.schedule_out,
                f"serve-seed{args.seed_base}.schedule.jsonl")
        report = run_serve_chaos(seed=args.seed_base,
                                 requests=args.requests,
                                 workers=args.serve_workers,
                                 verify=not args.no_verify,
                                 schedule_path=schedule_path)
        if schedule_path:
            print(f"wrote {schedule_path}", file=sys.stderr)
        return _print_serve_chaos(args, report)

    if args.sites:
        unknown = [s for s in args.sites if s not in FAULT_SITES]
        if unknown:
            print(f"error: unknown fault site(s) {unknown}; known: "
                  f"{list(FAULT_SITES)}", file=sys.stderr)
            return 1
    paths = args.paths or sorted(glob.glob(
        os.path.join("examples", "*.py")))
    corpus = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.endswith(".py"):
            match = _EMBEDDED_PROGRAM.search(text)
            if match is None:
                print(f"chaos: skipping {path} (no embedded PROGRAM)",
                      file=sys.stderr)
                continue
            text = match.group(1)
        corpus.append((os.path.basename(path), text))
    if not corpus:
        print("error: no programs to run", file=sys.stderr)
        return 1
    if args.schedule_out:
        os.makedirs(args.schedule_out, exist_ok=True)
    seeds = [args.seed_base + i for i in range(args.seeds)]
    report = run_chaos(corpus, seeds, rate=args.rate,
                       sites=tuple(args.sites) if args.sites else None,
                       gc_spike_factor=args.gc_spike,
                       max_cycles=args.max_cycles,
                       verify=not args.no_verify,
                       schedule_dir=args.schedule_out or None,
                       backend=args.backend or "interp")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for entry in report["results"]:
            replayed = ""
            if "replay_ok" in entry:
                replayed = (" replay=ok" if entry["replay_ok"]
                            else " replay=MISMATCH")
            print(f"{entry['program']} seed={entry['seed']}: "
                  f"{entry['status']} ({entry['faults']} faults, "
                  f"{entry['cycles']} cycles{replayed})")
        counts = ", ".join(f"{k}={v}" for k, v
                           in sorted(report["statuses"].items()))
        print(f"--- {report['runs']} runs: {counts}, "
              f"{report['faults_injected']} faults injected",
              file=sys.stderr)
    for failure in report["failures"]:
        print(f"chaos failure: {failure}", file=sys.stderr)
    from .chaos import campaign_telemetry
    _record_envelope(args, "chaos", label=f"seeds={args.seeds}",
                     seed=args.seed_base,
                     chaos=campaign_telemetry(report))
    return 0 if report["ok"] else 4


def cmd_inspect(args) -> int:
    from .obs.analyze import build_report, report_json
    from .obs.flightrec import load_flight, validate_flight

    try:
        header, records = load_flight(args.dump)
    except (OSError, ValueError, KeyError) as err:
        print(f"invalid flight record: {err}", file=sys.stderr)
        return 1
    problems = validate_flight(header, records)
    if problems:
        for problem in problems:
            print(f"invalid flight record: {problem}", file=sys.stderr)
        return 1
    compare = None
    if args.compare:
        try:
            compare_header, compare_records = load_flight(args.compare)
        except (OSError, ValueError, KeyError) as err:
            print(f"invalid flight record (--compare): {err}",
                  file=sys.stderr)
            return 1
        compare_problems = validate_flight(compare_header,
                                           compare_records)
        if compare_problems:
            for problem in compare_problems:
                print(f"invalid flight record (--compare): {problem}",
                      file=sys.stderr)
            return 1
        compare = compare_header
    schedule = None
    if args.schedule:
        from .rtsj.faults import load_schedule
        _, schedule, _ = load_schedule(args.schedule)
    report = build_report(header, records, schedule=schedule,
                          compare=compare)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(report.to_html())
        print(f"wrote {args.html}", file=sys.stderr)
    if args.json:
        print(report_json(report))
    elif args.ledger:
        print(report.format_ledger())
    elif not args.html:
        print(report.format())
    if args.trace:
        # join the runtime flight record to its request trace: a
        # traced serve dump stamps the trace id into the header meta
        from .obs.trace import load_traces, render_trace_text
        trace_id = (header.get("meta") or {}).get("trace_id")
        if not trace_id:
            print("inspect: flight header carries no trace_id "
                  "(not a traced serve dump)", file=sys.stderr)
            return 1
        try:
            _trace_header, trace_records = load_traces(args.trace)
        except (OSError, ValueError) as err:
            print(f"invalid trace dump (--trace): {err}",
                  file=sys.stderr)
            return 1
        match = next((r for r in trace_records
                      if r.get("trace") == trace_id), None)
        if match is None:
            print(f"inspect: trace {trace_id} not retained in "
                  f"{args.trace}", file=sys.stderr)
            return 1
        print(f"-- request trace (joined via header meta) --")
        print(render_trace_text(match))
    if report.mismatches:
        for problem in report.mismatches:
            print(f"inspect: {problem}", file=sys.stderr)
        return 2
    return 0


def cmd_metricsd(args) -> int:
    from .obs.live import TelemetryServer
    from .obs.telemetry import TelemetryStore

    store = TelemetryStore(args.store)
    server = TelemetryServer(store=store, host=args.host,
                             port=args.port)
    # the constructor bound the socket, so the kernel is already
    # queueing connections: this line IS the readiness signal, and
    # with --port 0 it is the only place the real port appears.
    # machine-readable, flushed, on stdout — scripts parse it and
    # connect immediately instead of polling a maybe-dead port
    print(f"REPRO-METRICSD-READY host={server.host} "
          f"port={server.port}", flush=True)
    print(f"repro metricsd: serving http://{server.host}:{server.port}"
          f" (store: {store.root})", file=sys.stderr)
    print(f"routes: /metrics /healthz /runs /runs/<sha>",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro metricsd: shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def cmd_serve(args) -> int:
    import signal

    from .serve import ServeConfig, ServeService

    def _graceful(_signum, _frame):
        # supervisors stop services with SIGTERM; route it through the
        # KeyboardInterrupt path so the worker pool is reaped instead
        # of orphaned (forked workers must never outlive the frontend)
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, batch_max=args.batch,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        cache_dir=args.cache_dir,
        default_backend=args.backend or "py",
        default_deadline_ms=args.deadline_ms,
        tracing=not args.no_trace,
        trace_capacity=args.trace_capacity,
        trace_sample=args.trace_sample,
        access_log=args.access_log,
        flight_dir=args.flight_dir)
    injector = None
    if args.fault_rate > 0:
        # deterministic fault injection for smoke/chaos drills: the
        # seed fixes the schedule, max-faults bounds the blast radius
        from .serve.faults import ServiceFaultInjector, ServiceFaultPlan
        injector = ServiceFaultInjector(ServiceFaultPlan(
            seed=args.fault_seed, rate=args.fault_rate,
            sites=("worker_crash",),
            max_faults=args.max_faults))
    service = ServeService(config, fault_injector=injector)
    # workers are forked and the socket is listening: connections are
    # already queueing in the backlog, so this ready line is accurate
    # (and, for --port 0, the only place the real port appears)
    print(f"REPRO-SERVE-READY host={service.host} port={service.port} "
          f"workers={config.workers}", flush=True)
    print(f"repro serve: http://{service.host}:{service.port} "
          f"(workers={config.workers}, queue={config.queue_depth}, "
          f"batch<={config.batch_max}, cache={config.cache_dir}, "
          f"tracing={'on' if config.tracing else 'off'})",
          file=sys.stderr)
    print("routes: POST /v1/analyze /v1/run /v1/inspect; "
          "GET /healthz /livez /readyz /metrics /traces "
          "/traces/<id>", file=sys.stderr)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        if args.trace_out and service.traces is not None:
            from .obs.trace import dump_traces
            try:
                n = dump_traces(service.traces.snapshot(),
                                args.trace_out,
                                meta=service.traces.stats())
                print(f"repro serve: wrote {n} trace line(s) to "
                      f"{args.trace_out}", file=sys.stderr)
            except OSError as err:
                print(f"repro serve: trace dump failed: {err}",
                      file=sys.stderr)
        service.close()
    return 0


def cmd_trace(args) -> int:
    """``repro trace`` — the critical-path analyzer over retained
    request traces (a dump file or a live ``/traces`` endpoint)."""
    import json as jsonlib

    from .obs.trace import (analyze_traces, load_traces,
                            render_report_html, render_report_text,
                            render_trace_text, validate_trace)

    if args.url:
        import io
        import urllib.request
        url = args.url.rstrip("/")
        if not url.endswith("/traces"):
            url += "/traces"
        try:
            with urllib.request.urlopen(url, timeout=30) as resp:
                text = resp.read().decode("utf-8")
        except OSError as err:
            print(f"trace: fetch {url} failed: {err}",
                  file=sys.stderr)
            return 1
        source = io.StringIO(text)
    elif args.dump:
        source = args.dump
    else:
        print("trace: need a DUMP file or --url", file=sys.stderr)
        return 1
    try:
        header, records = load_traces(source)
    except (OSError, ValueError) as err:
        print(f"invalid trace dump: {err}", file=sys.stderr)
        return 1
    if args.trace_id:
        matches = [r for r in records
                   if str(r.get("trace", ""))
                   .startswith(args.trace_id)]
        if not matches:
            print(f"trace: no retained trace matching "
                  f"{args.trace_id!r} "
                  f"({len(records)} records searched)",
                  file=sys.stderr)
            return 1
        problems = []
        for record in matches:
            print(render_trace_text(record))
            problems.extend(validate_trace(record))
        for problem in problems:
            print(f"trace: {problem}", file=sys.stderr)
        return 2 if problems else 0
    report = analyze_traces(records, tail=args.tail)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_report_html(report, records))
        print(f"wrote {args.html}", file=sys.stderr)
    if args.json:
        print(jsonlib.dumps(report, sort_keys=True, indent=2))
    elif not args.html:
        print(render_report_text(report))
    # the per-trace span payloads stay out of the envelope — the
    # aggregate report is the durable artifact
    _record_envelope(args, "trace",
                     label=args.label or "trace",
                     summary=report)
    if report["problems"]:
        for problem in report["problems"]:
            print(f"trace: {problem}", file=sys.stderr)
        return 2
    return 0


def cmd_report(args) -> int:
    import os

    from .bench.compare import load_payload
    from .obs.report import (BASELINE_FILES, RENDERERS, build_report)
    from .obs.telemetry import TelemetryStore

    store = TelemetryStore(args.store)
    baselines = {}
    for suite, default_path in BASELINE_FILES.items():
        path = getattr(args, f"baseline_{suite}") or (
            default_path if os.path.exists(default_path) else None)
        if path:
            try:
                baselines[suite] = load_payload(path)
            except (OSError, ValueError) as err:
                print(f"error: cannot load baseline {path}: {err}",
                      file=sys.stderr)
                return 1
    current = {}
    for suite in BASELINE_FILES:
        path = getattr(args, f"current_{suite}")
        if path:
            try:
                current[suite] = load_payload(path)
            except (OSError, ValueError) as err:
                print(f"error: cannot load current payload {path}: "
                      f"{err}", file=sys.stderr)
                return 1
    report = build_report(store, baselines=baselines,
                          current=current or None,
                          history=args.history,
                          threshold=args.threshold)
    if not report["suites"]:
        print("repro report: nothing to judge (no committed baselines "
              "and no recorded bench envelopes)", file=sys.stderr)
        return 1
    rendered = RENDERERS[args.format](report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if not report["ok"]:
        for suite, data in report["suites"].items():
            for failure in data["failures"]:
                print(f"regression: {failure}", file=sys.stderr)
        return 3
    judged = sum(len(s["rows"]) for s in report["suites"].values())
    print(f"no regression across {judged} benchmark(s)",
          file=sys.stderr)
    return 0


def cmd_graph(args) -> int:
    analyzed = _analyze_or_report(_read(args.file), args.file)
    if analyzed.errors:
        return 1
    machine = Machine(analyzed, RunOptions())
    try:
        machine.run()
    except ReproError as err:
        print(f"runtime error: {err}", file=sys.stderr)
        return 2
    print(machine.ownership_graph(include_dead=args.include_dead).to_dot())
    return 0


def _shared_parents():
    """Parent parsers for the flags shared by run/profile/bench/chaos.

    One definition each — the per-command copies had already drifted in
    wording, and a new flag (``--backend``) would have needed four more
    copies.  ``add_help=False`` is the stock argparse parent idiom.
    """
    backend = argparse.ArgumentParser(add_help=False)
    backend.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="execution backend: the coroutine interpreter (default), "
             "compiled Python source ('py': fused straight-line code "
             "with checks erased at emit time where possible, faithful "
             "generator transliteration otherwise), or compiled C via "
             "cffi ('c', static mode only).  Unsupported program/"
             "configuration combinations fall back toward the "
             "interpreter with identical observable behaviour")
    cache = argparse.ArgumentParser(add_help=False)
    cache.add_argument(
        "--analysis-cache", metavar="DIR",
        help="persist the incremental analysis cache under DIR; "
             "re-runs after an edit only re-check the classes that "
             "changed (frontend bench suite: backs the warm "
             "measurement's cache with JSON files under DIR)")
    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry", action="store_true",
        help="append a telemetry envelope to the content-addressed "
             "store under .repro/telemetry/")
    telemetry.add_argument(
        "--telemetry-store", metavar="DIR",
        help="store root for --telemetry (implies it; "
             "default .repro/telemetry)")
    return backend, cache, telemetry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    p_backend, p_cache, p_telemetry = _shared_parents()

    p_check = sub.add_parser("check", help="typecheck a program")
    p_check.add_argument("file")
    p_check.set_defaults(func=cmd_check)

    p_run = sub.add_parser("run", help="typecheck and execute",
                           parents=[p_backend, p_cache, p_telemetry])
    p_run.add_argument("file")
    p_run.add_argument("--dynamic-checks", action="store_true",
                       help="perform + charge the RTSJ dynamic checks")
    p_run.add_argument("--no-validate", action="store_true",
                       help="skip free check validation")
    p_run.add_argument("--stats", action="store_true",
                       help="print cycle/check statistics to stderr")
    p_run.add_argument("--stats-json", action="store_true",
                       help="print the machine-readable run summary as "
                            "one JSON object on stdout")
    p_run.add_argument("--trace-out", metavar="FILE",
                       help="write a JSON Lines trace of all events "
                            "(enables detailed tracing: region "
                            "enter/exit spans, allocations, checks)")
    p_run.add_argument("--metrics-out", metavar="FILE",
                       help="write end-of-run metrics in Prometheus "
                            "text format")
    p_run.add_argument("--record-out", metavar="FILE",
                       help="arm the flight recorder and dump the "
                            "post-mortem event ring as JSONL (cycle-"
                            "neutral; feed the file to `repro inspect`)")
    p_run.add_argument("--record-capacity", type=int, default=1 << 16,
                       help="flight-recorder ring size in records "
                            "(default 65536)")
    p_run.add_argument("--trace-sample", type=int, default=1,
                       metavar="N",
                       help="store only every N-th instant detail "
                            "trace event per kind (always-on tier; "
                            "default 1 = everything)")
    p_run.add_argument("--record-sample", type=int, default=1,
                       metavar="N",
                       help="store only every N-th high-volume flight "
                            "record per kind; exact aggregates are "
                            "kept regardless (default 1)")
    p_run.add_argument("--serve-metrics", type=int, metavar="PORT",
                       help="serve /metrics, /healthz and /runs over "
                            "HTTP for the duration of the run "
                            "(0 = ephemeral port)")
    p_run.set_defaults(func=cmd_run)

    p_prof = sub.add_parser(
        "profile", help="run and report where the cycles went",
        parents=[p_backend, p_cache, p_telemetry])
    p_prof.add_argument("file")
    p_prof.add_argument("--static-checks", action="store_true",
                        help="profile the statically-checked build "
                             "(dynamic checks are on by default, so "
                             "their cost is visible)")
    p_prof.add_argument("--top", type=int, default=10,
                        help="call sites to list (default 10)")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the profile as JSON")
    p_prof.set_defaults(func=cmd_profile)

    p_tr = sub.add_parser("translate",
                          help="emit the pseudo-RTSJ-Java erasure")
    p_tr.add_argument("file")
    p_tr.add_argument("--strategies", action="store_true",
                      help="also list per-new-site handle strategies")
    p_tr.set_defaults(func=cmd_translate)

    p_inf = sub.add_parser("infer",
                           help="print the program after inference")
    p_inf.add_argument("file")
    p_inf.set_defaults(func=cmd_infer)

    p_comp = sub.add_parser(
        "compile", help="compile to erased Python (Section 2.6)")
    p_comp.add_argument("file")
    p_comp.add_argument("--dynamic-checks", action="store_true",
                        help="emit the RTSJ build with store checks")
    p_comp.add_argument("--execute", action="store_true",
                        help="run the compiled program instead of "
                             "printing it")
    p_comp.set_defaults(func=cmd_compile)

    p_lint = sub.add_parser(
        "lint", help="find redundant `accesses` effects")
    p_lint.add_argument("file")
    p_lint.add_argument("--all", action="store_true",
                        help="show every method, not just redundant ones")
    p_lint.set_defaults(func=cmd_lint)

    p_adv = sub.add_parser(
        "advise", help="profile a run and suggest LT region budgets")
    p_adv.add_argument("file")
    p_adv.set_defaults(func=cmd_advise)

    p_bench = sub.add_parser(
        "bench", help="wall-clock benchmark of the interpreter, the "
                      "static frontend, or the codegen backends",
        parents=[p_backend, p_cache, p_telemetry])
    p_bench.add_argument("--suite",
                         choices=("interp", "frontend", "codegen",
                                  "serve", "serve-chaos"),
                         default="interp",
                         help="what to benchmark: the interpreter hot "
                              "loop (default), the static frontend's "
                              "cold/warm analyze() path, the codegen "
                              "backends with their differential "
                              "equivalence gate, the serve load "
                              "suite (closed-loop clients against a "
                              "live worker pool, with throughput/"
                              "latency/parity gates), or the serve "
                              "resilience gate (a seeded chaos "
                              "campaign with bit-for-bit replay)")
    p_bench.add_argument("--serve-workers", type=int, default=2,
                         metavar="N",
                         help="serve suite: worker processes behind "
                              "the benched service (default 2)")
    p_bench.add_argument("--serve-clients", type=int, default=4,
                         metavar="N",
                         help="serve suite: closed-loop client threads "
                              "in the warm phase (default 4)")
    p_bench.add_argument("--min-speedup", type=float, default=None,
                         metavar="X",
                         help="codegen suite: fail (exit 3) unless the "
                              "aggregate static-mode speedup vs the "
                              "seed interpreter baseline reaches X "
                              "(judged on --backend, default py)")
    p_bench.add_argument("--full", action="store_true",
                         help="use the full benchmark parameters "
                              "(default: fast parameters)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timing repeats per benchmark/mode; the "
                              "best run is reported (default 3)")
    p_bench.add_argument("--only", nargs="+", metavar="NAME",
                         help="run a subset of the registry")
    p_bench.add_argument("--out", metavar="FILE",
                         help="write the JSON payload (e.g. "
                              "BENCH_interp.json)")
    p_bench.add_argument("--compare", metavar="FILE",
                         help="compare against a prior payload; exit 3 "
                              "on wall-clock regression or simulated-"
                              "cycle drift")
    p_bench.add_argument("--threshold", type=float, default=0.30,
                         help="fractional wall-clock regression allowed "
                              "by --compare (default 0.30)")
    p_bench.add_argument("--merge-baseline", metavar="FILE",
                         help="embed FILE as the payload's 'baseline' "
                              "section (records before/after in the "
                              "committed artifact)")
    p_bench.add_argument("--json", action="store_true",
                         help="print the payload as JSON instead of a "
                              "table")
    p_bench.set_defaults(func=cmd_bench)

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign with sanitizer "
                      "and replay verification",
        parents=[p_backend, p_telemetry])
    p_chaos.add_argument("paths", nargs="*",
                         help="programs to perturb (default: "
                              "examples/*.py with an embedded PROGRAM)")
    p_chaos.add_argument("--target", choices=("runtime", "serve"),
                         default="runtime",
                         help="what to perturb: the RTSJ runtime "
                              "(default) or a live serve worker pool "
                              "(service-level faults: worker kills, "
                              "stalls, pipe failures, torn cache "
                              "shards, latency spikes)")
    p_chaos.add_argument("--requests", type=int, default=32,
                         help="serve target: campaign traffic "
                              "(default 32; topped up until the "
                              "schedule minima are met)")
    p_chaos.add_argument("--serve-workers", type=int, default=2,
                         metavar="N",
                         help="serve target: worker processes behind "
                              "the campaigned service (default 2)")
    p_chaos.add_argument("--seeds", type=int, default=5,
                         help="fault plans per program (default 5)")
    p_chaos.add_argument("--seed-base", type=int, default=0,
                         help="first seed (default 0)")
    p_chaos.add_argument("--rate", type=float, default=0.02,
                         help="per-consult injection probability at "
                              "every site (default 0.02)")
    p_chaos.add_argument("--sites", nargs="+", metavar="SITE",
                         help="restrict injection to these fault sites")
    p_chaos.add_argument("--gc-spike", type=int, default=8,
                         help="GC pause multiplier for gc_pause_spike "
                              "(default 8)")
    p_chaos.add_argument("--max-cycles", type=int,
                         default=5_000_000,
                         help="per-run clock bound (default 5M; keeps "
                              "degraded runs from running away)")
    p_chaos.add_argument("--no-verify", action="store_true",
                         help="skip the deterministic-replay check")
    p_chaos.add_argument("--schedule-out", metavar="DIR",
                         help="persist each run's fault schedule as a "
                              "replayable JSONL file under DIR")
    p_chaos.add_argument("--replay", metavar="FILE",
                         help="re-execute one persisted schedule "
                              "bit-for-bit instead of a campaign")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the campaign report as JSON")
    p_chaos.set_defaults(func=cmd_chaos)

    p_ins = sub.add_parser(
        "inspect", help="post-mortem analysis of a flight-recorder "
                        "dump: region lifetimes, leak suspects, portal "
                        "contention, stall attribution, and the check-"
                        "elimination ledger")
    p_ins.add_argument("dump", help="a *.flight.jsonl file from "
                                    "`repro run --record-out` or a "
                                    "chaos auto-dump")
    p_ins.add_argument("--compare", metavar="DUMP",
                       help="a second dump (the other check mode) for "
                            "the Figure 12 dynamic-vs-static comparison")
    p_ins.add_argument("--schedule", metavar="FILE",
                       help="join a chaos *.schedule.jsonl: map each "
                            "injected fault to its recovery/crash "
                            "events")
    p_ins.add_argument("--ledger", action="store_true",
                       help="print only the check-elimination ledger")
    p_ins.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    p_ins.add_argument("--html", metavar="FILE",
                       help="write a self-contained HTML report")
    p_ins.add_argument("--trace", metavar="FILE",
                       help="join a request-trace dump (repro serve "
                            "--trace-out): print the span tree whose "
                            "trace id this flight record carries")
    p_ins.set_defaults(func=cmd_inspect)

    p_md = sub.add_parser(
        "metricsd", help="serve the telemetry store over HTTP "
                         "(/metrics, /healthz, /runs)")
    p_md.add_argument("--host", default="127.0.0.1",
                      help="bind address (default 127.0.0.1)")
    p_md.add_argument("--port", type=int, default=9464,
                      help="port (default 9464; 0 = ephemeral)")
    p_md.add_argument("--store", metavar="DIR",
                      default=".repro/telemetry",
                      help="telemetry store root "
                           "(default .repro/telemetry)")
    p_md.set_defaults(func=cmd_metricsd)

    p_srv = sub.add_parser(
        "serve", help="analysis-as-a-service over a pre-forked pool "
                      "of warm workers (POST /v1/analyze /v1/run "
                      "/v1/inspect; GET /healthz /metrics)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8750,
                       help="port (default 8750; 0 = ephemeral, "
                            "reported on the READY line)")
    p_srv.add_argument("--workers", type=int, default=2, metavar="N",
                       help="pre-forked warm worker processes "
                            "(default 2)")
    p_srv.add_argument("--queue-depth", type=int, default=64,
                       metavar="N",
                       help="admission bound: queued+in-flight jobs "
                            "past N shed with 429 (default 64)")
    p_srv.add_argument("--batch", type=int, default=8, metavar="N",
                       help="max jobs per worker dispatch "
                            "(micro-batching; default 8)")
    p_srv.add_argument("--quota-rate", type=float, default=0.0,
                       metavar="R",
                       help="per-tenant token-bucket refill rate, "
                            "req/s (default 0 = quotas off)")
    p_srv.add_argument("--quota-burst", type=float, default=0.0,
                       metavar="B",
                       help="per-tenant bucket capacity (default "
                            "max(rate, 1))")
    p_srv.add_argument("--cache-dir", metavar="DIR",
                       default=".repro/serve-cache",
                       help="shared content-addressed AnalysisCache "
                            "tree (default .repro/serve-cache)")
    p_srv.add_argument("--backend", choices=BACKEND_CHOICES,
                       default=None,
                       help="default execution backend when a request "
                            "names none (default py)")
    p_srv.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="default per-request deadline when a "
                            "request names none (default: unbounded)")
    p_srv.add_argument("--no-trace", action="store_true",
                       help="disable request tracing (span trees, "
                            "tail sampling, X-Repro-Trace-Id; on by "
                            "default)")
    p_srv.add_argument("--trace-sample", type=int, default=16,
                       metavar="N",
                       help="retain 1-in-N healthy fast traces; the "
                            "tail — errors, faults, degradation, "
                            "slower-than-p99 — is always retained "
                            "(default 16; 1 = keep everything)")
    p_srv.add_argument("--trace-capacity", type=int, default=512,
                       metavar="N",
                       help="retained-trace ring size (default 512)")
    p_srv.add_argument("--trace-out", metavar="FILE",
                       help="dump retained traces as JSONL at "
                            "shutdown (repro trace reads this)")
    p_srv.add_argument("--access-log", metavar="FILE",
                       help="append one JSON line per request (trace "
                            "id, tenant, status, rung, queue/compute "
                            "ms); written off the response path")
    p_srv.add_argument("--flight-dir", metavar="DIR",
                       help="workers dump each traced /v1/inspect "
                            "job's flight record here, keyed by "
                            "trace id (repro inspect --trace joins "
                            "them)")
    p_srv.add_argument("--fault-rate", type=float, default=0.0,
                       metavar="R",
                       help="deterministic worker-crash injection "
                            "rate for smoke drills (default 0 = off)")
    p_srv.add_argument("--fault-seed", type=int, default=0,
                       help="seed for --fault-rate's schedule "
                            "(default 0)")
    p_srv.add_argument("--max-faults", type=int, default=1,
                       metavar="N",
                       help="cap injected faults for --fault-rate "
                            "(default 1)")
    p_srv.set_defaults(func=cmd_serve)

    p_trc = sub.add_parser(
        "trace", help="critical-path analysis over retained request "
                      "traces: per-request span trees, the "
                      "where-does-p99-go table, queue-vs-compute "
                      "decomposition",
        parents=[p_telemetry])
    p_trc.add_argument("dump", nargs="?",
                       help="a trace dump (repro serve --trace-out) "
                            "or a saved GET /traces response")
    p_trc.add_argument("--url", metavar="URL",
                       help="fetch live traces from a running serve "
                            "(base URL or .../traces)")
    p_trc.add_argument("--trace-id", metavar="ID",
                       help="print the span tree(s) for one trace id "
                            "(prefix match) instead of the aggregate")
    p_trc.add_argument("--tail", type=float, default=0.99,
                       help="tail percentile for the breakdown "
                            "(default 0.99)")
    p_trc.add_argument("--label", default="",
                       help="label for the --telemetry envelope")
    p_trc.add_argument("--json", action="store_true",
                       help="print the aggregate report as JSON")
    p_trc.add_argument("--html", metavar="FILE",
                       help="write a self-contained HTML report")
    p_trc.set_defaults(func=cmd_trace)

    p_rep = sub.add_parser(
        "report", help="cross-run regression observatory over the "
                       "telemetry store and committed bench baselines; "
                       "exits 3 on regression")
    p_rep.add_argument("--store", metavar="DIR",
                       default=".repro/telemetry",
                       help="telemetry store root "
                            "(default .repro/telemetry)")
    p_rep.add_argument("--baseline-interp", metavar="FILE",
                       help="interp baseline payload (default "
                            "BENCH_interp.json when present)")
    p_rep.add_argument("--baseline-frontend", metavar="FILE",
                       help="frontend baseline payload (default "
                            "BENCH_frontend.json when present)")
    p_rep.add_argument("--current-interp", metavar="FILE",
                       help="judge this interp payload instead of the "
                            "newest recorded bench envelope")
    p_rep.add_argument("--current-frontend", metavar="FILE",
                       help="judge this frontend payload instead of "
                            "the newest recorded bench envelope")
    p_rep.add_argument("--baseline-codegen", metavar="FILE",
                       help="codegen baseline payload (default "
                            "BENCH_codegen.json when present)")
    p_rep.add_argument("--current-codegen", metavar="FILE",
                       help="judge this codegen payload instead of "
                            "the newest recorded bench envelope")
    p_rep.add_argument("--baseline-serve", metavar="FILE",
                       help="serve baseline payload (default "
                            "BENCH_serve.json when present)")
    p_rep.add_argument("--current-serve", metavar="FILE",
                       help="judge this serve payload instead of "
                            "the newest recorded bench envelope")
    p_rep.add_argument("--baseline-serve-chaos", metavar="FILE",
                       help="serve resilience baseline payload "
                            "(default BENCH_serve_chaos.json when "
                            "present)")
    p_rep.add_argument("--current-serve-chaos", metavar="FILE",
                       help="judge this serve-chaos payload instead "
                            "of the newest recorded bench envelope")
    p_rep.add_argument("--history", type=int, default=50,
                       help="recorded bench runs consulted per suite "
                            "(default 50)")
    p_rep.add_argument("--threshold", type=float, default=0.30,
                       help="base fractional wall-clock threshold, "
                            "widened by history spread (default 0.30)")
    p_rep.add_argument("--format", choices=("text", "json", "html"),
                       default="text",
                       help="rendering (default text)")
    p_rep.add_argument("--out", metavar="FILE",
                       help="write the rendering to FILE instead of "
                            "stdout")
    p_rep.set_defaults(func=cmd_report)

    p_graph = sub.add_parser("graph",
                             help="emit the ownership graph (dot)")
    p_graph.add_argument("file")
    p_graph.add_argument("--include-dead", action="store_true")
    p_graph.set_defaults(func=cmd_graph)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
