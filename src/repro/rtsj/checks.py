"""The RTSJ dynamic checks.

Two families, exactly as in the paper's introduction:

* **Assignment checks** — storing a reference must not create a dangling
  reference: the value's memory area must outlive the target's area
  (``IllegalAssignmentError`` otherwise).  Performed on *every* reference
  store by *every* thread.
* **Heap-access checks** — a no-heap real-time thread must never read,
  overwrite, or receive a reference to a heap-allocated object
  (``MemoryAccessError``).  Performed on every reference load/store
  executed by a real-time thread.

``CheckEngine`` runs in one of three modes:

* ``dynamic``   — checks performed *and charged* to the cycle clock
  (the RTSJ baseline of Figure 12);
* ``static``    — checks skipped entirely (our type system has proven
  them redundant; the "static checks" column of Figure 12);
* additionally, ``validate=True`` performs the checks without charging
  cycles — the test suite uses this to assert Theorems 3/4 empirically:
  a well-typed program never fails a check.

Performance notes (see ``docs/PERFORMANCE.md``): the per-check cost
constants are hoisted into instance attributes at construction, and all
instrumentation (histograms, per-site profile attribution, detail trace
events) sits behind ``self._observe`` — a flag computed once from
whether the run's tracer/metrics/profile sinks actually record
anything.  A benchmark run with ``instrument=False`` therefore pays
only the counter increments that the run summary itself needs.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import (IllegalAssignmentError, MemoryAccessError,
                      PortalWriteError)
from .objects import ObjRef
from .regions import MemoryArea
from .stats import CostModel, Stats


class CheckEngine:
    def __init__(self, cost_model: CostModel, stats: Stats,
                 enabled: bool, validate: bool) -> None:
        self.cost = cost_model
        self.stats = stats
        self.enabled = enabled
        self.validate = validate
        #: fault-injection plane hook; set by the Machine when a fault
        #: plan is active, consulted on the portal-write path only
        self.fault_injector: Optional[Any] = None
        #: either mode needs the check performed at all
        self.active = enabled or validate
        # hoisted per-check constants (attribute chains are expensive in
        # the hot loop)
        self._assign_base = cost_model.check_assign_base
        self._assign_per_level = cost_model.check_assign_per_level
        self._read_base = cost_model.check_read_base
        # live instruments: the per-check cost distribution is the core
        # of the Figure 12 story, so it is histogrammed as it happens —
        # unless every sink is a null implementation, in which case the
        # whole instrumentation block is skipped (`repro bench` path)
        metrics = stats.metrics
        self._observe = not (metrics.null and stats.tracer.null
                             and stats.profile.null)
        #: flight recorder (None when post-mortem recording is off):
        #: records every check performed, and — the other half of the
        #: Figure 12 ledger — every check the static path *elided*,
        #: with the cycles the dynamic mode would have charged
        self._rec = stats.recorder
        self._h_assign = metrics.histogram(
            "repro_check_assign_cycles",
            "cycle cost of individual RTSJ assignment checks")
        self._h_depth = metrics.histogram(
            "repro_check_ancestry_depth",
            "scope-ancestry steps walked per assignment check",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32))
        self._h_read = metrics.histogram(
            "repro_check_read_cycles",
            "cycle cost of individual no-heap read/overwrite checks")

    # ------------------------------------------------------------------

    def assignment_cost(self, target_area: MemoryArea, value: Any,
                        line: int = 0, thread: str = "main") -> int:
        """Cycles charged for one RTSJ assignment check (0 when checks
        are compiled out).  Raises on violation when checking is on in
        either mode.  ``line`` attributes the cost to the source line
        executing the store (``repro profile``)."""
        rec = self._rec
        if not self.active:
            if rec is not None:
                self._record_elided_assign(rec, target_area, value, line,
                                           thread)
            return 0
        cycles = 0
        if self.enabled:
            stats = self.stats
            stats.assignment_checks += 1
            cycles = self._assign_base
            depth = 0
            is_ref = isinstance(value, ObjRef)
            if is_ref:
                depth = value.area.ancestry_distance(target_area)
                cycles += self._assign_per_level * depth
            stats.check_cycles += cycles
            if self._observe:
                if is_ref:
                    self._h_depth.observe(depth)
                self._h_assign.observe(cycles)
                stats.profile.record_check(line, target_area.name,
                                           cycles)
                tracer = stats.tracer
                if tracer.detailed:
                    tracer.emit_detail(
                        "check-assign", target_area.name,
                        cycle=stats.cycles, thread=thread,
                        attrs={"cycles": cycles, "depth": depth,
                               "line": line})
            if rec is not None:
                rec.record("check-assign", target_area.name,
                           cycle=stats.cycles, thread=thread,
                           attrs={"cycles": cycles, "depth": depth,
                                  "line": line})
        elif rec is not None:
            # validate mode: the check runs for free — from the ledger's
            # point of view that is still an elided dynamic check
            self._record_elided_assign(rec, target_area, value, line,
                                       thread)
        if isinstance(value, ObjRef):
            if not value.area.outlives(target_area):
                raise IllegalAssignmentError(
                    f"storing a reference to {value!r} (area "
                    f"'{value.area.name}') into area "
                    f"'{target_area.name}' would dangle")
        return cycles

    def _record_elided_assign(self, rec: Any, target_area: MemoryArea,
                              value: Any, line: int,
                              thread: str) -> None:
        """Credit one elided assignment check to the static path, with
        the exact cycles the dynamic mode would have charged (same
        formula, same per-store call conditions — so the elide count of
        a static run equals the performed count of the dynamic run)."""
        depth = 0
        saved = self._assign_base
        if isinstance(value, ObjRef):
            depth = value.area.ancestry_distance(target_area)
            saved += self._assign_per_level * depth
        rec.record("check-elide-assign", target_area.name,
                   cycle=self.stats.cycles, thread=thread,
                   attrs={"cycles_saved": saved, "depth": depth,
                          "line": line})

    def portal_write_guard(self, area: MemoryArea,
                           thread: str = "main") -> None:
        """Fault-injection consult on a portal store: models the store
        being denied by a concurrent region-teardown race.  No-op unless
        an injector is attached (the interpreter binds the guarded
        portal path only in that case)."""
        injector = self.fault_injector
        if injector is not None and injector.fire("portal_write",
                                                  area.name):
            err = PortalWriteError(
                f"injected fault: portal write into region "
                f"'{area.name}' denied (teardown race)")
            err.injected = True
            err.thread = thread
            raise err

    def read_cost(self, realtime: bool, value: Any,
                  old_value: Any = None, line: int = 0,
                  thread: str = "main") -> int:
        """Cycles charged for the no-heap read/overwrite check on a
        reference touched by a real-time thread."""
        if not realtime:
            return 0
        rec = self._rec
        if not self.active:
            if rec is not None:
                rec.record("check-elide-read", thread,
                           cycle=self.stats.cycles, thread=thread,
                           attrs={"cycles_saved": self._read_base,
                                  "line": line})
            return 0
        cycles = 0
        if self.enabled:
            stats = self.stats
            stats.read_checks += 1
            cycles = self._read_base
            stats.check_cycles += cycles
            if self._observe:
                self._h_read.observe(cycles)
                stats.profile.record_check(line, "<read-check>", cycles)
                tracer = stats.tracer
                if tracer.detailed:
                    tracer.emit_detail(
                        "check-read", thread, cycle=stats.cycles,
                        thread=thread,
                        attrs={"cycles": cycles, "line": line})
            if rec is not None:
                rec.record("check-read", thread, cycle=stats.cycles,
                           thread=thread,
                           attrs={"cycles": cycles, "line": line})
        elif rec is not None:
            rec.record("check-elide-read", thread,
                       cycle=self.stats.cycles, thread=thread,
                       attrs={"cycles_saved": self._read_base,
                              "line": line})
        for v in (value, old_value):
            if isinstance(v, ObjRef) and v.area.is_heap:
                raise MemoryAccessError(
                    f"no-heap real-time thread touched heap reference "
                    f"{v!r}")
        return cycles
