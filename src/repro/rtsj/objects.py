"""The simulated object model.

Objects carry their runtime owner values (regions or objects) purely for
diagnostics and the Figure-6 ownership-graph extraction — a real
implementation erases them (Section 2.6) and the cost model charges
nothing for their upkeep.  What the RTSJ runtime *does* track per object —
the memory area it is allocated in — is the ``area`` field that the
dynamic checks consult.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

#: bytes charged per object header / per field slot
HEADER_BYTES = 16
FIELD_BYTES = 8

_oid_counter = itertools.count(1)


class ObjRef:
    """A simulated object reference."""

    __slots__ = ("oid", "class_name", "owners", "fields", "area",
                 "generation", "size_bytes", "gc_mark", "spilled")

    def __init__(self, class_name: str, owners: Tuple[Any, ...],
                 field_names, area) -> None:
        self.oid = next(_oid_counter)
        self.class_name = class_name
        self.owners = owners
        self.fields: Dict[str, Any] = {name: None for name in field_names}
        self.area = area
        #: the area generation at allocation; a region flush bumps the
        #: generation, turning every extant reference dangling
        self.generation = area.generation
        self.size_bytes = HEADER_BYTES + FIELD_BYTES * len(self.fields)
        self.gc_mark = False
        #: True when a VT chunk denial spilled this object into a
        #: longer-lived area than its owner names (graceful
        #: degradation; the sanitizer exempts spilled objects from the
        #: O2 owner-co-location invariant — the outlives relation still
        #: guarantees R1-R3)
        self.spilled = False

    @property
    def alive(self) -> bool:
        return self.area.live and self.area.generation == self.generation

    @property
    def owner(self) -> Any:
        return self.owners[0] if self.owners else self.area

    def __repr__(self) -> str:
        return f"<{self.class_name}#{self.oid} in {self.area.name}>"


class ArrayStorage:
    """Backing store for the built-in IntArray/FloatArray classes; lives
    in ``extra`` so ObjRef stays uniform."""

    __slots__ = ("values",)

    def __init__(self, length: int, zero) -> None:
        self.values = [zero] * length


def make_array(class_name: str, owners: Tuple[Any, ...], area,
               length: int) -> ObjRef:
    zero = 0 if class_name == "IntArray" else 0.0
    obj = ObjRef(class_name, owners, ("__storage__",), area)
    obj.fields["__storage__"] = ArrayStorage(length, zero)
    obj.size_bytes = HEADER_BYTES + FIELD_BYTES * max(length, 0)
    return obj
