"""Memory areas: the RTSJ region model extended with the paper's
subregions and typed portal fields.

Lifetimes and the runtime outlives relation
-------------------------------------------

Every area records the set of areas that were accessible to the creating
thread when it was created (``ancestor_ids``); the static rule
[EXPR REGION] adds ``re ≽ r`` for exactly those regions, so the runtime
relation ``a outlives b  ⇔  a ∈ ancestors(b) ∪ {b, heap, immortal}``
mirrors the type system.  The RTSJ assignment check consults this
relation.

Flushing (Section 2.2)
----------------------

A subregion is flushed when (1) its thread count is zero, (2) every portal
field is null, and (3) every one of its subregions is flushed.  Flushing
an LT area resets the allocation pointer but keeps the preallocated
memory — that is why real-time threads can re-enter LT subregions without
ever allocating.  Flushing a VT area returns its on-demand chunks.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set

from ..errors import OutOfMemoryError, OutOfRegionMemoryError
from .objects import ObjRef

HEAP_AREA_NAME = "heap"
IMMORTAL_AREA_NAME = "immortal"

#: fallback id source for areas constructed without a RegionManager
#: (ad-hoc tests); manager-owned areas draw from the manager's own
#: counter so ids are identical run-to-run within one process — a
#: requirement for replayable fault schedules and golden traces
_area_ids = itertools.count(1 << 20)

#: allocation policies
LT, VT, HEAP_POLICY, IMMORTAL_POLICY = "LT", "VT", "HEAP", "IMMORTAL"


class MemoryArea:
    """One simulated memory area (region)."""

    __slots__ = ("area_id", "name", "kind_name", "policy", "lt_budget",
                 "bytes_used", "peak_bytes", "chunks", "live",
                 "generation", "parent", "ancestor_ids", "depth",
                 "thread_count", "portals", "subregions",
                 "realtime_only", "objects", "subregion_meta",
                 "fault_injector", "recorder")

    def __init__(self, name: str, kind_name: str, policy: str,
                 lt_budget: int = 0,
                 ancestors: Optional[Set[int]] = None,
                 parent: Optional["MemoryArea"] = None,
                 realtime_only: bool = False,
                 area_id: Optional[int] = None) -> None:
        self.area_id = next(_area_ids) if area_id is None else area_id
        self.name = name
        self.kind_name = kind_name          # region kind (static)
        self.policy = policy                # LT / VT / HEAP / IMMORTAL
        self.lt_budget = lt_budget
        self.bytes_used = 0
        self.peak_bytes = 0
        self.chunks = 0                     # VT chunks acquired
        self.live = True
        self.generation = 0
        self.parent = parent
        self.ancestor_ids: Set[int] = set(ancestors or ())
        if parent is not None:
            self.ancestor_ids |= parent.ancestor_ids | {parent.area_id}
        self.depth = len(self.ancestor_ids)
        self.thread_count = 0
        self.portals: Dict[str, Any] = {}
        #: subregion slot name -> current instance (None until entered,
        #: unless preallocated eagerly for LT policies)
        self.subregions: Dict[str, Optional["MemoryArea"]] = {}
        self.realtime_only = realtime_only  # RT subregion (Section 2.3)
        #: objects allocated here (sweep lists / graph extraction)
        self.objects: List[ObjRef] = []
        #: static subregion declarations, filled in by the interpreter
        self.subregion_meta: Dict[str, Any] = {}
        #: fault-injection plane (None outside chaos runs); consulted on
        #: the allocation path (`lt_alloc` / `vt_chunk` sites)
        self.fault_injector: Optional[Any] = None
        #: flight recorder (None when post-mortem recording is off);
        #: flush/destroy and LT/VT policy decisions are recorded here,
        #: at the one place every code path funnels through
        self.recorder: Optional[Any] = None

    # ------------------------------------------------------------------

    @property
    def is_heap(self) -> bool:
        return self.policy == HEAP_POLICY

    @property
    def is_immortal(self) -> bool:
        return self.policy == IMMORTAL_POLICY

    @property
    def is_flushed(self) -> bool:
        """An area with no live objects; freshly created areas count as
        flushed (nothing allocated yet)."""
        return self.bytes_used == 0

    def outlives(self, other: "MemoryArea") -> bool:
        """Runtime outlives: would a reference from an object in ``other``
        to an object in ``self`` be safe?"""
        if self is other or self.is_heap or self.is_immortal:
            return True
        return self.area_id in other.ancestor_ids

    def ancestry_distance(self, other: "MemoryArea") -> int:
        """Scope-stack steps an RTSJ assignment check walks to find
        ``self`` from ``other`` (cost model input)."""
        if self is other:
            return 0
        if self.is_heap or self.is_immortal:
            return max(other.depth, 1)
        return max(other.depth - self.depth, 1)

    # ------------------------------------------------------------------
    # allocation / flushing
    # ------------------------------------------------------------------

    VT_CHUNK_BYTES = 4096

    def allocate(self, obj: ObjRef) -> int:
        """Account for ``obj``'s bytes; returns the number of *fresh VT
        chunks* acquired (0 for LT/heap/immortal), so the interpreter can
        charge variable-time cost.  Raises if an LT budget overflows."""
        if not self.live:
            raise OutOfRegionMemoryError(
                f"allocation in dead region '{self.name}'")
        injector = self.fault_injector
        fresh_chunks = 0
        if self.policy == LT:
            if injector is not None and injector.fire("lt_alloc",
                                                      self.name):
                err = OutOfRegionMemoryError(
                    f"injected fault: LT allocation denied in region "
                    f"'{self.name}'")
                err.site, err.injected = "lt_alloc", True
                raise err
            if self.bytes_used + obj.size_bytes > self.lt_budget:
                rec = self.recorder
                if rec is not None:
                    rec.record("policy", self.name,
                               attrs={"decision": "lt-deny",
                                      "bytes": obj.size_bytes,
                                      "used": self.bytes_used,
                                      "budget": self.lt_budget})
                err = OutOfRegionMemoryError(
                    f"LT region '{self.name}' of size {self.lt_budget} "
                    f"bytes cannot fit {obj.size_bytes} more bytes "
                    f"(used {self.bytes_used})")
                err.site = "lt_alloc"
                raise err
        elif self.policy == VT:
            if injector is not None and injector.fire("vt_chunk",
                                                      self.name):
                err = OutOfMemoryError(
                    f"injected fault: VT chunk denied for region "
                    f"'{self.name}'")
                err.site, err.injected = "vt_chunk", True
                raise err
            before = (self.bytes_used + self.VT_CHUNK_BYTES - 1) \
                // self.VT_CHUNK_BYTES
            after = (self.bytes_used + obj.size_bytes
                     + self.VT_CHUNK_BYTES - 1) // self.VT_CHUNK_BYTES
            fresh_chunks = max(after - before, 1 if self.chunks == 0 else 0)
            self.chunks = max(self.chunks, after)
            if fresh_chunks:
                rec = self.recorder
                if rec is not None:
                    rec.record("policy", self.name,
                               attrs={"decision": "vt-chunk",
                                      "chunks": fresh_chunks,
                                      "total_chunks": self.chunks})
        self.bytes_used += obj.size_bytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_used)
        self.objects.append(obj)
        return fresh_chunks

    def free_object_bytes(self, obj: ObjRef) -> None:
        """Heap sweep support: return one object's bytes."""
        self.bytes_used -= obj.size_bytes

    def flush(self, thread: str = "<region>", _event: bool = True) -> int:
        """Delete all objects; returns the number of objects flushed.
        LT keeps its preallocated memory (pointer reset); VT returns its
        chunks."""
        freed = len(self.objects)
        before = self.bytes_used
        self.generation += 1
        self.bytes_used = 0
        self.objects.clear()
        if self.policy == VT:
            self.chunks = 0
        if _event:
            rec = self.recorder
            if rec is not None:
                rec.record("region-flushed", self.name, thread=thread,
                           attrs={"bytes": before, "objects": freed,
                                  "generation": self.generation})
        return freed

    def destroy(self, thread: str = "<region>") -> int:
        """Scoped-region exit / shared count reaching zero: the region is
        deleted, freeing all objects stored therein."""
        before = self.bytes_used
        freed = self.flush(thread, _event=False)
        self.live = False
        rec = self.recorder
        if rec is not None:
            rec.record("region-destroyed", self.name, thread=thread,
                       attrs={"bytes": before, "objects": freed})
        return freed

    # ------------------------------------------------------------------
    # the Section 2.2 flush rule
    # ------------------------------------------------------------------

    def can_flush(self) -> bool:
        if self.thread_count > 0:
            return False
        # only *reference* portals keep a region alive ("a portal field
        # ... is either null or points to an object"); scalar portal
        # values are plain data
        if any(isinstance(value, ObjRef)
               for value in self.portals.values()):
            return False
        for sub in self.subregions.values():
            if sub is not None and sub.live and not sub.is_flushed:
                return False
        return True

    def __repr__(self) -> str:
        return (f"<MemoryArea {self.name} kind={self.kind_name} "
                f"policy={self.policy} used={self.bytes_used}>")


def release_shared(area: MemoryArea, thread: str = "<region>") -> int:
    """One thread leaves a shared region (block exit or thread death).

    Top-level shared regions are deleted when the last thread exits
    (Section 2.2); subregions are *flushed* when the flush rule allows,
    keeping their preallocated memory.  Returns the number of objects
    freed."""
    area.thread_count -= 1
    if area.thread_count > 0 or not area.live:
        return 0
    if area.parent is None:
        return area.destroy(thread)
    if area.can_flush() and not area.is_flushed:
        return area.flush(thread)
    return 0


class RegionManager:
    """Owns the special areas and the registry of all areas created
    during one run.

    Long-running programs (the server benchmarks) create and destroy an
    unbounded stream of scoped regions; keeping every dead area alive in
    ``areas`` forever made ``live_areas()``, the GC's root scans, and
    the end-of-run metrics export all O(regions-ever-created).  The
    registry therefore *prunes* dead areas once the list grows past a
    threshold, folding their watermarks into aggregate counters so the
    metrics story stays complete without one labeled series per dead
    temporary region.
    """

    #: prune when the registry grows past this many areas; doubled after
    #: each prune so the scan cost stays amortized O(1) per create
    PRUNE_THRESHOLD = 512

    def __init__(self) -> None:
        #: manager-scoped id counter: every RegionManager hands out the
        #: same id sequence, so two in-process runs of the same program
        #: produce identical area ids (replay / golden-trace
        #: determinism; a process-global counter leaked state between
        #: runs)
        self._area_ids = itertools.count(1)
        self.heap = MemoryArea(HEAP_AREA_NAME, "GCRegion", HEAP_POLICY,
                               area_id=next(self._area_ids))
        self.immortal = MemoryArea(IMMORTAL_AREA_NAME, "SharedRegion",
                                   IMMORTAL_POLICY,
                                   area_id=next(self._area_ids))
        self.areas: List[MemoryArea] = [self.heap, self.immortal]
        #: fault plane propagated onto every area (None outside chaos)
        self.fault_injector: Optional[Any] = None
        #: flight recorder propagated onto every area (None when off)
        self.recorder: Optional[Any] = None
        #: dead areas dropped from ``areas`` (their aggregate footprint)
        self.pruned_dead = 0
        self.pruned_peak_bytes = 0
        self._prune_at = self.PRUNE_THRESHOLD

    def export_metrics(self, registry) -> None:
        """Publish per-region gauges into a
        :class:`repro.obs.MetricsRegistry` (called at end of run).

        Live areas (plus heap/immortal) get one labeled series each;
        dead temporary regions are aggregated into a single
        ``region="<dead>"`` watermark series and a count gauge, so a
        server that churned through thousands of scoped regions does
        not emit thousands of dead series."""
        peak = registry.gauge(
            "repro_region_peak_bytes",
            "live-bytes watermark per memory area")
        used = registry.gauge(
            "repro_region_bytes_used",
            "bytes resident per memory area at end of run")
        budget = registry.gauge(
            "repro_region_lt_budget_bytes",
            "declared LT preallocation budget per memory area")
        chunks = registry.gauge(
            "repro_region_vt_chunks",
            "VT chunks held per memory area at end of run")
        flushes = registry.gauge(
            "repro_region_generation",
            "times each area was flushed (generation counter)")
        dead_count = 0
        dead_peak = self.pruned_peak_bytes
        for area in self.areas:
            if not area.live:
                dead_count += 1
                dead_peak = max(dead_peak, area.peak_bytes)
                continue
            labels = {"region": area.name, "policy": area.policy,
                      "kind": area.kind_name}
            peak.labels(**labels).set_max(area.peak_bytes)
            used.labels(**labels).set(area.bytes_used)
            if area.policy == LT:
                budget.labels(**labels).set(area.lt_budget)
            if area.policy == VT:
                chunks.labels(**labels).set(area.chunks)
            flushes.labels(**labels).set(area.generation)
        dead_total = dead_count + self.pruned_dead
        if dead_total:
            registry.gauge(
                "repro_region_dead_areas",
                "temporary regions created and destroyed during the "
                "run (aggregated; no per-dead-region series)",
            ).set(dead_total)
            peak.labels(region="<dead>", policy="", kind="") \
                .set_max(dead_peak)

    def attach_injector(self, injector: Any) -> None:
        """Wire the fault-injection plane into every area (existing and
        future) so the allocation path can consult it."""
        self.fault_injector = injector
        for area in self.areas:
            area.fault_injector = injector

    def attach_recorder(self, recorder: Any) -> None:
        """Wire the flight recorder into every area (existing and
        future) so flushes, destroys, and LT/VT policy decisions are
        recorded at their single funnel points."""
        self.recorder = recorder
        for area in self.areas:
            area.recorder = recorder

    def create(self, name: str, kind_name: str, policy: str,
               lt_budget: int, ancestors: Set[int],
               parent: Optional[MemoryArea] = None,
               realtime_only: bool = False) -> MemoryArea:
        area = MemoryArea(name, kind_name, policy, lt_budget,
                          ancestors, parent, realtime_only,
                          area_id=next(self._area_ids))
        area.fault_injector = self.fault_injector
        area.recorder = self.recorder
        area.ancestor_ids |= {self.heap.area_id, self.immortal.area_id}
        area.depth = len(area.ancestor_ids)
        self.areas.append(area)
        if len(self.areas) >= self._prune_at:
            self.prune_dead()
        return area

    def prune_dead(self) -> int:
        """Drop dead areas from the registry, folding their watermarks
        into the aggregate counters.  Returns how many were dropped."""
        keep: List[MemoryArea] = []
        dropped = 0
        for area in self.areas:
            if area.live:
                keep.append(area)
            else:
                dropped += 1
                self.pruned_peak_bytes = max(self.pruned_peak_bytes,
                                             area.peak_bytes)
        if dropped:
            self.areas = keep
            self.pruned_dead += dropped
        self._prune_at = max(self.PRUNE_THRESHOLD,
                             2 * len(self.areas))
        return dropped

    def live_areas(self) -> List[MemoryArea]:
        return [a for a in self.areas if a.live]
