"""Simulated RTSJ platform (the substrate the paper ran on, [6, 7]).

The paper evaluated its type system on MIT's RTSJ implementation: scoped
LT/VT memory regions, immortal memory, a garbage-collected heap, regular
and no-heap real-time threads, and the RTSJ *dynamic checks* whose removal
Figure 12 measures.  This package is a faithful, deterministic simulation
of that platform:

* :mod:`~repro.rtsj.stats` — the cycle cost model and counters.
* :mod:`~repro.rtsj.objects` — the simulated object model.
* :mod:`~repro.rtsj.regions` — LT/VT/scoped/shared regions, subregions,
  portal fields, reference counting, and the flush rule of Section 2.2.
* :mod:`~repro.rtsj.checks` — the RTSJ dynamic checks (assignment /
  heap-access) with per-check accounting.
* :mod:`~repro.rtsj.gc` — a stop-the-world mark-sweep collector for the
  heap that pauses regular threads but never real-time threads.
* :mod:`~repro.rtsj.threads` — the deterministic cooperative scheduler.
"""

from .stats import CostModel, Stats
from .objects import ObjRef
from .regions import (HEAP_AREA_NAME, IMMORTAL_AREA_NAME, MemoryArea,
                      RegionManager)
from .threads import Scheduler, SimThread

__all__ = [
    "CostModel", "Stats", "ObjRef", "MemoryArea", "RegionManager",
    "Scheduler", "SimThread", "HEAP_AREA_NAME", "IMMORTAL_AREA_NAME",
]
