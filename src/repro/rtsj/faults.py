"""Deterministic fault-injection plane for the simulated RTSJ runtime.

The paper's theorems say well-typed programs never *fail* the RTSJ
dynamic checks — but a production runtime still has failure paths the
type system says nothing about: LT budgets sized too small, VT chunk
pools under pressure, denied region enters, portal teardown races,
thread-table pressure, GC pause spikes.  This module makes those paths
exercisable *deterministically*:

* a :class:`FaultPlan` names the sites to perturb and a per-site
  probability, all derived from one seed;
* a :class:`FaultInjector` is consulted at each site (``fire``) and
  records every injected fault as a :class:`FaultRecord` — the ordered
  list of records is a *schedule*;
* a :class:`ReplayInjector` re-fires a recorded schedule bit-for-bit:
  the nth consult of a site fails exactly when it failed in the
  recorded run, with no randomness involved, so any failing chaos run
  can be re-executed and debugged (``repro chaos --replay``).

Determinism contract: ``fire`` keys decisions on the per-site consult
counter, never on wall clock or host state.  Because the simulator
itself is deterministic, the consult sequence — and therefore the
injected schedule and the run it produces — is a pure function of
(program, plan).

Recovery policy lives here too (:class:`RecoveryPolicy`): bounded
retries with exponential backoff, VT overflow spilling to a longer-
lived area where the outlives relation permits, and the LT watchdog
that aborts an overrunning thread without wedging the scheduler.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Tuple

#: every site the injector can be consulted at, in documentation order
FAULT_SITES: Tuple[str, ...] = (
    "lt_alloc",        # LT allocation denied (budget pressure)
    "vt_chunk",        # VT chunk acquisition denied (pool pressure)
    "region_enter",    # (sub)region enter denied (teardown race)
    "portal_write",    # portal store denied (teardown race)
    "thread_spawn",    # thread spawn denied (thread-table pressure)
    "gc_pause_spike",  # one GC pause multiplied by ``gc_spike_factor``
)

SCHEDULE_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """What to inject: one seed, per-site rates, an optional site filter.

    ``rate`` is the default probability applied to every enabled site;
    ``rates`` overrides individual sites.  ``sites`` (when given)
    restricts injection to that subset.  ``max_faults`` caps the total
    number of injected faults per run.
    """

    seed: int = 0
    rate: float = 0.0
    rates: Mapping[str, float] = field(default_factory=dict)
    sites: Optional[Tuple[str, ...]] = None
    max_faults: Optional[int] = None
    #: multiplier applied to one GC pause when ``gc_pause_spike`` fires
    gc_spike_factor: int = 8

    def __post_init__(self) -> None:
        unknown = set(self.rates) - set(FAULT_SITES)
        if self.sites is not None:
            unknown |= set(self.sites) - set(FAULT_SITES)
        if unknown:
            raise ValueError(
                f"unknown fault site(s) {sorted(unknown)}; "
                f"known: {list(FAULT_SITES)}")

    def rate_for(self, site: str) -> float:
        if self.sites is not None and site not in self.sites:
            return 0.0
        return float(self.rates.get(site, self.rate))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rate": self.rate,
            "rates": dict(self.rates),
            "sites": list(self.sites) if self.sites is not None else None,
            "max_faults": self.max_faults,
            "gc_spike_factor": self.gc_spike_factor,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        sites = data.get("sites")
        return cls(seed=int(data.get("seed", 0)),
                   rate=float(data.get("rate", 0.0)),
                   rates=dict(data.get("rates") or {}),
                   sites=tuple(sites) if sites is not None else None,
                   max_faults=data.get("max_faults"),
                   gc_spike_factor=int(data.get("gc_spike_factor", 8)))


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: the ``seq``-th consult of ``site`` fired."""

    index: int          # global injection order (0-based)
    site: str
    seq: int            # per-site consult number the fault fired at
    detail: str = ""    # site-specific context (area name, thread, ...)

    def to_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "site": self.site, "seq": self.seq,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRecord":
        return cls(index=int(data["index"]), site=str(data["site"]),
                   seq=int(data["seq"]),
                   detail=str(data.get("detail", "")))


def fault_key(records: Iterable[FaultRecord]) -> List[Tuple[str, int]]:
    """The replay-comparable identity of a schedule: ``(site, seq)`` in
    injection order.  ``detail`` strings are diagnostics, not identity."""
    return [(r.site, r.seq) for r in records]


class FaultInjector:
    """Seeded random injector; every decision is recorded.

    One PRNG draw happens per consult of an *enabled* site (rate > 0),
    so the decision stream is a deterministic function of the plan and
    the consult order — which the deterministic scheduler fixes.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.site_counts: Dict[str, int] = {s: 0 for s in FAULT_SITES}
        self.injected: List[FaultRecord] = []
        self._rates = {s: plan.rate_for(s) for s in FAULT_SITES}
        #: optional Stats hook (set by the Machine): every injection
        #: bumps ``faults_injected`` here, so the counter always equals
        #: the schedule length regardless of which site fired
        self.stats: Optional[Any] = None

    @property
    def gc_spike_factor(self) -> int:
        return self.plan.gc_spike_factor

    def fire(self, site: str, detail: str = "") -> bool:
        """Consult the injector at ``site``; True means inject a fault
        here.  Always advances the per-site consult counter so recorded
        and replayed runs stay aligned."""
        counts = self.site_counts
        seq = counts[site]
        counts[site] = seq + 1
        rate = self._rates[site]
        if rate <= 0.0:
            return False
        if (self.plan.max_faults is not None
                and len(self.injected) >= self.plan.max_faults):
            return False
        if self._rng.random() >= rate:
            return False
        self.injected.append(
            FaultRecord(index=len(self.injected), site=site, seq=seq,
                        detail=detail))
        if self.stats is not None:
            self.stats.faults_injected += 1
            rec = self.stats.recorder
            if rec is not None:
                rec.record("fault-injected", site,
                           cycle=self.stats.cycles, thread="<fault>",
                           attrs={"site": site, "seq": seq,
                                  "detail": detail})
        return True


class ReplayInjector:
    """Re-fires a recorded schedule exactly: the nth consult of a site
    fails iff the recorded run's nth consult of that site failed."""

    def __init__(self, records: Iterable[FaultRecord],
                 plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self._fire_at = {(r.site, r.seq) for r in records}
        self.site_counts: Dict[str, int] = {s: 0 for s in FAULT_SITES}
        self.injected: List[FaultRecord] = []
        self.stats: Optional[Any] = None

    @property
    def gc_spike_factor(self) -> int:
        return self.plan.gc_spike_factor

    def fire(self, site: str, detail: str = "") -> bool:
        counts = self.site_counts
        seq = counts[site]
        counts[site] = seq + 1
        if (site, seq) not in self._fire_at:
            return False
        self.injected.append(
            FaultRecord(index=len(self.injected), site=site, seq=seq,
                        detail=detail))
        if self.stats is not None:
            self.stats.faults_injected += 1
            rec = self.stats.recorder
            if rec is not None:
                rec.record("fault-injected", site,
                           cycle=self.stats.cycles, thread="<fault>",
                           attrs={"site": site, "seq": seq,
                                  "detail": detail})
        return True


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the runtime degrades when a fault (injected or organic) hits.

    Retries charge exponential backoff to the simulated clock — attempt
    ``i`` costs ``backoff_base << i`` cycles — so recovery has an honest
    cost in the Figure-12 currency.  ``vt_spill`` allows a VT allocation
    that cannot obtain chunks to fall back to the region's parent (or
    the heap, for non-real-time threads): both outlive the denied
    region, so every previously-checked reference stays safe (R1–R3).
    ``lt_watchdog`` names the degradation for LT overruns: the
    offending thread is aborted with a structured diagnostic while the
    scheduler keeps serving the others (requires the machine's degrade
    mode; otherwise the error propagates as before).
    """

    max_retries: int = 3
    backoff_base: int = 64
    vt_spill: bool = True
    lt_watchdog: bool = True

    def backoff_cycles(self, attempt: int) -> int:
        """Cycles charged before retry number ``attempt`` (0-based)."""
        return self.backoff_base << min(attempt, 16)


# ---------------------------------------------------------------------------
# schedule persistence (JSON Lines: one header object, one line per fault)
# ---------------------------------------------------------------------------

def write_schedule(handle: IO[str], plan: FaultPlan,
                   records: Iterable[FaultRecord],
                   meta: Optional[Dict[str, Any]] = None) -> None:
    header = {"version": SCHEDULE_VERSION, "plan": plan.to_dict()}
    if meta:
        header["meta"] = meta
    handle.write(json.dumps(header, sort_keys=True) + "\n")
    for record in records:
        handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def save_schedule(path: str, plan: FaultPlan,
                  records: Iterable[FaultRecord],
                  meta: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        write_schedule(handle, plan, records, meta)


def load_schedule(path: str) -> Tuple[FaultPlan, List[FaultRecord],
                                      Dict[str, Any]]:
    """Read a schedule file back: (plan, records, meta)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"empty fault schedule: {path}")
    header = json.loads(lines[0])
    version = header.get("version")
    if version != SCHEDULE_VERSION:
        raise ValueError(
            f"unsupported schedule version {version!r} in {path} "
            f"(expected {SCHEDULE_VERSION})")
    plan = FaultPlan.from_dict(header.get("plan") or {})
    records = [FaultRecord.from_dict(json.loads(line))
               for line in lines[1:]]
    return plan, records, dict(header.get("meta") or {})
