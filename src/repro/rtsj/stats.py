"""Cycle cost model and execution statistics.

Figure 12 compares execution time *with* the RTSJ dynamic checks against
execution time *without* them.  Our substrate is an interpreter, so wall
clock alone would be dominated by interpretation overhead; instead every
simulated operation is charged a deterministic cycle cost, and the dynamic
checks charge the cost of the work they actually perform (ancestry walks
for assignment checks, memory-area tests for heap-access checks).  The
checked/unchecked cycle ratio is then a property of the *program's*
operation mix — the quantity the paper's micro-benchmarks were designed to
maximize — not of the host Python runtime.

The constants are deliberately round numbers in the ratio ballpark of a
2003-era JVM with software write barriers; the ablation benchmark
(`benchmarks/test_ablation_check_cost.py`) sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..obs import Histogram, MetricsRegistry, ProfileCollector, Tracer


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of simulated operations."""

    # plain computation
    op_basic: int = 1            # arithmetic, comparisons, moves
    op_local: int = 1            # local variable read/write
    op_field_read: int = 2
    op_field_write: int = 2
    op_invoke: int = 10          # call + frame setup
    op_return: int = 2
    op_branch: int = 1
    op_builtin: int = 5          # print and friends

    # allocation
    alloc_base: int = 12
    alloc_per_byte: int = 1      # zeroing (LT alloc is linear in size)
    vt_alloc_extra: int = 40     # on-demand allocation bookkeeping
    vt_chunk_cost: int = 400     # acquiring a fresh chunk ("variable time")
    heap_alloc_extra: int = 25   # GC interaction on the allocation path

    # regions
    region_create: int = 120
    lt_prealloc_per_byte: int = 1
    region_enter: int = 30
    region_exit: int = 40        # exit bookkeeping + flush test (atomic)
    portal_read: int = 4
    portal_write: int = 5

    # threads
    thread_spawn: int = 500
    thread_yield: int = 15

    # the RTSJ dynamic checks (removed in static-checks mode).  The base
    # cost models the RTSJ scope-stack comparison, lock, and branch
    # sequence on the write-barrier path; the per-level cost is the scope
    # ancestry walk.  Values calibrated so the micro-benchmarks land in
    # the paper's measured range (Array 7.2x, Tree 4.8x) — the ablation
    # bench sweeps them.
    check_assign_base: int = 28      # IllegalAssignmentError test
    check_assign_per_level: int = 4  # per scope-ancestry step walked
    check_read_base: int = 8         # MemoryAccessError test (no-heap RT)

    # garbage collector
    gc_base: int = 2000
    gc_per_live_object: int = 24
    gc_per_dead_object: int = 10


@dataclass
class Stats:
    """Counters accumulated during one simulated run.

    Structured observability (the :mod:`repro.obs` subsystem) hangs off
    this object: ``tracer`` is the event bus, ``metrics`` the registry
    of counters/gauges/histograms, ``profile`` the per-site/per-region
    attribution, and ``recorder`` the post-mortem flight recorder
    (``None`` on runs that did not ask for recording, so hot paths can
    test ``recorder is not None`` at closure-compile time).  The
    historic ``Stats.events`` tuple-list shim has been removed; the
    tracer is the single event source.
    """

    cycles: int = 0                       # global simulated clock
    cycles_by_thread: Dict[str, int] = field(default_factory=dict)
    steps: int = 0

    assignment_checks: int = 0
    read_checks: int = 0
    check_cycles: int = 0                 # cycles spent inside checks

    allocations: int = 0
    bytes_allocated: int = 0
    objects_freed: int = 0
    regions_created: int = 0
    region_enters: int = 0
    region_flushes: int = 0

    gc_runs: int = 0
    gc_pause_cycles: int = 0
    gc_objects_collected: int = 0

    threads_spawned: int = 0
    peak_heap_bytes: int = 0

    # robustness plane (fault injection / recovery / sanitizer)
    faults_injected: int = 0
    faults_recovered: int = 0     # faults survived via retry/spill
    recovery_retries: int = 0
    recovery_backoff_cycles: int = 0
    vt_spills: int = 0            # allocations spilled to parent/heap
    threads_aborted: int = 0      # degrade-mode thread aborts (watchdog)
    sanitizer_checks: int = 0

    # cycle attribution by category (``repro profile``); the remainder
    # of ``cycles`` not claimed below is plain compute
    alloc_cycles: int = 0
    region_cycles: int = 0
    thread_cycles: int = 0
    io_cycles: int = 0

    tracer: Tracer = field(default_factory=Tracer, repr=False)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry,
                                     repr=False)
    profile: ProfileCollector = field(default_factory=ProfileCollector,
                                      repr=False)
    #: the flight recorder, or None when post-mortem recording is off
    #: (typed ``Any`` to keep :mod:`repro.obs` imports one-directional)
    recorder: Optional[Any] = field(default=None, repr=False)

    def charge(self, cycles: int, thread_name: str = "main") -> None:
        self.cycles += cycles
        self.cycles_by_thread[thread_name] = (
            self.cycles_by_thread.get(thread_name, 0) + cycles)

    def summary(self) -> Dict[str, Any]:
        return {
            "cycles": self.cycles,
            "assignment_checks": self.assignment_checks,
            "read_checks": self.read_checks,
            "check_cycles": self.check_cycles,
            "allocations": self.allocations,
            "bytes_allocated": self.bytes_allocated,
            "objects_freed": self.objects_freed,
            "regions_created": self.regions_created,
            "region_enters": self.region_enters,
            "region_flushes": self.region_flushes,
            "gc_runs": self.gc_runs,
            "gc_pause_cycles": self.gc_pause_cycles,
            "threads_spawned": self.threads_spawned,
            "peak_heap_bytes": self.peak_heap_bytes,
            "faults_injected": self.faults_injected,
            "faults_recovered": self.faults_recovered,
            "recovery_retries": self.recovery_retries,
            "recovery_backoff_cycles": self.recovery_backoff_cycles,
            "vt_spills": self.vt_spills,
            "threads_aborted": self.threads_aborted,
            "sanitizer_checks": self.sanitizer_checks,
            "cycles_by_thread": dict(self.cycles_by_thread),
            "quantiles": self.quantile_summary(),
        }

    def quantile_summary(self) -> Dict[str, Dict[str, float]]:
        """p50/p95/p99 estimates for every live histogram, derived from
        the buckets the run already collected (deterministic: bucket
        counts are a function of the simulated run, not the host).
        Empty for uninstrumented runs (null registry)."""
        out: Dict[str, Dict[str, float]] = {}
        for inst in self.metrics.instruments():
            if isinstance(inst, Histogram):
                quantiles = inst.quantiles()
                if quantiles:
                    out[inst.name] = quantiles
        return out
