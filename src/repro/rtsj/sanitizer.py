"""Runtime region sanitizer.

The static system proves the paper's invariants once, at analysis time;
the sanitizer re-verifies them against the *live* runtime state at
checkpoints, so that any bug in the runtime itself — or any damage a
degraded recovery path might cause — is caught at the first checkpoint
after it happens, with a diagnosable :class:`SanitizerViolation` naming
the invariant and the offending object/area, instead of surfacing
thousands of cycles later as a corrupted result.

Invariants checked, mapped to the paper:

* **O1 (ownership forest)** — the region/area relation is a forest:
  no area is its own ancestor, parent chains are finite and acyclic.
* **O2 (owner co-location)** — an object owned by another object lives
  in its owner's region (Section 2.1: ``region_of_owner``).  Objects
  the VT-spill degradation relocated (``obj.spilled``) are exempt; for
  them the weaker R1-preserving guarantee is checked instead (the spill
  target outlives the denied region).
* **R1/R2 (no dangling references)** — every reference held in an
  object field points to a live object whose area outlives the holder's
  area; the outlives relation itself is acyclic (O1's check covers the
  area side).
* **R3 (no-heap real-time threads)** — no frame of a live real-time
  thread holds a reference into the heap.
* **Flush rule F1–F3 (Section 2.2)** — re-verified when a region exits:
  a flushed area had zero threads inside (F1), only null/scalar portals
  (F2), and only flushed subregions (F3).
* **Accounting sanity** — per-area ``bytes_used`` equals the sum of its
  resident objects' sizes, thread counts are never negative, portal
  values are null, scalars, or live references.

The walk is O(live objects), so it runs at configurable checkpoints
(scheduling-round boundaries, region exits, end of run), not per
operation.  All hooks are no-ops unless a sanitizer is installed — the
interpreter compiles the calls in only when one is present, preserving
byte-identical behaviour for plain runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Set

from ..errors import SanitizerViolation
from .objects import ArrayStorage, ObjRef
from .regions import MemoryArea, RegionManager
from .stats import Stats

#: checkpoint kinds a sanitizer can be armed for
CHECKPOINTS: FrozenSet[str] = frozenset(
    {"quantum", "region_exit", "flush", "end"})


@dataclass(frozen=True)
class SanitizerConfig:
    """Which checkpoints trigger a sweep, and how often."""

    checkpoints: FrozenSet[str] = CHECKPOINTS
    #: full sweep every n-th scheduling round (1 = every round); the
    #: cheap flush-rule re-check at region exits always runs
    every_n_quanta: int = 1

    def __post_init__(self) -> None:
        unknown = set(self.checkpoints) - CHECKPOINTS
        if unknown:
            raise ValueError(
                f"unknown sanitizer checkpoint(s) {sorted(unknown)}; "
                f"known: {sorted(CHECKPOINTS)}")
        if self.every_n_quanta < 1:
            raise ValueError("every_n_quanta must be >= 1")


def _is_scalar(value: Any) -> bool:
    return isinstance(value, (int, float, bool, str))


class RegionSanitizer:
    """Walks the live areas and verifies the paper's invariants."""

    def __init__(self, regions: RegionManager, stats: Stats,
                 scheduler: Optional[Any] = None,
                 config: Optional[SanitizerConfig] = None) -> None:
        self.regions = regions
        self.stats = stats
        self.scheduler = scheduler  # bound late by the Machine
        self.config = config or SanitizerConfig()
        self._quanta = 0
        self.violations = 0
        metrics = stats.metrics
        self._c_checks = metrics.counter(
            "repro_sanitizer_checks_total",
            "sanitizer sweeps performed, by checkpoint kind")
        self._c_violations = metrics.counter(
            "repro_sanitizer_violations_total",
            "invariant violations detected, by invariant")

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def on_quantum(self) -> None:
        """Scheduling-round boundary (the Scheduler's checkpoint hook)."""
        if "quantum" not in self.config.checkpoints:
            return
        self._quanta += 1
        if self._quanta % self.config.every_n_quanta:
            return
        self.sweep("quantum")

    def on_region_exit(self, area: MemoryArea) -> None:
        """A scoped/shared region was exited.  Verifies teardown left
        the area consistent; additionally runs a full sweep when armed
        for ``region_exit``.  (The flush-rule recheck lives in
        :meth:`on_flush` — ``is_flushed`` alone cannot distinguish "just
        flushed" from "never allocated anything", and the latter is
        legal with threads still inside.)"""
        if not area.live and area.thread_count != 0:
            self._violation(
                "F1-threads", area.name,
                f"destroyed region '{area.name}' has thread count "
                f"{area.thread_count}", "region_exit")
        if "region_exit" in self.config.checkpoints:
            self.sweep("region_exit")

    def on_flush(self, area: MemoryArea) -> None:
        """An area was flushed while staying live (subregion reuse)."""
        if "flush" not in self.config.checkpoints:
            return
        self._check_flush_rule(area, "flush")

    def on_end(self) -> None:
        """End of run: final sweep plus global teardown assertions."""
        if "end" not in self.config.checkpoints:
            return
        self.sweep("end")
        for area in self.regions.live_areas():
            if area.parent is not None and area.thread_count != 0:
                self._violation(
                    "F1-threads", area.name,
                    f"run ended with {area.thread_count} thread(s) "
                    f"still inside region '{area.name}'", "end")

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------

    def sweep(self, checkpoint: str) -> None:
        """One full walk over the live areas; raises
        :class:`SanitizerViolation` on the first broken invariant."""
        self.stats.sanitizer_checks += 1
        self._c_checks.labels(checkpoint=checkpoint).inc()
        tracer = self.stats.tracer
        if tracer.detailed:
            tracer.emit_detail("sanitizer-check", checkpoint,
                               cycle=self.stats.cycles,
                               attrs={"checkpoint": checkpoint})
        live = self.regions.live_areas()
        live_ids = {area.area_id for area in live}
        for area in live:
            self._check_area(area, live_ids, checkpoint)
        self._check_rt_threads(checkpoint)

    def _check_area(self, area: MemoryArea, live_ids: Set[int],
                    checkpoint: str) -> None:
        # O1: the area forest is acyclic
        if area.area_id in area.ancestor_ids:
            self._violation(
                "O1-forest", area.name,
                f"area '{area.name}' is its own ancestor", checkpoint)
        seen: Set[int] = {area.area_id}
        parent = area.parent
        while parent is not None:
            if parent.area_id in seen:
                self._violation(
                    "O1-forest", area.name,
                    f"parent chain of area '{area.name}' cycles at "
                    f"'{parent.name}'", checkpoint)
            seen.add(parent.area_id)
            parent = parent.parent
        # accounting sanity
        if area.thread_count < 0:
            self._violation(
                "thread-count", area.name,
                f"area '{area.name}' has negative thread count "
                f"{area.thread_count}", checkpoint)
        resident = sum(obj.size_bytes for obj in area.objects)
        if resident != area.bytes_used:
            self._violation(
                "byte-accounting", area.name,
                f"area '{area.name}' accounts {area.bytes_used} bytes "
                f"but holds {resident} bytes of objects", checkpoint)
        # portal typing: null | scalar | live reference that outlives
        for slot, value in area.portals.items():
            path = f"{area.name}.portal[{slot}]"
            if value is None or _is_scalar(value):
                continue
            if not isinstance(value, ObjRef):
                self._violation(
                    "portal-typing", path,
                    f"portal holds non-value {value!r}", checkpoint)
            if not value.alive:
                self._violation(
                    "R1-no-dangling", path,
                    f"portal references dead object {value!r}",
                    checkpoint)
            if not value.area.outlives(area):
                self._violation(
                    "R1-no-dangling", path,
                    f"portal references {value!r} whose area "
                    f"'{value.area.name}' does not outlive "
                    f"'{area.name}'", checkpoint)
        # per-object invariants
        for obj in area.objects:
            self._check_object(obj, area, checkpoint)

    def _check_object(self, obj: ObjRef, area: MemoryArea,
                      checkpoint: str) -> None:
        path = f"{area.name}/{obj.class_name}#{obj.oid}"
        # O2: objects live in their owner's region (spilled objects are
        # exempt but must still satisfy the outlives direction)
        owner = obj.owner
        owner_area: Optional[MemoryArea] = None
        if isinstance(owner, ObjRef):
            owner_area = owner.area
        elif isinstance(owner, MemoryArea):
            owner_area = owner
        if owner_area is not None and owner_area is not area:
            if obj.spilled:
                if not area.outlives(owner_area):
                    self._violation(
                        "O2-colocation", path,
                        f"spilled object landed in '{area.name}' which "
                        f"does not outlive its owner region "
                        f"'{owner_area.name}'", checkpoint)
            else:
                self._violation(
                    "O2-colocation", path,
                    f"object resides in '{area.name}' but its owner "
                    f"places it in '{owner_area.name}'", checkpoint)
        # R1/R2: every held reference is live and outlives the holder
        for name, value in obj.fields.items():
            if isinstance(value, ArrayStorage) \
                    or not isinstance(value, ObjRef):
                continue
            fpath = f"{path}.{name}"
            if not value.alive:
                self._violation(
                    "R1-no-dangling", fpath,
                    f"field references dead object {value!r}",
                    checkpoint)
            if not value.area.outlives(area):
                self._violation(
                    "R2-outlives", fpath,
                    f"field references {value!r} whose area "
                    f"'{value.area.name}' does not outlive "
                    f"'{area.name}'", checkpoint)

    def _check_rt_threads(self, checkpoint: str) -> None:
        # R3: no-heap real-time threads hold no heap references
        scheduler = self.scheduler
        if scheduler is None:
            return
        for thread in scheduler.threads:
            if thread.done or not thread.realtime:
                continue
            for i, frame in enumerate(thread.frames):
                values = [getattr(frame, "this", None)]
                values.extend(getattr(frame, "vars", {}).values())
                values.extend(getattr(frame, "temps", ()))
                for value in values:
                    if isinstance(value, ObjRef) and value.area.is_heap:
                        self._violation(
                            "R3-rt-no-heap",
                            f"{thread.name}/frame[{i}]",
                            f"real-time thread '{thread.name}' holds "
                            f"heap reference {value!r}", checkpoint)

    def _check_flush_rule(self, area: MemoryArea,
                          checkpoint: str) -> None:
        """The three Section 2.2 flush conditions, re-verified against
        the post-flush state of a flushed area."""
        if area.thread_count != 0:
            self._violation(
                "F1-threads", area.name,
                f"flushed region '{area.name}' has thread count "
                f"{area.thread_count}", checkpoint)
        for slot, value in area.portals.items():
            if isinstance(value, ObjRef):
                self._violation(
                    "F2-portals", f"{area.name}.portal[{slot}]",
                    f"flushed region '{area.name}' still has a "
                    f"reference portal '{slot}'", checkpoint)
        for slot, sub in area.subregions.items():
            if sub is not None and sub.live and not sub.is_flushed:
                self._violation(
                    "F3-subregions", f"{area.name}/{sub.name}",
                    f"flushed region '{area.name}' has unflushed "
                    f"subregion '{sub.name}'", checkpoint)

    # ------------------------------------------------------------------

    def _violation(self, invariant: str, path: str, message: str,
                   checkpoint: str) -> None:
        self.violations += 1
        self._c_violations.labels(invariant=invariant).inc()
        err = SanitizerViolation(invariant, path, message,
                                 checkpoint=checkpoint)
        err.cycle = self.stats.cycles
        self.stats.tracer.emit(
            "sanitizer-violation", path, cycle=self.stats.cycles,
            attrs={"invariant": invariant, "checkpoint": checkpoint,
                   "message": message})
        raise err
